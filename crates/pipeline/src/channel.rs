//! The bounded-channel component (`chan` interface).
//!
//! | function | role | effect |
//! |---|---|---|
//! | `chan_open(compid, chan_no, role)` → cid | create | open a producer/consumer endpoint on a channel |
//! | `chan_send(compid, desc, seq, payload)` | block | enqueue (idempotent by `seq`); blocks while the ring is full |
//! | `chan_peek(compid, desc)` → payload | block | read the message at the cursor without consuming it |
//! | `chan_commit(compid, desc)` → cursor | wakeup | consume the peeked message; returns the new cursor |
//! | `chan_close(compid, desc)` | terminate | close the endpoint |
//!
//! # Peek-before-commit
//!
//! A consumer *peeks* the message at its cursor, processes it, then
//! *commits* — only the commit advances the cursor. The commit's return
//! value is harvested by the SuperGlue stub as tracked σ-state
//! (`desc_data_retval(long, cursor)` in `idl/chan.sg`), so the
//! `chan_restore` recovery upcall re-seats a micro-rebooted endpoint at
//! the last *committed* position (**CR0**). Peeked-but-uncommitted
//! messages are deliberately re-delivered; committed ones never are —
//! exactly-once observable effects without any channel-side client
//! coordination.
//!
//! The ring itself is redundantly persisted through the storage
//! component inside each mutation's critical region (**G1**, the RamFS
//! pattern), so a micro-reboot loses only the volatile endpoint seating
//! that CR0 restores.
//!
//! # Dead-letter escalation
//!
//! Delivery of a *showstopper* message (payload prefix `poison`, the
//! simulated analogue of a message whose bytes crash its consumer's
//! protected delivery path) faults the channel component mid-peek. The
//! per-message fault counter is persisted, so the count survives the
//! micro-reboot the fault triggers; once a message has faulted delivery
//! `poison_limit` times it is routed to the dead-letter queue
//! ([`ServiceCtx::note_dead_letter`] — the **DL0** counter and a
//! `DeadLetter` trace instant) and delivery resumes with the next
//! message. This is the escalation rung between per-call micro-reboot
//! recovery and reboot-storm backoff: a poisoned message costs exactly
//! `poison_limit` reboots, never an unbounded storm.

use std::collections::BTreeMap;

use composite::{ComponentId, Service, ServiceCtx, ServiceError, ThreadId, Value};

/// Endpoint role: the sending side of a channel.
pub const ROLE_PRODUCER: i64 = 0;
/// Endpoint role: the receiving side of a channel.
pub const ROLE_CONSUMER: i64 = 1;

/// Payload prefix marking a showstopper message.
pub const POISON_PREFIX: &[u8] = b"poison";

#[derive(Debug, Clone, PartialEq, Eq)]
struct Endpoint {
    chan_no: i64,
    role: i64,
    /// Consumer read position: the first not-yet-committed sequence
    /// number. Volatile — lost on micro-reboot, re-seated by
    /// `chan_restore` from the stub's tracked commit retval (CR0).
    cursor: i64,
}

/// The bounded-channel service component.
#[derive(Debug)]
pub struct ChannelService {
    storage: ComponentId,
    /// Ring capacity: maximum uncommitted messages per channel.
    capacity: i64,
    /// Dead-letter threshold K: a message that faults delivery this many
    /// times is routed to the dead-letter queue. Must not exceed the
    /// runtime's per-call retry budget or the client observes the fault.
    poison_limit: u64,
    /// Volatile endpoint table (cid → seat).
    endpoints: BTreeMap<i64, Endpoint>,
    /// Producers blocked on a full ring, per channel. Volatile: a fault
    /// wakes every blocked thread and the retried call re-registers.
    send_waiters: BTreeMap<i64, Vec<ThreadId>>,
    /// Consumers blocked on an empty ring, per channel.
    peek_waiters: BTreeMap<i64, Vec<ThreadId>>,
    next_cid: i64,
}

impl ChannelService {
    /// A channel service persisting through `storage`, with the given
    /// ring capacity and dead-letter threshold.
    #[must_use]
    pub fn new(storage: ComponentId, capacity: i64, poison_limit: u64) -> Self {
        Self {
            storage,
            capacity: capacity.max(1),
            poison_limit,
            endpoints: BTreeMap::new(),
            send_waiters: BTreeMap::new(),
            peek_waiters: BTreeMap::new(),
            next_cid: 0,
        }
    }

    /// Live endpoints (tests/reflection).
    #[must_use]
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    fn fetch_int(&self, ctx: &mut ServiceCtx<'_>, key: &str) -> Option<i64> {
        match ctx.invoke(self.storage, "st_fetch", &[Value::from(key)]) {
            Ok(Value::Bytes(b)) if b.len() == 8 => {
                let mut a = [0u8; 8];
                a.copy_from_slice(&b);
                Some(i64::from_le_bytes(a))
            }
            _ => None,
        }
    }

    fn store_int(&self, ctx: &mut ServiceCtx<'_>, key: &str, v: i64) -> Result<(), ServiceError> {
        ctx.invoke(
            self.storage,
            "st_store",
            &[Value::from(key), Value::from(v.to_le_bytes().to_vec())],
        )
        .map(|_| ())
        .map_err(|_| ServiceError::Unavailable)
    }

    fn fetch_bytes(&self, ctx: &mut ServiceCtx<'_>, key: &str) -> Option<Vec<u8>> {
        match ctx.invoke(self.storage, "st_fetch", &[Value::from(key)]) {
            Ok(Value::Bytes(b)) => Some(b.to_vec()),
            _ => None,
        }
    }

    fn store_bytes(
        &self,
        ctx: &mut ServiceCtx<'_>,
        key: &str,
        v: Vec<u8>,
    ) -> Result<(), ServiceError> {
        ctx.invoke(
            self.storage,
            "st_store",
            &[Value::from(key), Value::from(v)],
        )
        .map(|_| ())
        .map_err(|_| ServiceError::Unavailable)
    }

    fn tail(&self, ctx: &mut ServiceCtx<'_>, chan_no: i64) -> i64 {
        self.fetch_int(ctx, &format!("ch{chan_no}:tail"))
            .unwrap_or(0)
    }

    /// Committed floor: backpressure only — the authoritative consumer
    /// position is the endpoint seat (volatile, CR0-restored).
    fn floor(&self, ctx: &mut ServiceCtx<'_>, chan_no: i64) -> i64 {
        self.fetch_int(ctx, &format!("ch{chan_no}:floor"))
            .unwrap_or(0)
    }

    fn dead_lettered(&self, ctx: &mut ServiceCtx<'_>, chan_no: i64, seq: i64) -> bool {
        self.fetch_int(ctx, &format!("ch{chan_no}:x{seq}"))
            .is_some()
    }

    fn wake_all(ctx: &mut ServiceCtx<'_>, waiters: Option<Vec<ThreadId>>) {
        for w in waiters.unwrap_or_default() {
            let _ = ctx.wake(w);
        }
    }

    fn endpoint(&self, cid: i64, role: i64) -> Result<Endpoint, ServiceError> {
        let ep = self.endpoints.get(&cid).ok_or(ServiceError::NotFound)?;
        if ep.role != role {
            return Err(ServiceError::InvalidArg);
        }
        Ok(ep.clone())
    }
}

impl Service for ChannelService {
    fn interface(&self) -> &'static str {
        "chan"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // chan_open(compid, chan_no, role) -> cid
            "chan_open" => {
                let chan_no = args[1].int()?;
                let role = args[2].int()?;
                if role != ROLE_PRODUCER && role != ROLE_CONSUMER {
                    return Err(ServiceError::InvalidArg);
                }
                self.next_cid += 1;
                let cid = self.next_cid;
                self.endpoints.insert(
                    cid,
                    Endpoint {
                        chan_no,
                        role,
                        cursor: 0,
                    },
                );
                Ok(Value::Int(cid))
            }
            // chan_restore(creator, cid, chan_no, role, cursor) —
            // recovery-only G0 upcall: re-seat an endpoint under its
            // original id at the last *committed* cursor (CR0). The
            // cursor argument is the stub-tracked return value of the
            // last successful chan_commit (0 before any commit).
            "chan_restore" => {
                let cid = args[1].int()?;
                let chan_no = args[2].int()?;
                let role = args[3].int()?;
                let cursor = args[4].int()?;
                self.endpoints.insert(
                    cid,
                    Endpoint {
                        chan_no,
                        role,
                        cursor,
                    },
                );
                // Restored ids must never be recycled by later opens.
                self.next_cid = self.next_cid.max(cid);
                Ok(Value::Int(cid))
            }
            // chan_send(compid, desc(cid), seq, payload) -> payload len
            "chan_send" => {
                let cid = args[1].int()?;
                let seq = args[2].int()?;
                let payload = args[3].bytes()?.to_vec();
                let ep = self.endpoint(cid, ROLE_PRODUCER)?;
                let msg_key = format!("ch{}:m{seq}", ep.chan_no);
                // Idempotent by seq: a redone send (stub retry after a
                // mid-call fault) finds its message already in the ring.
                if self.fetch_bytes(ctx, &msg_key).is_some() {
                    return Ok(Value::Int(payload.len() as i64));
                }
                let tail = self.tail(ctx, ep.chan_no);
                let floor = self.floor(ctx, ep.chan_no);
                if tail - floor >= self.capacity {
                    let me = ctx.thread;
                    let ws = self.send_waiters.entry(ep.chan_no).or_default();
                    if !ws.contains(&me) {
                        ws.push(me);
                    }
                    return Err(ctx.block_current());
                }
                // G1: persist inside the critical region, message first
                // so a torn write can never publish an empty slot.
                self.store_bytes(ctx, &msg_key, payload.clone())?;
                if seq + 1 > tail {
                    self.store_int(ctx, &format!("ch{}:tail", ep.chan_no), seq + 1)?;
                }
                Self::wake_all(ctx, self.peek_waiters.remove(&ep.chan_no));
                Ok(Value::Int(payload.len() as i64))
            }
            // chan_peek(compid, desc(cid)) -> payload
            "chan_peek" => {
                let cid = args[1].int()?;
                let ep = self.endpoint(cid, ROLE_CONSUMER)?;
                let tail = self.tail(ctx, ep.chan_no);
                let mut pos = ep.cursor;
                loop {
                    if pos >= tail {
                        let me = ctx.thread;
                        let ws = self.peek_waiters.entry(ep.chan_no).or_default();
                        if !ws.contains(&me) {
                            ws.push(me);
                        }
                        return Err(ctx.block_current());
                    }
                    if self.dead_lettered(ctx, ep.chan_no, pos) {
                        pos += 1;
                        continue;
                    }
                    let payload = self
                        .fetch_bytes(ctx, &format!("ch{}:m{pos}", ep.chan_no))
                        .ok_or(ServiceError::NotFound)?;
                    if !payload.starts_with(POISON_PREFIX) {
                        return Ok(Value::from(payload));
                    }
                    // Showstopper delivery. The persisted per-message
                    // fault counter survives the micro-reboot this fault
                    // triggers, so escalation is monotone.
                    let fkey = format!("ch{}:f{pos}", ep.chan_no);
                    let faults = self.fetch_int(ctx, &fkey).unwrap_or(0) as u64;
                    if faults < self.poison_limit {
                        self.store_int(ctx, &fkey, (faults + 1) as i64)?;
                        // The message crashes its consumer's delivery
                        // path: fault ourselves mid-peek. The client
                        // observes CallError::Fault; the stub
                        // micro-reboots us, CR0 re-seats the cursor,
                        // and the redone peek lands back here.
                        ctx.raise_fault(ctx.this);
                        return Err(ServiceError::Unavailable);
                    }
                    // K faults reached: route to the dead-letter queue
                    // (once — the marker gates the DL0 note) and serve
                    // the next message.
                    self.store_int(ctx, &format!("ch{}:x{pos}", ep.chan_no), faults as i64)?;
                    ctx.note_dead_letter(cid, pos, faults);
                    pos += 1;
                }
            }
            // chan_commit(compid, desc(cid)) -> new cursor
            "chan_commit" => {
                let cid = args[1].int()?;
                let ep = self.endpoint(cid, ROLE_CONSUMER)?;
                let tail = self.tail(ctx, ep.chan_no);
                // Consume the first deliverable message at/after the
                // cursor — exactly the one the last peek returned. The
                // skip is recomputed from persisted dead-letter markers,
                // so a redone commit after CR0 re-seating collapses to
                // the same position (exactly-once).
                let mut pos = ep.cursor;
                while pos < tail && self.dead_lettered(ctx, ep.chan_no, pos) {
                    pos += 1;
                }
                if pos >= tail {
                    return Err(ServiceError::InvalidArg);
                }
                let cursor = pos + 1;
                self.endpoints
                    .get_mut(&cid)
                    .expect("endpoint checked above")
                    .cursor = cursor;
                let floor = self.floor(ctx, ep.chan_no);
                if cursor > floor {
                    self.store_int(ctx, &format!("ch{}:floor", ep.chan_no), cursor)?;
                }
                Self::wake_all(ctx, self.send_waiters.remove(&ep.chan_no));
                Ok(Value::Int(cursor))
            }
            // chan_close(compid, desc(cid))
            "chan_close" => {
                let cid = args[1].int()?;
                self.endpoints.remove(&cid).ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(0))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        // The ring lives in storage (G1); only endpoint seating and
        // waiter lists are lost. next_cid stays monotone across reboots
        // so re-opened endpoints never collide with tracked descriptors.
        self.endpoints.clear();
        self.send_waiters.clear();
        self.peek_waiters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CallError, CostModel, Kernel, Priority};
    use sg_services::storage::StorageService;

    fn setup(capacity: i64, limit: u64) -> (Kernel, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let st = k.add_component("storage", Box::new(StorageService::new()));
        let ch = k.add_component("chan", Box::new(ChannelService::new(st, capacity, limit)));
        k.grant(app, ch);
        k.grant(ch, st);
        let t = k.create_thread(app, Priority(5));
        (k, app, ch, t)
    }

    fn open(k: &mut Kernel, app: ComponentId, ch: ComponentId, t: ThreadId, role: i64) -> i64 {
        k.invoke(
            app,
            t,
            ch,
            "chan_open",
            &[Value::Int(1), Value::Int(7), Value::Int(role)],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    fn send(
        k: &mut Kernel,
        app: ComponentId,
        ch: ComponentId,
        t: ThreadId,
        cid: i64,
        seq: i64,
        p: &[u8],
    ) {
        k.invoke(
            app,
            t,
            ch,
            "chan_send",
            &[
                Value::Int(1),
                Value::Int(cid),
                Value::Int(seq),
                Value::from(p.to_vec()),
            ],
        )
        .unwrap();
    }

    fn peek(k: &mut Kernel, app: ComponentId, ch: ComponentId, t: ThreadId, cid: i64) -> Vec<u8> {
        k.invoke(app, t, ch, "chan_peek", &[Value::Int(1), Value::Int(cid)])
            .unwrap()
            .bytes()
            .unwrap()
            .to_vec()
    }

    fn commit(k: &mut Kernel, app: ComponentId, ch: ComponentId, t: ThreadId, cid: i64) -> i64 {
        k.invoke(app, t, ch, "chan_commit", &[Value::Int(1), Value::Int(cid)])
            .unwrap()
            .int()
            .unwrap()
    }

    #[test]
    fn send_peek_commit_in_order() {
        let (mut k, app, ch, t) = setup(8, 3);
        let p = open(&mut k, app, ch, t, ROLE_PRODUCER);
        let c = open(&mut k, app, ch, t, ROLE_CONSUMER);
        send(&mut k, app, ch, t, p, 0, b"a");
        send(&mut k, app, ch, t, p, 1, b"b");
        assert_eq!(peek(&mut k, app, ch, t, c), b"a");
        // Peek does not consume.
        assert_eq!(peek(&mut k, app, ch, t, c), b"a");
        assert_eq!(commit(&mut k, app, ch, t, c), 1);
        assert_eq!(peek(&mut k, app, ch, t, c), b"b");
        assert_eq!(commit(&mut k, app, ch, t, c), 2);
    }

    #[test]
    fn empty_peek_blocks_and_send_wakes() {
        let (mut k, app, ch, t) = setup(8, 3);
        let p = open(&mut k, app, ch, t, ROLE_PRODUCER);
        let c = open(&mut k, app, ch, t, ROLE_CONSUMER);
        let t2 = k.create_thread(app, Priority(5));
        let err = k
            .invoke(app, t2, ch, "chan_peek", &[Value::Int(1), Value::Int(c)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        send(&mut k, app, ch, t, p, 0, b"x");
        assert!(k.thread(t2).unwrap().state.is_runnable());
        assert_eq!(peek(&mut k, app, ch, t2, c), b"x");
    }

    #[test]
    fn full_ring_blocks_sender_until_commit() {
        let (mut k, app, ch, t) = setup(2, 3);
        let p = open(&mut k, app, ch, t, ROLE_PRODUCER);
        let c = open(&mut k, app, ch, t, ROLE_CONSUMER);
        send(&mut k, app, ch, t, p, 0, b"a");
        send(&mut k, app, ch, t, p, 1, b"b");
        let t2 = k.create_thread(app, Priority(5));
        let err = k
            .invoke(
                app,
                t2,
                ch,
                "chan_send",
                &[
                    Value::Int(1),
                    Value::Int(p),
                    Value::Int(2),
                    Value::from(b"c".to_vec()),
                ],
            )
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        peek(&mut k, app, ch, t, c);
        commit(&mut k, app, ch, t, c);
        assert!(k.thread(t2).unwrap().state.is_runnable());
        send(&mut k, app, ch, t2, p, 2, b"c");
    }

    #[test]
    fn send_is_idempotent_by_seq() {
        let (mut k, app, ch, t) = setup(8, 3);
        let p = open(&mut k, app, ch, t, ROLE_PRODUCER);
        let c = open(&mut k, app, ch, t, ROLE_CONSUMER);
        send(&mut k, app, ch, t, p, 0, b"once");
        // The redo of a send whose first attempt already landed.
        send(&mut k, app, ch, t, p, 0, b"once");
        assert_eq!(peek(&mut k, app, ch, t, c), b"once");
        assert_eq!(commit(&mut k, app, ch, t, c), 1);
        let err = k
            .invoke(app, t, ch, "chan_peek", &[Value::Int(1), Value::Int(c)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock, "duplicate must not enqueue");
    }

    #[test]
    fn restore_reseats_cursor_and_keeps_ids_monotone() {
        let (mut k, app, ch, t) = setup(8, 3);
        let p = open(&mut k, app, ch, t, ROLE_PRODUCER);
        let c = open(&mut k, app, ch, t, ROLE_CONSUMER);
        send(&mut k, app, ch, t, p, 0, b"a");
        send(&mut k, app, ch, t, p, 1, b"b");
        peek(&mut k, app, ch, t, c);
        commit(&mut k, app, ch, t, c);
        peek(&mut k, app, ch, t, c); // b peeked, NOT committed
        k.fault(ch);
        k.micro_reboot(ch).unwrap();
        // Recovery re-seats both endpoints; the consumer at cursor 1.
        for (cid, role, cursor) in [(p, ROLE_PRODUCER, 0), (c, ROLE_CONSUMER, 1)] {
            k.invoke(
                app,
                t,
                ch,
                "chan_restore",
                &[
                    Value::Int(1),
                    Value::Int(cid),
                    Value::Int(7),
                    Value::Int(role),
                    Value::Int(cursor),
                ],
            )
            .unwrap();
        }
        // The uncommitted message is re-delivered; the committed one not.
        assert_eq!(peek(&mut k, app, ch, t, c), b"b");
        assert_eq!(commit(&mut k, app, ch, t, c), 2);
        let fresh = open(&mut k, app, ch, t, ROLE_PRODUCER);
        assert!(fresh > c, "restored ids must not be recycled");
    }

    #[test]
    fn poison_faults_exactly_k_times_then_dead_letters() {
        let (mut k, app, ch, t) = setup(8, 2);
        let p = open(&mut k, app, ch, t, ROLE_PRODUCER);
        let c = open(&mut k, app, ch, t, ROLE_CONSUMER);
        send(&mut k, app, ch, t, p, 0, b"poison:0");
        send(&mut k, app, ch, t, p, 1, b"ok");
        for round in 0..2 {
            let err = k
                .invoke(app, t, ch, "chan_peek", &[Value::Int(1), Value::Int(c)])
                .unwrap_err();
            assert_eq!(err, CallError::Fault { component: ch }, "round {round}");
            k.micro_reboot(ch).unwrap();
            k.invoke(
                app,
                t,
                ch,
                "chan_restore",
                &[
                    Value::Int(1),
                    Value::Int(c),
                    Value::Int(7),
                    Value::Int(ROLE_CONSUMER),
                    Value::Int(0),
                ],
            )
            .unwrap();
        }
        // Third delivery attempt: the counter reached K=2, the message
        // is dead-lettered and the next one is served.
        assert_eq!(peek(&mut k, app, ch, t, c), b"ok");
        // Commit skips the dead-lettered slot: cursor jumps 0 → 2.
        assert_eq!(commit(&mut k, app, ch, t, c), 2);
    }

    #[test]
    fn role_mismatch_rejected() {
        let (mut k, app, ch, t) = setup(8, 3);
        let p = open(&mut k, app, ch, t, ROLE_PRODUCER);
        let err = k
            .invoke(app, t, ch, "chan_peek", &[Value::Int(1), Value::Int(p)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }

    #[test]
    fn commit_without_message_rejected() {
        let (mut k, app, ch, t) = setup(8, 3);
        let c = open(&mut k, app, ch, t, ROLE_CONSUMER);
        let err = k
            .invoke(app, t, ch, "chan_commit", &[Value::Int(1), Value::Int(c)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }

    #[test]
    fn reset_loses_endpoints_but_ring_survives_in_storage() {
        let (mut k, app, ch, t) = setup(8, 3);
        let p = open(&mut k, app, ch, t, ROLE_PRODUCER);
        send(&mut k, app, ch, t, p, 0, b"kept");
        k.fault(ch);
        k.micro_reboot(ch).unwrap();
        let err = k
            .invoke(
                app,
                t,
                ch,
                "chan_send",
                &[
                    Value::Int(1),
                    Value::Int(p),
                    Value::Int(1),
                    Value::from(b"y".to_vec()),
                ],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
        // Re-seat and read the surviving message.
        let c = open(&mut k, app, ch, t, ROLE_CONSUMER);
        assert_eq!(peek(&mut k, app, ch, t, c), b"kept");
    }
}
