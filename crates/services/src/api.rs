//! Typed client wrappers over the dynamic service interfaces.
//!
//! All wrappers go through [`composite::InterfaceCall`], so the same
//! client code runs bare (no fault tolerance), under C³ stubs, and under
//! SuperGlue stubs — the three systems the evaluation compares.

use composite::{CallError, ComponentId, InterfaceCall, ThreadId, Value};

/// One client's connection to one server interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientEnd {
    /// The invoking client component.
    pub client: ComponentId,
    /// The invoking thread.
    pub thread: ThreadId,
    /// The server component.
    pub server: ComponentId,
}

impl ClientEnd {
    /// Construct a client end.
    #[must_use]
    pub fn new(client: ComponentId, thread: ThreadId, server: ComponentId) -> Self {
        Self {
            client,
            thread,
            server,
        }
    }

    /// Raw call through the interface-call layer.
    ///
    /// # Errors
    ///
    /// Propagates the layer's [`CallError`].
    pub fn call<C: InterfaceCall>(
        &self,
        ctx: &mut C,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        ctx.interface_call(self.client, self.thread, self.server, fname, args)
    }

    fn compid(&self) -> Value {
        Value::from(self.client.0)
    }
}

/// Scheduler (`sched`) client API.
pub mod sched {
    use super::*;

    /// Register a thread; returns its scheduler descriptor.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn setup<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        thdid: ThreadId,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(ctx, "sched_setup", &[end.compid(), Value::from(thdid.0)])?
            .int()
            .unwrap_or(-1))
    }

    /// Block the calling thread on its descriptor.
    ///
    /// # Errors
    ///
    /// [`CallError::WouldBlock`] until woken; other [`CallError`]s as-is.
    pub fn blk<C: InterfaceCall>(ctx: &mut C, end: &ClientEnd, desc: i64) -> Result<(), CallError> {
        end.call(ctx, "sched_blk", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }

    /// Wake the thread behind a descriptor.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn wakeup<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "sched_wakeup", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }

    /// Deregister a descriptor.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn exit<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "sched_exit", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }
}

/// Lock (`lock`) client API.
pub mod lock {
    use super::*;

    /// Allocate a lock.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn alloc<C: InterfaceCall>(ctx: &mut C, end: &ClientEnd) -> Result<i64, CallError> {
        Ok(end
            .call(ctx, "lock_alloc", &[end.compid()])?
            .int()
            .unwrap_or(-1))
    }

    /// Take (acquire) a lock; blocks under contention.
    ///
    /// # Errors
    ///
    /// [`CallError::WouldBlock`] while contended.
    pub fn take<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "lock_take", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }

    /// Release a lock.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn release<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "lock_release", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }

    /// Free a lock.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn free<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "lock_free", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }
}

/// Event manager (`evt`) client API.
pub mod evt {
    use super::*;

    /// Create an event (0 = no parent).
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn split<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        parent: i64,
        grp: i64,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(
                ctx,
                "evt_split",
                &[end.compid(), Value::Int(parent), Value::Int(grp)],
            )?
            .int()
            .unwrap_or(-1))
    }

    /// Wait for the event; blocks until triggered.
    ///
    /// # Errors
    ///
    /// [`CallError::WouldBlock`] until triggered.
    pub fn wait<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(ctx, "evt_wait", &[end.compid(), Value::Int(desc)])?
            .int()
            .unwrap_or(-1))
    }

    /// Trigger the event.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn trigger<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "evt_trigger", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }

    /// Destroy the event.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn free<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "evt_free", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }
}

/// Timer manager (`tmr`) client API.
pub mod tmr {
    use super::*;

    /// Create a periodic timer.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn create<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        period_ns: i64,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(ctx, "tmr_create", &[end.compid(), Value::Int(period_ns)])?
            .int()
            .unwrap_or(-1))
    }

    /// Sleep until the next period boundary.
    ///
    /// # Errors
    ///
    /// [`CallError::WouldBlock`] until the deadline.
    pub fn wait<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "tmr_wait", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }

    /// Change the period (re-arms relative to now).
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn set_period<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
        period_ns: i64,
    ) -> Result<(), CallError> {
        end.call(
            ctx,
            "tmr_period",
            &[end.compid(), Value::Int(desc), Value::Int(period_ns)],
        )
        .map(|_| ())
    }

    /// Destroy the timer.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn free<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        desc: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "tmr_free", &[end.compid(), Value::Int(desc)])
            .map(|_| ())
    }
}

/// Memory manager (`mm`) client API.
pub mod mman {
    use super::*;

    /// Create a root mapping for `vaddr` in the calling component.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn get_page<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        vaddr: u64,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(
                ctx,
                "mman_get_page",
                &[end.compid(), Value::Int(vaddr as i64)],
            )?
            .int()
            .unwrap_or(-1))
    }

    /// Alias the mapping named by `src_key` (a descriptor returned by
    /// [`get_page`]/[`alias_page`]) into `(dst, dst_vaddr)`.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn alias_page<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        src_key: i64,
        dst: ComponentId,
        dst_vaddr: u64,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(
                ctx,
                "mman_alias_page",
                &[
                    end.compid(),
                    Value::Int(src_key),
                    Value::from(dst.0),
                    Value::Int(dst_vaddr as i64),
                ],
            )?
            .int()
            .unwrap_or(-1))
    }

    /// Revoke the mapping named by `key` and its subtree of aliases.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn release_page<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        key: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "mman_release_page", &[end.compid(), Value::Int(key)])
            .map(|_| ())
    }
}

/// RAM filesystem (`fs`) client API.
pub mod fs {
    use super::*;

    /// Open a file relative to a parent descriptor (0 = root).
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn split<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        parent: i64,
        path: &str,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(
                ctx,
                "tsplit",
                &[end.compid(), Value::Int(parent), Value::from(path)],
            )?
            .int()
            .unwrap_or(-1))
    }

    /// Reposition the descriptor offset.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn seek<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        fd: i64,
        offset: i64,
    ) -> Result<(), CallError> {
        end.call(
            ctx,
            "tseek",
            &[end.compid(), Value::Int(fd), Value::Int(offset)],
        )
        .map(|_| ())
    }

    /// Read up to `len` bytes at the current offset.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn read<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        fd: i64,
        len: i64,
    ) -> Result<Vec<u8>, CallError> {
        let v = end.call(
            ctx,
            "tread",
            &[end.compid(), Value::Int(fd), Value::Int(len)],
        )?;
        match v {
            Value::Bytes(b) => Ok(b.to_vec()),
            _ => Ok(Vec::new()),
        }
    }

    /// Write bytes at the current offset.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn write<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        fd: i64,
        data: Vec<u8>,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(
                ctx,
                "twrite",
                &[end.compid(), Value::Int(fd), Value::from(data)],
            )?
            .int()
            .unwrap_or(0))
    }

    /// Close a descriptor.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn release<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        fd: i64,
    ) -> Result<(), CallError> {
        end.call(ctx, "trelease", &[end.compid(), Value::Int(fd)])
            .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CostModel, Kernel, Priority};

    use crate::lock::LockService;

    #[test]
    fn client_end_routes_through_interface_call() {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let lk = k.add_component("lock", Box::new(LockService::new()));
        k.grant(app, lk);
        let t = k.create_thread(app, Priority(5));
        let end = ClientEnd::new(app, t, lk);
        let id = lock::alloc(&mut k, &end).unwrap();
        lock::take(&mut k, &end, id).unwrap();
        lock::release(&mut k, &end, id).unwrap();
        lock::free(&mut k, &end, id).unwrap();
        assert!(lock::take(&mut k, &end, id).is_err());
    }
}
