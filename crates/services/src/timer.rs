//! The timer-manager component (`tmr` interface).
//!
//! §V-B's **Timer** workload: "a thread wakes up, then blocks for a
//! certain amount of time periodically."
//!
//! | function | role | effect |
//! |---|---|---|
//! | `tmr_create(compid, period_ns)` → tmrid | create | create a periodic timer armed at `now + period` |
//! | `tmr_wait(compid, desc)` | block | sleep until the timer's next deadline |
//! | `tmr_period(compid, desc, period_ns)` | — | change the period |
//! | `tmr_free(compid, desc)` | terminate | destroy |
//!
//! A timer fault loses the arming state; recovery replays `tmr_create`
//! (+ `tmr_period`) from tracked metadata, re-arming relative to the
//! current virtual time — the same behavior the paper's timer recovery
//! exhibits (a period may stretch across the fault, but periodicity
//! resumes).

use std::collections::BTreeMap;

use composite::{Service, ServiceCtx, ServiceError, SimTime, Value};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Timer {
    period: SimTime,
    next_deadline: SimTime,
}

/// The timer-manager service component.
#[derive(Debug, Default)]
pub struct TimerService {
    timers: BTreeMap<i64, Timer>,
    next_id: i64,
}

impl TimerService {
    /// A fresh timer manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live timers (tests/reflection).
    #[must_use]
    pub fn timer_count(&self) -> usize {
        self.timers.len()
    }
}

impl Service for TimerService {
    fn interface(&self) -> &'static str {
        "tmr"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // tmr_create(compid, period_ns) -> tmrid
            "tmr_create" => {
                let _compid = args[0].int()?;
                let period = args[1].int()?;
                if period <= 0 {
                    return Err(ServiceError::InvalidArg);
                }
                let period = SimTime(period as u64);
                self.next_id += 1;
                let id = self.next_id;
                self.timers.insert(
                    id,
                    Timer {
                        period,
                        next_deadline: ctx.now() + period,
                    },
                );
                Ok(Value::Int(id))
            }
            // tmr_wait(compid, desc(tmrid)) -> 0 once the deadline passed
            "tmr_wait" => {
                let id = args[1].int()?;
                let now = ctx.now();
                let tmr = self.timers.get_mut(&id).ok_or(ServiceError::NotFound)?;
                if now >= tmr.next_deadline {
                    // Deadline reached (retry after sleep, or late call):
                    // re-arm for the next period and return.
                    tmr.next_deadline += tmr.period;
                    if tmr.next_deadline <= now {
                        // Missed whole periods (e.g. across a fault):
                        // resynchronize relative to now.
                        tmr.next_deadline = now + tmr.period;
                    }
                    return Ok(Value::Int(0));
                }
                let deadline = tmr.next_deadline;
                Err(ctx.sleep_current_until(deadline))
            }
            // tmr_period(compid, desc(tmrid), period_ns)
            "tmr_period" => {
                let id = args[1].int()?;
                let period = args[2].int()?;
                if period <= 0 {
                    return Err(ServiceError::InvalidArg);
                }
                let now = ctx.now();
                let tmr = self.timers.get_mut(&id).ok_or(ServiceError::NotFound)?;
                tmr.period = SimTime(period as u64);
                tmr.next_deadline = now + tmr.period;
                Ok(Value::Int(0))
            }
            // tmr_free(compid, desc(tmrid))
            "tmr_free" => {
                let id = args[1].int()?;
                self.timers.remove(&id).ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(0))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        self.timers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CallError, ComponentId, CostModel, Kernel, Priority, ThreadId};

    fn setup() -> (Kernel, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let tmr = k.add_component("tmr", Box::new(TimerService::new()));
        k.grant(app, tmr);
        let t = k.create_thread(app, Priority(5));
        (k, app, tmr, t)
    }

    fn create(k: &mut Kernel, app: ComponentId, tmr: ComponentId, t: ThreadId, period: i64) -> i64 {
        k.invoke(
            app,
            t,
            tmr,
            "tmr_create",
            &[Value::Int(1), Value::Int(period)],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    #[test]
    fn wait_sleeps_until_deadline_then_fires() {
        let (mut k, app, tmr, t) = setup();
        let id = create(&mut k, app, tmr, t, 1_000);
        let err = k
            .invoke(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert_eq!(k.earliest_wakeup(), Some(SimTime(1_000)));
        k.advance_to(SimTime(1_000));
        // Retry succeeds and re-arms.
        let r = k
            .invoke(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        assert_eq!(r, Value::Int(0));
        // Second wait sleeps until 2000.
        let _ = k.invoke(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)]);
        assert_eq!(k.earliest_wakeup(), Some(SimTime(2_000)));
    }

    #[test]
    fn missed_periods_resynchronize() {
        let (mut k, app, tmr, t) = setup();
        let id = create(&mut k, app, tmr, t, 1_000);
        k.advance_to(SimTime(10_500));
        let r = k
            .invoke(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        assert_eq!(r, Value::Int(0));
        // Next deadline is now + period, not a burst of stale deadlines.
        let _ = k.invoke(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)]);
        assert_eq!(k.earliest_wakeup(), Some(SimTime(11_500)));
    }

    #[test]
    fn invalid_period_rejected() {
        let (mut k, app, tmr, t) = setup();
        let err = k
            .invoke(app, t, tmr, "tmr_create", &[Value::Int(1), Value::Int(0)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }

    #[test]
    fn period_change_rearms() {
        let (mut k, app, tmr, t) = setup();
        let id = create(&mut k, app, tmr, t, 1_000);
        k.invoke(
            app,
            t,
            tmr,
            "tmr_period",
            &[Value::Int(1), Value::Int(id), Value::Int(5_000)],
        )
        .unwrap();
        let _ = k.invoke(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)]);
        assert_eq!(k.earliest_wakeup(), Some(SimTime(5_000)));
    }

    #[test]
    fn free_then_wait_not_found() {
        let (mut k, app, tmr, t) = setup();
        let id = create(&mut k, app, tmr, t, 1_000);
        k.invoke(app, t, tmr, "tmr_free", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        let err = k
            .invoke(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn reboot_clears_timers() {
        let (mut k, app, tmr, t) = setup();
        let id = create(&mut k, app, tmr, t, 1_000);
        k.fault(tmr);
        k.micro_reboot(tmr).unwrap();
        let err = k
            .invoke(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }
}
