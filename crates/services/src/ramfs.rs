//! The RAM filesystem component (`fs` interface).
//!
//! Uses COMPOSITE's torrent-style API: `tsplit` opens a file relative to
//! a parent descriptor (fd 0 is the root), `tread`/`twrite` move data and
//! advance the per-descriptor offset, `tseek` repositions, `trelease`
//! closes.
//!
//! RamFS is the paper's example of a component whose descriptors alone
//! cannot reconstruct the service: the *file contents* (resource data,
//! `D_r`) would be lost by a micro-reboot. Per §II-C and **G1**, every
//! mutation redundantly stores the file into the storage component —
//! passed by zero-copy cbuf reference — *inside the critical region* that
//! mutates RamFS structures (the one manual storage interaction the paper
//! says is not automated). On a post-reboot access to a missing file,
//! RamFS itself re-fetches the contents from storage.

use std::collections::BTreeMap;

use composite::{CallError, ComponentId, Service, ServiceCtx, ServiceError, Value};

#[derive(Debug, Clone, PartialEq, Eq)]
struct FdRec {
    path: String,
    offset: usize,
}

/// The RAM filesystem service component.
#[derive(Debug)]
pub struct RamFs {
    storage: ComponentId,
    cbuf: ComponentId,
    /// Whether mutations are persisted to storage (disabled for the
    /// no-redundancy ablation).
    persist: bool,
    files: BTreeMap<String, Vec<u8>>,
    fds: BTreeMap<i64, FdRec>,
    /// Per-path cbuf carrying its persisted contents.
    file_cbufs: BTreeMap<String, i64>,
    next_fd: i64,
}

impl RamFs {
    /// A RamFS persisting through the given storage and cbuf components.
    #[must_use]
    pub fn new(storage: ComponentId, cbuf: ComponentId) -> Self {
        let mut fs = Self {
            storage,
            cbuf,
            persist: true,
            files: BTreeMap::new(),
            fds: BTreeMap::new(),
            file_cbufs: BTreeMap::new(),
            next_fd: 0,
        };
        fs.install_root();
        fs
    }

    /// A RamFS that never persists — the ablation variant that loses file
    /// data on reboot.
    #[must_use]
    pub fn without_persistence(storage: ComponentId, cbuf: ComponentId) -> Self {
        let mut fs = Self::new(storage, cbuf);
        fs.persist = false;
        fs
    }

    fn install_root(&mut self) {
        self.fds.insert(
            0,
            FdRec {
                path: String::new(),
                offset: 0,
            },
        );
    }

    /// Number of open descriptors, root included (tests/reflection).
    #[must_use]
    pub fn fd_count(&self) -> usize {
        self.fds.len()
    }

    /// Number of in-memory files (tests/reflection).
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Load a file's contents from the storage component if RamFS lost
    /// them (post-reboot). Returns whether the file is now present.
    fn ensure_loaded(&mut self, ctx: &mut ServiceCtx<'_>, path: &str) -> bool {
        if self.files.contains_key(path) {
            return true;
        }
        if !self.persist {
            return false;
        }
        let cbid = match ctx.invoke(self.storage, "st_fetch_ref", &[Value::from(path)]) {
            Ok(Value::Int(id)) => id,
            _ => return false,
        };
        match ctx.invoke(self.cbuf, "cb_read", &[Value::Int(cbid)]) {
            Ok(Value::Bytes(data)) => {
                // G1: the redundant copy brought the lost contents back.
                ctx.note_mechanism(composite::Mechanism::G1);
                self.files.insert(path.to_owned(), data.to_vec());
                self.file_cbufs.insert(path.to_owned(), cbid);
                true
            }
            _ => false,
        }
    }

    /// Persist a file into the storage component by cbuf reference,
    /// within the mutation's critical region (**G1**).
    fn persist_file(&mut self, ctx: &mut ServiceCtx<'_>, path: &str) -> Result<(), CallError> {
        if !self.persist {
            return Ok(());
        }
        let data = self.files.get(path).cloned().unwrap_or_default();
        let cbid = match self.file_cbufs.get(path) {
            Some(&id) => id,
            None => {
                let id = ctx
                    .invoke(self.cbuf, "cb_alloc", &[Value::Int(0)])?
                    .int()
                    .unwrap_or_default();
                self.file_cbufs.insert(path.to_owned(), id);
                id
            }
        };
        ctx.invoke(
            self.cbuf,
            "cb_write",
            &[Value::Int(cbid), Value::Int(0), Value::from(data)],
        )?;
        ctx.invoke(
            self.storage,
            "st_store_ref",
            &[Value::from(path), Value::Int(cbid)],
        )?;
        Ok(())
    }
}

impl Service for RamFs {
    fn interface(&self) -> &'static str {
        "fs"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // tsplit(compid, parent_fd, path) -> fd
            "tsplit" => {
                let _compid = args[0].int()?;
                let parent = args[1].int()?;
                let rel = args[2].str()?.to_owned();
                if rel.is_empty() || rel.contains('\0') {
                    return Err(ServiceError::InvalidArg);
                }
                let parent_path = self
                    .fds
                    .get(&parent)
                    .ok_or(ServiceError::NotFound)?
                    .path
                    .clone();
                let path = format!("{parent_path}/{rel}");
                // Restore contents from storage if we lost them (G1), or
                // create the file fresh.
                if !self.ensure_loaded(ctx, &path) {
                    self.files.entry(path.clone()).or_default();
                }
                self.next_fd += 1;
                let fd = self.next_fd;
                self.fds.insert(fd, FdRec { path, offset: 0 });
                Ok(Value::Int(fd))
            }
            // tseek(compid, fd, offset) -> offset
            "tseek" => {
                let fd = args[1].int()?;
                let offset = args[2].int()?;
                if offset < 0 {
                    return Err(ServiceError::InvalidArg);
                }
                let rec = self.fds.get_mut(&fd).ok_or(ServiceError::NotFound)?;
                rec.offset = offset as usize;
                Ok(Value::Int(offset))
            }
            // tread(compid, fd, len) -> bytes (advances offset)
            "tread" => {
                let fd = args[1].int()?;
                let len = args[2].int()?.max(0) as usize;
                let rec = self.fds.get(&fd).ok_or(ServiceError::NotFound)?;
                let (path, offset) = (rec.path.clone(), rec.offset);
                if !self.ensure_loaded(ctx, &path) {
                    return Err(ServiceError::NotFound);
                }
                let data = self.files.get(&path).expect("loaded above");
                let end = (offset + len).min(data.len());
                let chunk = if offset < data.len() {
                    data[offset..end].to_vec()
                } else {
                    Vec::new()
                };
                let n = chunk.len();
                self.fds.get_mut(&fd).expect("checked above").offset = offset + n;
                Ok(Value::from(chunk))
            }
            // twrite(compid, fd, bytes) -> n written (advances offset)
            "twrite" => {
                let fd = args[1].int()?;
                let bytes = args[2].bytes()?.to_vec();
                let rec = self.fds.get(&fd).ok_or(ServiceError::NotFound)?;
                let (path, offset) = (rec.path.clone(), rec.offset);
                self.ensure_loaded(ctx, &path);
                let file = self.files.entry(path.clone()).or_default();
                if offset + bytes.len() > file.len() {
                    file.resize(offset + bytes.len(), 0);
                }
                file[offset..offset + bytes.len()].copy_from_slice(&bytes);
                let n = bytes.len();
                self.fds.get_mut(&fd).expect("checked above").offset = offset + n;
                // G1: persist inside the critical region.
                self.persist_file(ctx, &path)
                    .map_err(|_| ServiceError::Unavailable)?;
                Ok(Value::Int(n as i64))
            }
            // trelease(compid, fd)
            "trelease" => {
                let fd = args[1].int()?;
                if fd == 0 {
                    return Err(ServiceError::InvalidArg); // root is eternal
                }
                self.fds.remove(&fd).ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(0))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        self.files.clear();
        self.fds.clear();
        self.file_cbufs.clear();
        self.install_root();
        // next_fd stays monotone across reboots.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CostModel, Kernel, Priority, ThreadId};

    use crate::cbuf::CbufService;
    use crate::storage::StorageService;

    fn setup() -> (Kernel, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let st = k.add_component("storage", Box::new(StorageService::new()));
        let cb = k.add_component("cbuf", Box::new(CbufService::new()));
        let fs = k.add_component("fs", Box::new(RamFs::new(st, cb)));
        k.grant(app, fs);
        k.grant(fs, st);
        k.grant(fs, cb);
        let t = k.create_thread(app, Priority(5));
        (k, app, fs, t)
    }

    fn tsplit(k: &mut Kernel, app: ComponentId, fs: ComponentId, t: ThreadId, path: &str) -> i64 {
        k.invoke(
            app,
            t,
            fs,
            "tsplit",
            &[Value::Int(1), Value::Int(0), Value::from(path)],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    #[test]
    fn paper_workload_open_write_read_close() {
        // §V-B FS: "A file is opened, a byte is written to it, read from
        // it, and then it is closed."
        let (mut k, app, fs, t) = setup();
        let fd = tsplit(&mut k, app, fs, t, "data.txt");
        let n = k
            .invoke(
                app,
                t,
                fs,
                "twrite",
                &[Value::Int(1), Value::Int(fd), Value::from(vec![0x42])],
            )
            .unwrap();
        assert_eq!(n, Value::Int(1));
        k.invoke(
            app,
            t,
            fs,
            "tseek",
            &[Value::Int(1), Value::Int(fd), Value::Int(0)],
        )
        .unwrap();
        let r = k
            .invoke(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![0x42]));
        k.invoke(app, t, fs, "trelease", &[Value::Int(1), Value::Int(fd)])
            .unwrap();
    }

    #[test]
    fn offsets_advance_and_seek_repositions() {
        let (mut k, app, fs, t) = setup();
        let fd = tsplit(&mut k, app, fs, t, "f");
        k.invoke(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![1, 2, 3])],
        )
        .unwrap();
        // Offset is now 3; reading yields nothing.
        let r = k
            .invoke(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(3)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![]));
        k.invoke(
            app,
            t,
            fs,
            "tseek",
            &[Value::Int(1), Value::Int(fd), Value::Int(1)],
        )
        .unwrap();
        let r = k
            .invoke(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(9)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![2, 3]));
    }

    #[test]
    fn contents_survive_micro_reboot_via_storage() {
        let (mut k, app, fs, t) = setup();
        let fd = tsplit(&mut k, app, fs, t, "persist.txt");
        k.invoke(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![7, 8])],
        )
        .unwrap();
        k.fault(fs);
        k.micro_reboot(fs).unwrap();
        // Fresh open (as recovery would replay): contents restored from
        // the storage component through the cbuf.
        let fd2 = tsplit(&mut k, app, fs, t, "persist.txt");
        let r = k
            .invoke(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd2), Value::Int(2)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![7, 8]));
    }

    #[test]
    fn without_persistence_contents_lost_on_reboot() {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let st = k.add_component("storage", Box::new(StorageService::new()));
        let cb = k.add_component("cbuf", Box::new(CbufService::new()));
        let fs = k.add_component("fs", Box::new(RamFs::without_persistence(st, cb)));
        k.grant(app, fs);
        k.grant(fs, st);
        k.grant(fs, cb);
        let t = k.create_thread(app, Priority(5));
        let fd = tsplit(&mut k, app, fs, t, "gone.txt");
        k.invoke(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![7])],
        )
        .unwrap();
        k.fault(fs);
        k.micro_reboot(fs).unwrap();
        let fd2 = tsplit(&mut k, app, fs, t, "gone.txt");
        let r = k
            .invoke(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd2), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![]), "ablation variant loses data");
    }

    #[test]
    fn nested_paths_resolve_through_parents() {
        let (mut k, app, fs, t) = setup();
        let dir = tsplit(&mut k, app, fs, t, "dir");
        let fd = k
            .invoke(
                app,
                t,
                fs,
                "tsplit",
                &[Value::Int(1), Value::Int(dir), Value::from("leaf")],
            )
            .unwrap()
            .int()
            .unwrap();
        k.invoke(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![5])],
        )
        .unwrap();
        // Re-opening via the same nesting reaches the same file.
        let dir2 = tsplit(&mut k, app, fs, t, "dir");
        let fd2 = k
            .invoke(
                app,
                t,
                fs,
                "tsplit",
                &[Value::Int(1), Value::Int(dir2), Value::from("leaf")],
            )
            .unwrap()
            .int()
            .unwrap();
        let r = k
            .invoke(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd2), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![5]));
    }

    #[test]
    fn split_of_unknown_parent_not_found() {
        let (mut k, app, fs, t) = setup();
        let err = k
            .invoke(
                app,
                t,
                fs,
                "tsplit",
                &[Value::Int(1), Value::Int(77), Value::from("x")],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn root_cannot_be_released() {
        let (mut k, app, fs, t) = setup();
        let err = k
            .invoke(app, t, fs, "trelease", &[Value::Int(1), Value::Int(0)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }

    #[test]
    fn empty_path_rejected() {
        let (mut k, app, fs, t) = setup();
        let err = k
            .invoke(
                app,
                t,
                fs,
                "tsplit",
                &[Value::Int(1), Value::Int(0), Value::from("")],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }

    #[test]
    fn fd_ids_monotone_across_reboot() {
        let (mut k, app, fs, t) = setup();
        let fd1 = tsplit(&mut k, app, fs, t, "a");
        k.fault(fs);
        k.micro_reboot(fs).unwrap();
        let fd2 = tsplit(&mut k, app, fs, t, "a");
        assert!(fd2 > fd1);
    }
}
