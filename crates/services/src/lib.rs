//! System-level service components for the simulated COMPOSITE OS.
//!
//! These are the six services the paper injects faults into (§V-B) —
//! scheduler, memory manager, RAM filesystem, lock, event manager, timer
//! manager — plus the two unprotected infrastructure components of §II-E:
//! the storage component (redundant descriptor/data store used by the
//! **G0**/**G1** recovery mechanisms) and the zero-copy buffer (`cbuf`)
//! manager used to move file data without copies.
//!
//! Each service implements [`composite::Service`]; its struct fields are
//! the private memory image a fault destroys and a micro-reboot resets.
//! The [`api`] module provides typed client wrappers over the dynamic
//! interface, and [`workloads`] contains the exact micro-workloads of
//! §V-B, written against [`composite::InterfaceCall`] so they run
//! unchanged on the bare kernel, under C³, and under SuperGlue.
//!
//! | Service | interface | `DR` model highlights |
//! |---|---|---|
//! | [`scheduler::Scheduler`] | `sched` | blocking; solo descriptors |
//! | [`lock::LockService`] | `lock` | blocking; solo descriptors |
//! | [`event::EventService`] | `evt` | blocking; **global** descriptors; parent links; metadata |
//! | [`timer::TimerService`] | `tmr` | blocking (timed); solo; metadata |
//! | [`mm::MemoryManager`] | `mm` | cross-component parents; recursive revocation; metadata |
//! | [`ramfs::RamFs`] | `fs` | parents; resource data (**G1**); metadata |
//! | [`storage::StorageService`] | `storage` | unprotected substrate |
//! | [`cbuf::CbufService`] | `cbuf` | unprotected substrate |

pub mod api;
pub mod cbuf;
pub mod event;
pub mod lock;
pub mod mm;
pub mod ramfs;
pub mod scheduler;
pub mod storage;
pub mod timer;
pub mod workloads;

/// Interface names as exported by each service, for stub registration.
pub mod interfaces {
    /// Scheduler interface name.
    pub const SCHED: &str = "sched";
    /// Memory-manager interface name.
    pub const MM: &str = "mm";
    /// RAM filesystem interface name.
    pub const FS: &str = "fs";
    /// Lock interface name.
    pub const LOCK: &str = "lock";
    /// Event-manager interface name.
    pub const EVT: &str = "evt";
    /// Timer-manager interface name.
    pub const TMR: &str = "tmr";
    /// Storage interface name.
    pub const STORAGE: &str = "storage";
    /// Zero-copy buffer interface name.
    pub const CBUF: &str = "cbuf";

    /// The six fault-injection target interfaces, in the paper's order
    /// (Table II rows).
    pub const TARGETS: [&str; 6] = [SCHED, MM, FS, LOCK, EVT, TMR];
}
