//! The lock component (`lock` interface) — §III-B's running example.
//!
//! | function | role | effect |
//! |---|---|---|
//! | `lock_alloc(compid)` → lockid | create | allocate a lock, initially available |
//! | `lock_take(compid, desc)` | block | acquire; blocks while held by another thread |
//! | `lock_release(compid, desc)` | wakeup | release; wakes all contenders (they re-contend) |
//! | `lock_free(compid, desc)` | terminate | destroy the lock |
//!
//! Contenders are woken on release and retry `lock_take`; the executor's
//! priority order decides who wins, giving deterministic priority
//! acquisition.

use std::collections::BTreeMap;

use composite::{Service, ServiceCtx, ServiceError, ThreadId, Value};

#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Lock {
    owner: Option<ThreadId>,
    waiters: Vec<ThreadId>,
}

/// The lock service component.
#[derive(Debug, Default)]
pub struct LockService {
    locks: BTreeMap<i64, Lock>,
    next_id: i64,
}

impl LockService {
    /// A fresh lock service.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live locks (tests/reflection).
    #[must_use]
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// The owner of a lock, if taken (tests/reflection).
    #[must_use]
    pub fn owner_of(&self, lockid: i64) -> Option<ThreadId> {
        self.locks.get(&lockid).and_then(|l| l.owner)
    }
}

impl Service for LockService {
    fn interface(&self) -> &'static str {
        "lock"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // lock_alloc(compid) -> lockid
            "lock_alloc" => {
                let _compid = args[0].int()?;
                self.next_id += 1;
                let id = self.next_id;
                self.locks.insert(id, Lock::default());
                Ok(Value::Int(id))
            }
            // lock_take(compid, desc(lockid))
            "lock_take" => {
                let id = args[1].int()?;
                let me = ctx.thread;
                let lock = self.locks.get_mut(&id).ok_or(ServiceError::NotFound)?;
                match lock.owner {
                    None => {
                        lock.owner = Some(me);
                        lock.waiters.retain(|&w| w != me);
                        Ok(Value::Int(0))
                    }
                    Some(owner) if owner == me => {
                        // Recovery replay of a lock we already hold.
                        Ok(Value::Int(0))
                    }
                    Some(_) => {
                        if !lock.waiters.contains(&me) {
                            lock.waiters.push(me);
                        }
                        Err(ctx.block_current())
                    }
                }
            }
            // lock_release(compid, desc(lockid))
            "lock_release" => {
                let id = args[1].int()?;
                let lock = self.locks.get_mut(&id).ok_or(ServiceError::NotFound)?;
                if lock.owner != Some(ctx.thread) {
                    return Err(ServiceError::InvalidArg);
                }
                lock.owner = None;
                // Hand off: wake the first live waiter only (no
                // thundering herd); it re-contends and the next release
                // wakes the next one.
                while !lock.waiters.is_empty() {
                    let w = lock.waiters.remove(0);
                    if ctx.wake(w).is_ok() {
                        break;
                    }
                }
                Ok(Value::Int(0))
            }
            // lock_restore(compid, lockid, owner_thdid) — recovery-only:
            // re-establish a lock (under a replayed id) as held by the
            // *recorded* owner thread, so recovery driven by a different
            // thread cannot usurp the hold.
            "lock_restore" => {
                let id = args[1].int()?;
                let owner = args[2].int()?;
                let lock = self.locks.entry(id).or_default();
                lock.owner = if owner > 0 {
                    Some(ThreadId(owner as u32))
                } else {
                    None
                };
                Ok(Value::Int(id))
            }
            // lock_free(compid, desc(lockid))
            "lock_free" => {
                let id = args[1].int()?;
                let lock = self.locks.remove(&id).ok_or(ServiceError::NotFound)?;
                // Freeing a contended lock releases its waiters.
                for w in lock.waiters {
                    let _ = ctx.wake(w);
                }
                Ok(Value::Int(0))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        self.locks.clear();
        // Keep next_id monotone across reboots so recreated locks never
        // collide with descriptors still tracked by other clients.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CallError, ComponentId, CostModel, Kernel, Priority, ThreadState};

    fn setup() -> (Kernel, ComponentId, ComponentId, ThreadId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let lock = k.add_component("lock", Box::new(LockService::new()));
        k.grant(app, lock);
        let t1 = k.create_thread(app, Priority(5));
        let t2 = k.create_thread(app, Priority(6));
        (k, app, lock, t1, t2)
    }

    fn alloc(k: &mut Kernel, app: ComponentId, lock: ComponentId, t: ThreadId) -> i64 {
        k.invoke(app, t, lock, "lock_alloc", &[Value::Int(1)])
            .unwrap()
            .int()
            .unwrap()
    }

    #[test]
    fn alloc_take_release_free() {
        let (mut k, app, lock, t1, _) = setup();
        let id = alloc(&mut k, app, lock, t1);
        assert_eq!(
            k.invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
                .unwrap(),
            Value::Int(0)
        );
        k.invoke(
            app,
            t1,
            lock,
            "lock_release",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
        k.invoke(app, t1, lock, "lock_free", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        let err = k
            .invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn contention_blocks_and_release_wakes() {
        let (mut k, app, lock, t1, t2) = setup();
        let id = alloc(&mut k, app, lock, t1);
        k.invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        let err = k
            .invoke(app, t2, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert!(matches!(
            k.thread(t2).unwrap().state,
            ThreadState::Blocked { .. }
        ));

        k.invoke(
            app,
            t1,
            lock,
            "lock_release",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
        assert!(k.thread(t2).unwrap().state.is_runnable());
        // The retried take now succeeds.
        k.invoke(app, t2, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
    }

    #[test]
    fn retake_by_owner_is_replay_idempotent() {
        let (mut k, app, lock, t1, _) = setup();
        let id = alloc(&mut k, app, lock, t1);
        k.invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        k.invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
    }

    #[test]
    fn release_by_non_owner_rejected() {
        let (mut k, app, lock, t1, t2) = setup();
        let id = alloc(&mut k, app, lock, t1);
        k.invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        let err = k
            .invoke(
                app,
                t2,
                lock,
                "lock_release",
                &[Value::Int(1), Value::Int(id)],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }

    #[test]
    fn free_wakes_waiters() {
        let (mut k, app, lock, t1, t2) = setup();
        let id = alloc(&mut k, app, lock, t1);
        k.invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        let _ = k.invoke(app, t2, lock, "lock_take", &[Value::Int(1), Value::Int(id)]);
        k.invoke(app, t1, lock, "lock_free", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        assert!(k.thread(t2).unwrap().state.is_runnable());
    }

    #[test]
    fn lock_ids_monotone_across_reboot() {
        let (mut k, app, lock, t1, _) = setup();
        let id1 = alloc(&mut k, app, lock, t1);
        k.fault(lock);
        k.micro_reboot(lock).unwrap();
        let id2 = alloc(&mut k, app, lock, t1);
        assert!(
            id2 > id1,
            "descriptor ids must not be recycled across reboots"
        );
    }

    #[test]
    fn restore_reestablishes_recorded_owner() {
        let (mut k, app, lock, t1, t2) = setup();
        let id = alloc(&mut k, app, lock, t1);
        k.invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        k.fault(lock);
        k.micro_reboot(lock).unwrap();
        // Recovery (driven by t2) restores the hold for t1.
        k.invoke(
            app,
            t2,
            lock,
            "lock_restore",
            &[Value::Int(1), Value::Int(id), Value::Int(i64::from(t1.0))],
        )
        .unwrap();
        // t2 contends; t1 releases successfully.
        let err = k
            .invoke(app, t2, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        k.invoke(
            app,
            t1,
            lock,
            "lock_release",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
    }

    #[test]
    fn reset_drops_all_locks() {
        let (mut k, app, lock, t1, _) = setup();
        let id = alloc(&mut k, app, lock, t1);
        k.fault(lock);
        k.micro_reboot(lock).unwrap();
        let err = k
            .invoke(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }
}
