//! The zero-copy buffer (`cbuf`) manager.
//!
//! Stands in for COMPOSITE's cbuf subsystem (Ren et al., ISMM 2016): bulk
//! data is placed in a buffer once and shared by reference; only the
//! producing component may write, all others get read-only access — the
//! restriction that prevents fault propagation through shared buffers
//! (§II-C). Per §II-E this component is *not* protected by
//! SuperGlue/C³ recovery.

use std::collections::BTreeMap;

use composite::{ComponentId, Service, ServiceCtx, ServiceError, Value};

#[derive(Debug, Clone)]
struct Cbuf {
    owner: ComponentId,
    data: Vec<u8>,
}

/// The cbuf manager service component.
#[derive(Debug, Default)]
pub struct CbufService {
    bufs: BTreeMap<i64, Cbuf>,
    next_id: i64,
}

impl CbufService {
    /// A fresh cbuf manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live buffers.
    #[must_use]
    pub fn buf_count(&self) -> usize {
        self.bufs.len()
    }

    /// Direct read-only view of a buffer (the in-process path used by
    /// consumers like the storage service).
    #[must_use]
    pub fn view(&self, cbid: i64) -> Option<&[u8]> {
        self.bufs.get(&cbid).map(|b| b.data.as_slice())
    }
}

impl Service for CbufService {
    fn interface(&self) -> &'static str {
        "cbuf"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // cb_alloc(size) -> cbid (caller becomes the producer)
            "cb_alloc" => {
                let size = args[0].int()?;
                if size < 0 {
                    return Err(ServiceError::InvalidArg);
                }
                self.next_id += 1;
                let id = self.next_id;
                self.bufs.insert(
                    id,
                    Cbuf {
                        owner: ctx.client,
                        data: vec![0; size as usize],
                    },
                );
                Ok(Value::Int(id))
            }
            // cb_write(cbid, offset, bytes) -> bytes written
            "cb_write" => {
                let id = args[0].int()?;
                let offset = args[1].int()? as usize;
                let data = args[2].bytes()?;
                let buf = self.bufs.get_mut(&id).ok_or(ServiceError::NotFound)?;
                if buf.owner != ctx.client {
                    // Read-only for everyone but the producer.
                    return Err(ServiceError::InvalidArg);
                }
                if offset + data.len() > buf.data.len() {
                    buf.data.resize(offset + data.len(), 0);
                }
                buf.data[offset..offset + data.len()].copy_from_slice(data);
                Ok(Value::Int(data.len() as i64))
            }
            // cb_read(cbid) -> bytes
            "cb_read" => {
                let id = args[0].int()?;
                let buf = self.bufs.get(&id).ok_or(ServiceError::NotFound)?;
                Ok(Value::from(buf.data.clone()))
            }
            // cb_free(cbid)
            "cb_free" => {
                let id = args[0].int()?;
                let buf = self.bufs.get(&id).ok_or(ServiceError::NotFound)?;
                if buf.owner != ctx.client {
                    return Err(ServiceError::InvalidArg);
                }
                self.bufs.remove(&id);
                Ok(Value::Int(0))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        // The cbuf manager is unprotected infrastructure (§II-E); resets
        // only happen in tests.
        self.bufs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CallError, CostModel, Kernel, Priority, ThreadId};

    fn setup() -> (
        Kernel,
        ComponentId,
        ComponentId,
        ComponentId,
        ThreadId,
        ThreadId,
    ) {
        let mut k = Kernel::with_costs(CostModel::free());
        let prod = k.add_client_component("producer");
        let cons = k.add_client_component("consumer");
        let cb = k.add_component("cbuf", Box::new(CbufService::new()));
        k.grant(prod, cb);
        k.grant(cons, cb);
        let tp = k.create_thread(prod, Priority(5));
        let tc = k.create_thread(cons, Priority(5));
        (k, prod, cons, cb, tp, tc)
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let (mut k, prod, cons, cb, tp, tc) = setup();
        let id = k
            .invoke(prod, tp, cb, "cb_alloc", &[Value::Int(4)])
            .unwrap()
            .int()
            .unwrap();
        k.invoke(
            prod,
            tp,
            cb,
            "cb_write",
            &[Value::Int(id), Value::Int(0), Value::from(vec![1, 2, 3, 4])],
        )
        .unwrap();
        let r = k
            .invoke(cons, tc, cb, "cb_read", &[Value::Int(id)])
            .unwrap();
        assert_eq!(r, Value::from(vec![1, 2, 3, 4]));
    }

    #[test]
    fn only_producer_may_write() {
        let (mut k, prod, cons, cb, tp, tc) = setup();
        let id = k
            .invoke(prod, tp, cb, "cb_alloc", &[Value::Int(4)])
            .unwrap()
            .int()
            .unwrap();
        let err = k
            .invoke(
                cons,
                tc,
                cb,
                "cb_write",
                &[Value::Int(id), Value::Int(0), Value::from(vec![9])],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }

    #[test]
    fn write_extends_buffer() {
        let (mut k, prod, _cons, cb, tp, _tc) = setup();
        let id = k
            .invoke(prod, tp, cb, "cb_alloc", &[Value::Int(0)])
            .unwrap()
            .int()
            .unwrap();
        k.invoke(
            prod,
            tp,
            cb,
            "cb_write",
            &[Value::Int(id), Value::Int(2), Value::from(vec![7])],
        )
        .unwrap();
        let r = k
            .invoke(prod, tp, cb, "cb_read", &[Value::Int(id)])
            .unwrap();
        assert_eq!(r, Value::from(vec![0, 0, 7]));
    }

    #[test]
    fn free_requires_ownership_and_removes() {
        let (mut k, prod, cons, cb, tp, tc) = setup();
        let id = k
            .invoke(prod, tp, cb, "cb_alloc", &[Value::Int(1)])
            .unwrap()
            .int()
            .unwrap();
        let err = k
            .invoke(cons, tc, cb, "cb_free", &[Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
        k.invoke(prod, tp, cb, "cb_free", &[Value::Int(id)])
            .unwrap();
        let err = k
            .invoke(prod, tp, cb, "cb_read", &[Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn negative_alloc_rejected() {
        let (mut k, prod, _c, cb, tp, _tc) = setup();
        let err = k
            .invoke(prod, tp, cb, "cb_alloc", &[Value::Int(-1)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }
}
