//! The scheduler component (`sched` interface).
//!
//! Exposes blocking/wakeup of threads, the service the paper's **Sched**
//! workload ping-pongs on (§V-B: "Two threads perform a ping-pong,
//! blocking and waking each other in turn using `sched_blk` and
//! `sched_wakeup`").
//!
//! Interface (the descriptor is a *scheduler thread record*, keyed by the
//! kernel thread id it describes):
//!
//! | function | role | effect |
//! |---|---|---|
//! | `sched_setup(compid, thdid)` → desc | create | register a thread with the scheduler |
//! | `sched_blk(compid, desc)` | block | block the *calling* thread on the record |
//! | `sched_wakeup(compid, desc)` | wakeup | wake the record's thread (or pend the wakeup) |
//! | `sched_exit(compid, desc)` | terminate | deregister |
//!
//! Wakeup-before-block is remembered with a pending flag, the standard
//! race-free semantic. On a fault, the records are lost; client stubs
//! replay `sched_setup` (and `sched_blk` for threads expected blocked),
//! and [`Scheduler::post_reboot`] reflects on the kernel to re-learn
//! which threads are physically blocked inside the scheduler (§II-F).

use std::collections::BTreeMap;

use composite::{Service, ServiceCtx, ServiceError, ThreadId, Value};

/// One scheduler record (the resource behind a `sched` descriptor).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ThdRecord {
    /// The kernel thread this record describes.
    thread: ThreadId,
    /// Whether the thread blocked via `sched_blk` and has not been woken.
    blocked: bool,
    /// A wakeup arrived while the thread was not blocked; the next
    /// `sched_blk` consumes it without blocking.
    pending_wakeup: bool,
}

/// The scheduler service component.
#[derive(Debug, Default)]
pub struct Scheduler {
    records: BTreeMap<i64, ThdRecord>,
}

impl Scheduler {
    /// A fresh scheduler with no registered threads.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered thread records (for tests/reflection).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

impl Service for Scheduler {
    fn interface(&self) -> &'static str {
        "sched"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // sched_setup(compid, thdid) -> desc (the thdid itself)
            "sched_setup" => {
                let _compid = args[0].int()?;
                let thdid = args[1].int()?;
                // Replay-idempotent: re-creating an existing record keeps
                // its (kernel-reflected) block state.
                self.records.entry(thdid).or_insert(ThdRecord {
                    thread: ThreadId(thdid as u32),
                    blocked: false,
                    pending_wakeup: false,
                });
                Ok(Value::Int(thdid))
            }
            // sched_blk(compid, desc(thdid)) — blocks the calling thread
            "sched_blk" => {
                let thdid = args[1].int()?;
                let rec = self.records.get_mut(&thdid).ok_or(ServiceError::NotFound)?;
                if rec.thread != ctx.thread {
                    // Only a thread may block itself.
                    return Err(ServiceError::InvalidArg);
                }
                if rec.pending_wakeup {
                    rec.pending_wakeup = false;
                    rec.blocked = false;
                    return Ok(Value::Int(0));
                }
                rec.blocked = true;
                Err(ctx.block_current())
            }
            // sched_wakeup(compid, desc(thdid))
            "sched_wakeup" => {
                let thdid = args[1].int()?;
                let rec = self.records.get_mut(&thdid).ok_or(ServiceError::NotFound)?;
                // Always pend the wakeup: the woken thread *retries* its
                // sched_blk invocation, which consumes the pending flag
                // and returns without re-blocking.
                rec.pending_wakeup = true;
                if rec.blocked {
                    rec.blocked = false;
                    ctx.wake(rec.thread).map_err(|_| ServiceError::InvalidArg)?;
                }
                Ok(Value::Int(0))
            }
            // sched_exit(compid, desc(thdid))
            "sched_exit" => {
                let thdid = args[1].int()?;
                self.records.remove(&thdid).ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(0))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        self.records.clear();
    }

    fn post_reboot(&mut self, ctx: &mut ServiceCtx<'_>) {
        // Kernel reflection (§II-F): re-learn which threads are blocked
        // inside this component so a replayed sched_setup yields a record
        // consistent with physical thread state. The records themselves
        // are rebuilt by client stubs on demand.
        for t in ctx.threads_blocked_in(ctx.this) {
            self.records.insert(
                i64::from(t.0),
                ThdRecord {
                    thread: t,
                    blocked: true,
                    pending_wakeup: false,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CallError, ComponentId, CostModel, Kernel, Priority, ThreadState};

    fn setup() -> (Kernel, ComponentId, ComponentId, ThreadId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let sched = k.add_component("sched", Box::new(Scheduler::new()));
        k.grant(app, sched);
        let t1 = k.create_thread(app, Priority(5));
        let t2 = k.create_thread(app, Priority(5));
        (k, app, sched, t1, t2)
    }

    fn setup_thread(k: &mut Kernel, app: ComponentId, sched: ComponentId, t: ThreadId) {
        k.invoke(
            app,
            t,
            sched,
            "sched_setup",
            &[Value::Int(1), Value::Int(i64::from(t.0))],
        )
        .unwrap();
    }

    #[test]
    fn setup_returns_descriptor() {
        let (mut k, app, sched, t1, _) = setup();
        let r = k
            .invoke(
                app,
                t1,
                sched,
                "sched_setup",
                &[Value::Int(1), Value::Int(i64::from(t1.0))],
            )
            .unwrap();
        assert_eq!(r, Value::Int(i64::from(t1.0)));
    }

    #[test]
    fn block_then_wakeup() {
        let (mut k, app, sched, t1, t2) = setup();
        setup_thread(&mut k, app, sched, t1);
        setup_thread(&mut k, app, sched, t2);
        let err = k
            .invoke(
                app,
                t1,
                sched,
                "sched_blk",
                &[Value::Int(1), Value::Int(i64::from(t1.0))],
            )
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert!(matches!(
            k.thread(t1).unwrap().state,
            ThreadState::Blocked { .. }
        ));

        k.invoke(
            app,
            t2,
            sched,
            "sched_wakeup",
            &[Value::Int(1), Value::Int(i64::from(t1.0))],
        )
        .unwrap();
        assert!(k.thread(t1).unwrap().state.is_runnable());
        // The retried sched_blk sees... no pending wakeup, so it blocks
        // again only if called again; here we emulate the woken thread
        // proceeding without re-calling.
    }

    #[test]
    fn wakeup_before_block_pends() {
        let (mut k, app, sched, t1, t2) = setup();
        setup_thread(&mut k, app, sched, t1);
        k.invoke(
            app,
            t2,
            sched,
            "sched_wakeup",
            &[Value::Int(1), Value::Int(i64::from(t1.0))],
        )
        .unwrap();
        // The pending wakeup makes the next blk a no-op.
        let r = k
            .invoke(
                app,
                t1,
                sched,
                "sched_blk",
                &[Value::Int(1), Value::Int(i64::from(t1.0))],
            )
            .unwrap();
        assert_eq!(r, Value::Int(0));
        assert!(k.thread(t1).unwrap().state.is_runnable());
    }

    #[test]
    fn blk_on_unknown_descriptor_not_found() {
        let (mut k, app, sched, t1, _) = setup();
        let err = k
            .invoke(
                app,
                t1,
                sched,
                "sched_blk",
                &[Value::Int(1), Value::Int(42)],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn cannot_block_another_thread() {
        let (mut k, app, sched, t1, t2) = setup();
        setup_thread(&mut k, app, sched, t1);
        let err = k
            .invoke(
                app,
                t2,
                sched,
                "sched_blk",
                &[Value::Int(1), Value::Int(i64::from(t1.0))],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::InvalidArg));
    }

    #[test]
    fn exit_removes_record() {
        let (mut k, app, sched, t1, _) = setup();
        setup_thread(&mut k, app, sched, t1);
        k.invoke(
            app,
            t1,
            sched,
            "sched_exit",
            &[Value::Int(1), Value::Int(i64::from(t1.0))],
        )
        .unwrap();
        let err = k
            .invoke(
                app,
                t1,
                sched,
                "sched_blk",
                &[Value::Int(1), Value::Int(i64::from(t1.0))],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn reset_clears_records_and_post_reboot_reflects() {
        let (mut k, app, sched, t1, _t2) = setup();
        setup_thread(&mut k, app, sched, t1);
        let _ = k.invoke(
            app,
            t1,
            sched,
            "sched_blk",
            &[Value::Int(1), Value::Int(i64::from(t1.0))],
        );
        // Fault wakes t1 (kernel behavior); reboot reflects on kernel
        // state — t1 is no longer physically blocked, so no record is
        // recreated and the client stub must rebuild it.
        k.fault(sched);
        k.micro_reboot(sched).unwrap();
        let err = k
            .invoke(
                app,
                t1,
                sched,
                "sched_wakeup",
                &[Value::Int(1), Value::Int(i64::from(t1.0))],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn setup_is_replay_idempotent() {
        let (mut k, app, sched, t1, _) = setup();
        setup_thread(&mut k, app, sched, t1);
        setup_thread(&mut k, app, sched, t1);
        // Still exactly one record: exit succeeds once, then NotFound.
        k.invoke(
            app,
            t1,
            sched,
            "sched_exit",
            &[Value::Int(1), Value::Int(i64::from(t1.0))],
        )
        .unwrap();
        let err = k
            .invoke(
                app,
                t1,
                sched,
                "sched_exit",
                &[Value::Int(1), Value::Int(i64::from(t1.0))],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }
}
