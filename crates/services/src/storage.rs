//! The storage component (`storage` interface).
//!
//! The redundant store behind the **G0** and **G1** recovery mechanisms
//! (§III-C). It keeps two kinds of records:
//!
//! * **Resource data** (`st_store`/`st_fetch`/`st_erase`) — bulk data a
//!   service (e.g. RamFS) persists so a micro-reboot does not lose it.
//!   Data may be passed inline or by cbuf reference
//!   (`st_store_ref`/`st_fetch_ref`).
//! * **Global-descriptor records** (`st_record`/`st_lookup_*`/
//!   `st_unrecord`) — the mapping from a globally addressable descriptor
//!   id to its creator component and creation arguments, consulted by the
//!   server-side stub when a rebooted server reports an unknown
//!   descriptor id.
//!
//! Per §II-E the storage component is unprotected infrastructure: it is
//! never a fault-injection target.

use std::collections::BTreeMap;

use composite::{IdSlab, Service, ServiceCtx, ServiceError, Value};

#[derive(Debug, Clone, PartialEq, Eq)]
struct DescRecord {
    creator: i64,
    parent: i64,
    aux: i64,
}

/// The storage service component.
///
/// Descriptor records are keyed interface-first: the outer map holds a
/// handful of interface names (looked up by `&str`, no per-record key
/// allocation) and the inner stores are slab-indexed by descriptor id —
/// record traffic is the per-creation G0 hot path for global interfaces,
/// and descriptor ids are dense, so each record touch is O(1) even when
/// a workload accumulates many records.
#[derive(Debug, Default)]
pub struct StorageService {
    data: BTreeMap<String, Vec<u8>>,
    refs: BTreeMap<String, i64>,
    descs: BTreeMap<String, IdSlab<DescRecord>>,
}

impl StorageService {
    /// A fresh, empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored data blobs (tests/reflection).
    #[must_use]
    pub fn blob_count(&self) -> usize {
        self.data.len()
    }

    /// Number of global-descriptor records (tests/reflection).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.descs.values().map(IdSlab::len).sum()
    }
}

impl Service for StorageService {
    fn interface(&self) -> &'static str {
        "storage"
    }

    fn call(
        &mut self,
        _ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // st_store(key, bytes)
            "st_store" => {
                let key = args[0].str()?.to_owned();
                let bytes = args[1].bytes()?.to_vec();
                self.data.insert(key, bytes);
                Ok(Value::Int(0))
            }
            // st_fetch(key) -> bytes
            "st_fetch" => {
                let key = args[0].str()?;
                let bytes = self.data.get(key).ok_or(ServiceError::NotFound)?;
                Ok(Value::from(bytes.clone()))
            }
            // st_erase(key)
            "st_erase" => {
                let key = args[0].str()?;
                self.data.remove(key).ok_or(ServiceError::NotFound)?;
                self.refs.remove(key);
                Ok(Value::Int(0))
            }
            // st_store_ref(key, cbid) — remember a cbuf reference
            "st_store_ref" => {
                let key = args[0].str()?.to_owned();
                let cbid = args[1].int()?;
                self.refs.insert(key, cbid);
                Ok(Value::Int(0))
            }
            // st_fetch_ref(key) -> cbid
            "st_fetch_ref" => {
                let key = args[0].str()?;
                let cbid = self.refs.get(key).ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(*cbid))
            }
            // st_record(iface, descid, creator, parent, aux) — G0 record
            "st_record" => {
                let iface = args[0].str()?;
                let descid = args[1].int()?;
                let rec = DescRecord {
                    creator: args[2].int()?,
                    parent: args[3].int()?,
                    aux: args[4].int()?,
                };
                // Borrowed lookup first: the owned key is only built the
                // first time an interface records anything.
                match self.descs.get_mut(iface) {
                    Some(m) => {
                        m.insert(descid, rec);
                    }
                    None => {
                        let mut m = IdSlab::new();
                        m.insert(descid, rec);
                        self.descs.insert(iface.to_owned(), m);
                    }
                }
                Ok(Value::Int(0))
            }
            // st_lookup_creator / st_lookup_parent / st_lookup_aux
            "st_lookup_creator" | "st_lookup_parent" | "st_lookup_aux" => {
                let iface = args[0].str()?;
                let descid = args[1].int()?;
                let rec = self
                    .descs
                    .get(iface)
                    .and_then(|m| m.get(descid))
                    .ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(match fname {
                    "st_lookup_creator" => rec.creator,
                    "st_lookup_parent" => rec.parent,
                    _ => rec.aux,
                }))
            }
            // st_unrecord(iface, descid)
            "st_unrecord" => {
                let iface = args[0].str()?;
                let descid = args[1].int()?;
                self.descs
                    .get_mut(iface)
                    .and_then(|m| m.remove(descid))
                    .ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(0))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        // Unprotected infrastructure: only reset in tests.
        self.data.clear();
        self.refs.clear();
        self.descs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CallError, ComponentId, CostModel, Kernel, Priority, ThreadId};

    fn setup() -> (Kernel, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let st = k.add_component("storage", Box::new(StorageService::new()));
        k.grant(app, st);
        let t = k.create_thread(app, Priority(5));
        (k, app, st, t)
    }

    #[test]
    fn store_fetch_erase() {
        let (mut k, app, st, t) = setup();
        k.invoke(
            app,
            t,
            st,
            "st_store",
            &[Value::from("f"), Value::from(vec![1, 2])],
        )
        .unwrap();
        let r = k
            .invoke(app, t, st, "st_fetch", &[Value::from("f")])
            .unwrap();
        assert_eq!(r, Value::from(vec![1, 2]));
        k.invoke(app, t, st, "st_erase", &[Value::from("f")])
            .unwrap();
        let err = k
            .invoke(app, t, st, "st_fetch", &[Value::from("f")])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn cbuf_refs_round_trip() {
        let (mut k, app, st, t) = setup();
        k.invoke(
            app,
            t,
            st,
            "st_store_ref",
            &[Value::from("f"), Value::Int(42)],
        )
        .unwrap();
        let r = k
            .invoke(app, t, st, "st_fetch_ref", &[Value::from("f")])
            .unwrap();
        assert_eq!(r, Value::Int(42));
    }

    #[test]
    fn descriptor_records_round_trip() {
        let (mut k, app, st, t) = setup();
        k.invoke(
            app,
            t,
            st,
            "st_record",
            &[
                Value::from("evt"),
                Value::Int(7),
                Value::Int(3),
                Value::Int(0),
                Value::Int(9),
            ],
        )
        .unwrap();
        let creator = k
            .invoke(
                app,
                t,
                st,
                "st_lookup_creator",
                &[Value::from("evt"), Value::Int(7)],
            )
            .unwrap();
        assert_eq!(creator, Value::Int(3));
        let parent = k
            .invoke(
                app,
                t,
                st,
                "st_lookup_parent",
                &[Value::from("evt"), Value::Int(7)],
            )
            .unwrap();
        assert_eq!(parent, Value::Int(0));
        let aux = k
            .invoke(
                app,
                t,
                st,
                "st_lookup_aux",
                &[Value::from("evt"), Value::Int(7)],
            )
            .unwrap();
        assert_eq!(aux, Value::Int(9));
        k.invoke(
            app,
            t,
            st,
            "st_unrecord",
            &[Value::from("evt"), Value::Int(7)],
        )
        .unwrap();
        let err = k
            .invoke(
                app,
                t,
                st,
                "st_lookup_creator",
                &[Value::from("evt"), Value::Int(7)],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn records_are_namespaced_by_interface() {
        let (mut k, app, st, t) = setup();
        k.invoke(
            app,
            t,
            st,
            "st_record",
            &[
                Value::from("evt"),
                Value::Int(7),
                Value::Int(1),
                Value::Int(0),
                Value::Int(0),
            ],
        )
        .unwrap();
        let err = k
            .invoke(
                app,
                t,
                st,
                "st_lookup_creator",
                &[Value::from("lock"), Value::Int(7)],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn overwrite_replaces_data() {
        let (mut k, app, st, t) = setup();
        k.invoke(
            app,
            t,
            st,
            "st_store",
            &[Value::from("f"), Value::from(vec![1])],
        )
        .unwrap();
        k.invoke(
            app,
            t,
            st,
            "st_store",
            &[Value::from("f"), Value::from(vec![2])],
        )
        .unwrap();
        let r = k
            .invoke(app, t, st, "st_fetch", &[Value::from("f")])
            .unwrap();
        assert_eq!(r, Value::from(vec![2]));
    }
}
