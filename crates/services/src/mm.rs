//! The memory-manager component (`mm` interface) — §II-D's example.
//!
//! Provides virtual-to-physical mappings in the recursive address-space
//! style: a *root* mapping is created with `mman_get_page`, shared into
//! other components with `mman_alias_page` (forming a tree rooted at the
//! physical frame), and revoked — subtree included — with
//! `mman_release_page`.
//!
//! The MM's descriptors are mappings, identified by an encoded
//! `(component, vaddr)` key ([`map_key`]). Dependencies cross components
//! (`P_dr = XCParent`) and revocation is recursive (`C_dr`).
//!
//! The *kernel* page tables ([`composite::pages`]) survive an MM fault;
//! only the MM's mapping-tree metadata is lost. Recovery replays
//! `mman_get_page`/`mman_alias_page`, which are idempotent against
//! surviving kernel mappings, and root revocation falls back on kernel
//! reflection to clear every alias of the frame even if parts of the tree
//! were never rebuilt.

use std::collections::BTreeMap;

use composite::pages::VAddr;
use composite::{ComponentId, FrameId, Service, ServiceCtx, ServiceError, Value};

/// Encode a mapping descriptor key from component and vaddr.
///
/// The key is `component << 40 | vaddr`; vaddrs are page-aligned and below
/// 2^40 in the simulation.
#[must_use]
pub fn map_key(component: ComponentId, vaddr: VAddr) -> i64 {
    ((i64::from(component.0)) << 40) | (vaddr as i64 & ((1 << 40) - 1))
}

/// Decode a mapping descriptor key.
#[must_use]
pub fn unmap_key(key: i64) -> (ComponentId, VAddr) {
    (
        ComponentId((key >> 40) as u32),
        (key & ((1 << 40) - 1)) as VAddr,
    )
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Mapping {
    frame: FrameId,
    parent: Option<i64>,
    children: Vec<i64>,
}

/// The memory-manager service component.
#[derive(Debug, Default)]
pub struct MemoryManager {
    tree: BTreeMap<i64, Mapping>,
}

impl MemoryManager {
    /// A fresh memory manager with no mappings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked mappings (tests/reflection).
    #[must_use]
    pub fn mapping_count(&self) -> usize {
        self.tree.len()
    }
}

impl Service for MemoryManager {
    fn interface(&self) -> &'static str {
        "mm"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // mman_get_page(compid, vaddr) -> mapping key (root mapping)
            "mman_get_page" => {
                let comp = ComponentId(args[0].int()? as u32);
                let vaddr = args[1].int()? as VAddr;
                let key = map_key(comp, vaddr);
                if let Some(existing) = self.tree.get(&key) {
                    // Replay of a mapping the MM still knows: idempotent.
                    let _ = existing;
                    return Ok(Value::Int(key));
                }
                // Reuse a surviving kernel mapping (post-reboot replay),
                // else allocate a fresh frame.
                let frame = match ctx.translate(comp, vaddr) {
                    Some(f) => f,
                    None => {
                        let f = ctx.alloc_frame().map_err(|_| ServiceError::Unavailable)?;
                        ctx.map_page(comp, vaddr, f)
                            .map_err(|_| ServiceError::InvalidArg)?;
                        f
                    }
                };
                self.tree.insert(
                    key,
                    Mapping {
                        frame,
                        parent: None,
                        children: Vec::new(),
                    },
                );
                Ok(Value::Int(key))
            }
            // mman_alias_page(compid, src_key, dst_compid, dst_vaddr)
            //   -> child mapping key (the parent descriptor is passed as
            //   an argument, per the Parent model of §III-A)
            "mman_alias_page" => {
                let _compid = args[0].int()?;
                let src_key = args[1].int()?;
                let dst_comp = ComponentId(args[2].int()? as u32);
                let dst_vaddr = args[3].int()? as VAddr;
                let dst_key = map_key(dst_comp, dst_vaddr);
                let frame = self.tree.get(&src_key).ok_or(ServiceError::NotFound)?.frame;
                if self.tree.contains_key(&dst_key) {
                    // Replay idempotency.
                    return Ok(Value::Int(dst_key));
                }
                ctx.map_page(dst_comp, dst_vaddr, frame)
                    .map_err(|_| ServiceError::InvalidArg)?;
                self.tree.insert(
                    dst_key,
                    Mapping {
                        frame,
                        parent: Some(src_key),
                        children: Vec::new(),
                    },
                );
                self.tree
                    .get_mut(&src_key)
                    .expect("source checked above")
                    .children
                    .push(dst_key);
                Ok(Value::Int(dst_key))
            }
            // mman_release_page(compid, desc(key)) — revoke mapping + subtree
            "mman_release_page" => {
                let _compid = args[0].int()?;
                let key = args[1].int()?;
                let node = self.tree.get(&key).ok_or(ServiceError::NotFound)?;
                let frame = node.frame;
                let is_root = node.parent.is_none();

                // Collect the subtree.
                let mut subtree = Vec::new();
                let mut stack = vec![key];
                while let Some(k) = stack.pop() {
                    subtree.push(k);
                    if let Some(n) = self.tree.get(&k) {
                        stack.extend(n.children.iter().copied());
                    }
                }
                for k in &subtree {
                    if let Some(n) = self.tree.remove(k) {
                        let (c, v) = unmap_key(*k);
                        let _ = ctx.unmap_page(c, v);
                        if let Some(p) = n.parent {
                            if let Some(pn) = self.tree.get_mut(&p) {
                                pn.children.retain(|&x| x != *k);
                            }
                        }
                    }
                }
                if is_root {
                    // A root release revokes *every* alias of the frame,
                    // even aliases whose tree nodes were lost to a fault
                    // and never rebuilt: reflect on the kernel (the
                    // authoritative record) and clear them.
                    for (c, v) in ctx.mappers_of(frame) {
                        let _ = ctx.unmap_page(c, v);
                        self.tree.remove(&map_key(c, v));
                    }
                }
                Ok(Value::Int(0))
            }
            // Reflection: current frame behind a mapping (tests/recovery).
            "mman_introspect" => {
                let comp = ComponentId(args[0].int()? as u32);
                let vaddr = args[1].int()? as VAddr;
                match ctx.translate(comp, vaddr) {
                    Some(f) => Ok(Value::Int(i64::from(f.0))),
                    None => Err(ServiceError::NotFound),
                }
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        self.tree.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CallError, CostModel, Kernel, Priority, ThreadId};

    fn setup() -> (Kernel, ComponentId, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app1 = k.add_client_component("app1");
        let app2 = k.add_client_component("app2");
        let mm = k.add_component("mm", Box::new(MemoryManager::new()));
        k.grant(app1, mm);
        k.grant(app2, mm);
        let t = k.create_thread(app1, Priority(5));
        (k, app1, app2, mm, t)
    }

    fn get_page(k: &mut Kernel, app: ComponentId, mm: ComponentId, t: ThreadId, v: u64) -> i64 {
        k.invoke(
            app,
            t,
            mm,
            "mman_get_page",
            &[Value::from(app.0), Value::Int(v as i64)],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    #[test]
    fn key_encoding_round_trips() {
        let k = map_key(ComponentId(7), 0x12_3000);
        assert_eq!(unmap_key(k), (ComponentId(7), 0x12_3000));
    }

    #[test]
    fn get_page_creates_kernel_mapping() {
        let (mut k, app1, _a2, mm, t) = setup();
        get_page(&mut k, app1, mm, t, 0x1000);
        assert!(k.pages().translate(app1, 0x1000).is_some());
    }

    #[test]
    fn get_page_is_replay_idempotent() {
        let (mut k, app1, _a2, mm, t) = setup();
        let k1 = get_page(&mut k, app1, mm, t, 0x1000);
        let k2 = get_page(&mut k, app1, mm, t, 0x1000);
        assert_eq!(k1, k2);
        assert_eq!(k.pages().mapping_count(), 1);
    }

    #[test]
    fn alias_shares_the_frame() {
        let (mut k, app1, app2, mm, t) = setup();
        get_page(&mut k, app1, mm, t, 0x1000);
        let src_key = map_key(app1, 0x1000);
        k.invoke(
            app1,
            t,
            mm,
            "mman_alias_page",
            &[
                Value::from(app1.0),
                Value::Int(src_key),
                Value::from(app2.0),
                Value::Int(0x8000),
            ],
        )
        .unwrap();
        assert_eq!(
            k.pages().translate(app1, 0x1000),
            k.pages().translate(app2, 0x8000)
        );
    }

    #[test]
    fn alias_of_missing_source_not_found() {
        let (mut k, app1, app2, mm, t) = setup();
        let err = k
            .invoke(
                app1,
                t,
                mm,
                "mman_alias_page",
                &[
                    Value::from(app1.0),
                    Value::Int(map_key(app1, 0x0999_9000)),
                    Value::from(app2.0),
                    Value::Int(0x8000),
                ],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn release_revokes_subtree() {
        let (mut k, app1, app2, mm, t) = setup();
        get_page(&mut k, app1, mm, t, 0x1000);
        let src_key = map_key(app1, 0x1000);
        k.invoke(
            app1,
            t,
            mm,
            "mman_alias_page",
            &[
                Value::from(app1.0),
                Value::Int(src_key),
                Value::from(app2.0),
                Value::Int(0x8000),
            ],
        )
        .unwrap();
        k.invoke(
            app1,
            t,
            mm,
            "mman_release_page",
            &[Value::from(app1.0), Value::Int(map_key(app1, 0x1000))],
        )
        .unwrap();
        assert_eq!(k.pages().translate(app1, 0x1000), None);
        assert_eq!(k.pages().translate(app2, 0x8000), None);
        assert_eq!(k.pages().mapping_count(), 0);
    }

    #[test]
    fn release_of_alias_keeps_root() {
        let (mut k, app1, app2, mm, t) = setup();
        get_page(&mut k, app1, mm, t, 0x1000);
        let src_key = map_key(app1, 0x1000);
        k.invoke(
            app1,
            t,
            mm,
            "mman_alias_page",
            &[
                Value::from(app1.0),
                Value::Int(src_key),
                Value::from(app2.0),
                Value::Int(0x8000),
            ],
        )
        .unwrap();
        k.invoke(
            app1,
            t,
            mm,
            "mman_release_page",
            &[Value::from(app1.0), Value::Int(map_key(app2, 0x8000))],
        )
        .unwrap();
        assert!(k.pages().translate(app1, 0x1000).is_some());
        assert_eq!(k.pages().translate(app2, 0x8000), None);
    }

    #[test]
    fn root_release_after_reboot_clears_orphan_aliases() {
        let (mut k, app1, app2, mm, t) = setup();
        get_page(&mut k, app1, mm, t, 0x1000);
        let src_key = map_key(app1, 0x1000);
        k.invoke(
            app1,
            t,
            mm,
            "mman_alias_page",
            &[
                Value::from(app1.0),
                Value::Int(src_key),
                Value::from(app2.0),
                Value::Int(0x8000),
            ],
        )
        .unwrap();
        // MM loses its tree; only the root is replayed by the client.
        k.fault(mm);
        k.micro_reboot(mm).unwrap();
        get_page(&mut k, app1, mm, t, 0x1000); // rebuild root (reuses frame)
        k.invoke(
            app1,
            t,
            mm,
            "mman_release_page",
            &[Value::from(app1.0), Value::Int(map_key(app1, 0x1000))],
        )
        .unwrap();
        // Kernel reflection removed the never-rebuilt alias too.
        assert_eq!(k.pages().translate(app2, 0x8000), None);
    }

    #[test]
    fn get_page_reuses_surviving_kernel_mapping() {
        let (mut k, app1, _a2, mm, t) = setup();
        get_page(&mut k, app1, mm, t, 0x1000);
        let frame_before = k.pages().translate(app1, 0x1000).unwrap();
        k.fault(mm);
        k.micro_reboot(mm).unwrap();
        get_page(&mut k, app1, mm, t, 0x1000);
        assert_eq!(k.pages().translate(app1, 0x1000), Some(frame_before));
    }

    #[test]
    fn introspect_reports_frame() {
        let (mut k, app1, _a2, mm, t) = setup();
        get_page(&mut k, app1, mm, t, 0x1000);
        let r = k
            .invoke(
                app1,
                t,
                mm,
                "mman_introspect",
                &[Value::from(app1.0), Value::Int(0x1000)],
            )
            .unwrap();
        assert!(matches!(r, Value::Int(_)));
    }
}
