//! The event-notification component (`evt` interface) — the interface of
//! the paper's Fig 3, with **global descriptors**: event ids live in a
//! single namespace shared by all client components, so a waiter in one
//! component can wait on an event created (split) by another.
//!
//! | function | role | effect |
//! |---|---|---|
//! | `evt_split(compid, parent_evtid, grp)` → evtid | create | create an event (child of `parent_evtid`; 0 = root) |
//! | `evt_wait(compid, desc)` | block | wait until triggered |
//! | `evt_trigger(compid, desc)` | wakeup | trigger; wakes a waiter or pends |
//! | `evt_free(compid, desc)` | terminate | destroy the event |

use std::collections::BTreeMap;

use composite::{ComponentId, Service, ServiceCtx, ServiceError, ThreadId, Value};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    creator: ComponentId,
    parent: i64,
    grp: i64,
    waiters: Vec<ThreadId>,
    /// Triggers that arrived with no waiter present.
    pending_triggers: u32,
}

/// The event-manager service component.
#[derive(Debug, Default)]
pub struct EventService {
    events: BTreeMap<i64, Event>,
    next_id: i64,
}

impl EventService {
    /// A fresh event manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live events (tests/reflection).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

impl Service for EventService {
    fn interface(&self) -> &'static str {
        "evt"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // evt_split(compid, parent_evtid, grp) -> evtid
            "evt_split" => {
                let _compid = args[0].int()?;
                let parent = args[1].int()?;
                let grp = args[2].int()?;
                if parent != 0 && !self.events.contains_key(&parent) {
                    // Parent must exist (D1: parents recover first).
                    return Err(ServiceError::NotFound);
                }
                self.next_id += 1;
                let id = self.next_id;
                self.events.insert(
                    id,
                    Event {
                        creator: ctx.client,
                        parent,
                        grp,
                        waiters: Vec::new(),
                        pending_triggers: 0,
                    },
                );
                Ok(Value::Int(id))
            }
            // evt_wait(compid, desc(evtid)) -> evtid on wake
            "evt_wait" => {
                let id = args[1].int()?;
                let me = ctx.thread;
                let evt = self.events.get_mut(&id).ok_or(ServiceError::NotFound)?;
                if evt.pending_triggers > 0 {
                    evt.pending_triggers -= 1;
                    evt.waiters.retain(|&w| w != me);
                    return Ok(Value::Int(id));
                }
                if !evt.waiters.contains(&me) {
                    evt.waiters.push(me);
                }
                Err(ctx.block_current())
            }
            // evt_trigger(compid, desc(evtid))
            "evt_trigger" => {
                let id = args[1].int()?;
                let evt = self.events.get_mut(&id).ok_or(ServiceError::NotFound)?;
                if let Some(w) = if evt.waiters.is_empty() {
                    None
                } else {
                    Some(evt.waiters[0])
                } {
                    // Leave the waiter in the list; its retried evt_wait
                    // consumes the pending trigger and removes itself.
                    evt.pending_triggers += 1;
                    let _ = ctx.wake(w);
                } else {
                    evt.pending_triggers += 1;
                }
                Ok(Value::Int(0))
            }
            // evt_free(compid, desc(evtid))
            "evt_free" => {
                let id = args[1].int()?;
                let evt = self.events.remove(&id).ok_or(ServiceError::NotFound)?;
                for w in evt.waiters {
                    let _ = ctx.wake(w);
                }
                Ok(Value::Int(0))
            }
            // evt_restore(creator_compid, evtid, parent_evtid, grp) —
            // recovery-only: rebuild an event under its *original global
            // id* (invoked by stubs during G0/U0 recovery; a regular
            // evt_split would mint a fresh id, breaking every other
            // client that shares the global descriptor).
            "evt_restore" => {
                let creator = ComponentId(args[0].int()? as u32);
                let id = args[1].int()?;
                let parent = args[2].int()?;
                let grp = args[3].int()?;
                if self.events.contains_key(&id) {
                    // Already restored by another client's recovery.
                    return Ok(Value::Int(id));
                }
                self.restore(id, creator, parent, grp)?;
                Ok(Value::Int(id))
            }
            // Reflection for recovery: who created this event?
            "evt_creator" => {
                let id = args[1].int()?;
                let evt = self.events.get(&id).ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(i64::from(evt.creator.0)))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        self.events.clear();
        // next_id stays monotone so global descriptor ids are never
        // recycled across reboots.
    }
}

/// During **G0** recovery the storage component upcalls the creator to
/// re-split an event under its *original global id*. This service entry
/// point re-inserts a specific id (only valid when absent — i.e. during
/// recovery).
impl EventService {
    /// Recreate an event under a fixed id (recovery-only path, used by
    /// the runtime's G0 handler through `evt_restore`).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidArg`] when the id is already live.
    pub fn restore(
        &mut self,
        id: i64,
        creator: ComponentId,
        parent: i64,
        grp: i64,
    ) -> Result<(), ServiceError> {
        if self.events.contains_key(&id) {
            return Err(ServiceError::InvalidArg);
        }
        self.events.insert(
            id,
            Event {
                creator,
                parent,
                grp,
                waiters: Vec::new(),
                pending_triggers: 0,
            },
        );
        if id > self.next_id {
            self.next_id = id;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CallError, CostModel, Kernel, Priority, ThreadState};

    fn setup() -> (
        Kernel,
        ComponentId,
        ComponentId,
        ComponentId,
        ThreadId,
        ThreadId,
    ) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app1 = k.add_client_component("app1");
        let app2 = k.add_client_component("app2");
        let evt = k.add_component("evt", Box::new(EventService::new()));
        k.grant(app1, evt);
        k.grant(app2, evt);
        let t1 = k.create_thread(app1, Priority(5));
        let t2 = k.create_thread(app2, Priority(6));
        (k, app1, app2, evt, t1, t2)
    }

    fn split(k: &mut Kernel, app: ComponentId, evt: ComponentId, t: ThreadId, parent: i64) -> i64 {
        k.invoke(
            app,
            t,
            evt,
            "evt_split",
            &[Value::Int(1), Value::Int(parent), Value::Int(0)],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    #[test]
    fn split_wait_trigger_across_components() {
        let (mut k, app1, app2, evt, t1, t2) = setup();
        let id = split(&mut k, app1, evt, t1, 0);
        // Global namespace: app2 waits on an event app1 created.
        let err = k
            .invoke(app2, t2, evt, "evt_wait", &[Value::Int(2), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert!(matches!(
            k.thread(t2).unwrap().state,
            ThreadState::Blocked { .. }
        ));

        k.invoke(
            app1,
            t1,
            evt,
            "evt_trigger",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
        assert!(k.thread(t2).unwrap().state.is_runnable());
        // Retried wait consumes the pending trigger.
        let r = k
            .invoke(app2, t2, evt, "evt_wait", &[Value::Int(2), Value::Int(id)])
            .unwrap();
        assert_eq!(r, Value::Int(id));
    }

    #[test]
    fn trigger_before_wait_pends() {
        let (mut k, app1, _app2, evt, t1, _t2) = setup();
        let id = split(&mut k, app1, evt, t1, 0);
        k.invoke(
            app1,
            t1,
            evt,
            "evt_trigger",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
        let r = k
            .invoke(app1, t1, evt, "evt_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        assert_eq!(r, Value::Int(id));
    }

    #[test]
    fn child_events_need_live_parent() {
        let (mut k, app1, _a, evt, t1, _t2) = setup();
        let root = split(&mut k, app1, evt, t1, 0);
        let child = split(&mut k, app1, evt, t1, root);
        assert!(child > root);
        let err = k
            .invoke(
                app1,
                t1,
                evt,
                "evt_split",
                &[Value::Int(1), Value::Int(999), Value::Int(0)],
            )
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn free_wakes_waiters_and_removes() {
        let (mut k, app1, app2, evt, t1, t2) = setup();
        let id = split(&mut k, app1, evt, t1, 0);
        let _ = k.invoke(app2, t2, evt, "evt_wait", &[Value::Int(2), Value::Int(id)]);
        k.invoke(app1, t1, evt, "evt_free", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        assert!(k.thread(t2).unwrap().state.is_runnable());
        let err = k
            .invoke(app1, t1, evt, "evt_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }

    #[test]
    fn creator_reflection() {
        let (mut k, app1, app2, evt, t1, t2) = setup();
        let id = split(&mut k, app1, evt, t1, 0);
        let r = k
            .invoke(
                app2,
                t2,
                evt,
                "evt_creator",
                &[Value::Int(2), Value::Int(id)],
            )
            .unwrap();
        assert_eq!(r, Value::Int(i64::from(app1.0)));
    }

    #[test]
    fn restore_reinserts_specific_id() {
        let mut svc = EventService::new();
        svc.restore(42, ComponentId(1), 0, 7).unwrap();
        assert_eq!(svc.event_count(), 1);
        // Restoring an existing id is invalid.
        assert!(svc.restore(42, ComponentId(1), 0, 7).is_err());
        // next_id advanced past the restored id.
        assert_eq!(svc.next_id, 42);
    }

    #[test]
    fn ids_survive_reboot_monotonically() {
        let (mut k, app1, _a, evt, t1, _t2) = setup();
        let id1 = split(&mut k, app1, evt, t1, 0);
        k.fault(evt);
        k.micro_reboot(evt).unwrap();
        let id2 = split(&mut k, app1, evt, t1, 0);
        assert!(id2 > id1);
    }

    #[test]
    fn wait_on_unknown_event_not_found() {
        let (mut k, app1, _a, evt, t1, _t2) = setup();
        let err = k
            .invoke(app1, t1, evt, "evt_wait", &[Value::Int(1), Value::Int(5)])
            .unwrap_err();
        assert_eq!(err, CallError::Service(ServiceError::NotFound));
    }
}
