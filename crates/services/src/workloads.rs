//! The benchmark micro-workloads of §V-B, one per fault-injection target.
//!
//! Each workload is an explicit state machine implementing
//! [`composite::Workload`] over any `Ctx: InterfaceCall + KernelAccess`,
//! so the identical client code drives the bare kernel, C³, and
//! SuperGlue. Workloads *verify their own semantics* (e.g. a read
//! returns the written byte); a violated expectation crashes the
//! workload, which the fault-injection campaign counts as an
//! unrecovered/propagated fault.

use std::cell::RefCell;
use std::rc::Rc;

use composite::{CallError, InterfaceCall, KernelAccess, StepResult, ThreadId, Workload};

use crate::api::{evt, fs, lock, mman, sched, tmr, ClientEnd};

fn on_err(e: &CallError) -> StepResult {
    match e {
        CallError::WouldBlock => StepResult::Blocked,
        other => StepResult::Crashed(other.to_string()),
    }
}

/// Outcome shared between paired workloads (lock/event partners).
pub type SharedDesc = Rc<RefCell<Option<i64>>>;

/// Create an empty shared-descriptor cell.
#[must_use]
pub fn shared_desc() -> SharedDesc {
    Rc::new(RefCell::new(None))
}

// ---------------------------------------------------------------------
// Sched: two threads ping-pong with sched_blk / sched_wakeup.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PingPongState {
    Setup,
    WakePartner,
    Block,
    Exit,
}

/// One side of the scheduler ping-pong workload.
#[derive(Debug)]
pub struct SchedPingPong {
    end: ClientEnd,
    partner: ThreadId,
    rounds: u32,
    /// The leader starts by waking; the follower starts by blocking.
    leader: bool,
    state: PingPongState,
    my_desc: i64,
    pinged_once: bool,
}

impl SchedPingPong {
    /// A ping-pong half performing `rounds` wake/block exchanges.
    #[must_use]
    pub fn new(end: ClientEnd, partner: ThreadId, rounds: u32, leader: bool) -> Self {
        Self {
            end,
            partner,
            rounds,
            leader,
            state: PingPongState::Setup,
            my_desc: 0,
            pinged_once: false,
        }
    }

    /// Remaining rounds (tests).
    #[must_use]
    pub fn remaining(&self) -> u32 {
        self.rounds
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for SchedPingPong {
    fn step(&mut self, ctx: &mut Ctx, thread: ThreadId) -> StepResult {
        match self.state {
            PingPongState::Setup => match sched::setup(ctx, &self.end, thread) {
                Ok(d) => {
                    self.my_desc = d;
                    self.state = if self.leader {
                        PingPongState::WakePartner
                    } else {
                        PingPongState::Block
                    };
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            PingPongState::WakePartner => {
                match sched::wakeup(ctx, &self.end, i64::from(self.partner.0)) {
                    Ok(()) => {
                        self.pinged_once = true;
                        if self.rounds == 0 {
                            self.state = PingPongState::Exit;
                        } else {
                            self.state = PingPongState::Block;
                        }
                        StepResult::Yield
                    }
                    // Before the first ping the partner may not have
                    // registered yet (retry); afterwards NotFound means
                    // the partner already exited, so we finish too.
                    Err(CallError::Service(composite::ServiceError::NotFound)) => {
                        if self.pinged_once {
                            self.state = PingPongState::Exit;
                        }
                        StepResult::Yield
                    }
                    Err(e) => on_err(&e),
                }
            }
            PingPongState::Block => match sched::blk(ctx, &self.end, self.my_desc) {
                Ok(()) => {
                    if self.rounds == 0 {
                        self.state = PingPongState::Exit;
                    } else {
                        self.rounds -= 1;
                        self.state = PingPongState::WakePartner;
                    }
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            PingPongState::Exit => match sched::exit(ctx, &self.end, self.my_desc) {
                Ok(()) => StepResult::Done,
                Err(e) => on_err(&e),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Lock: owner holds, contender contends, owner releases, contender takes.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockOwnerState {
    Alloc,
    Take,
    Hold,
    Release,
    Free,
}

/// The lock-owning half of the §V-B Lock workload.
#[derive(Debug)]
pub struct LockOwner {
    end: ClientEnd,
    shared: SharedDesc,
    rounds: u32,
    hold_steps: u32,
    held: u32,
    state: LockOwnerState,
    desc: i64,
}

impl LockOwner {
    /// An owner performing `rounds` take/hold/release cycles, holding for
    /// `hold_steps` dispatches each time.
    #[must_use]
    pub fn new(end: ClientEnd, shared: SharedDesc, rounds: u32, hold_steps: u32) -> Self {
        Self {
            end,
            shared,
            rounds,
            hold_steps,
            held: 0,
            state: LockOwnerState::Alloc,
            desc: 0,
        }
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for LockOwner {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        match self.state {
            LockOwnerState::Alloc => match lock::alloc(ctx, &self.end) {
                Ok(d) => {
                    self.desc = d;
                    *self.shared.borrow_mut() = Some(d);
                    self.state = LockOwnerState::Take;
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            LockOwnerState::Take => match lock::take(ctx, &self.end, self.desc) {
                Ok(()) => {
                    self.held = 0;
                    self.state = LockOwnerState::Hold;
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            LockOwnerState::Hold => {
                self.held += 1;
                if self.held >= self.hold_steps {
                    self.state = LockOwnerState::Release;
                }
                StepResult::Yield
            }
            LockOwnerState::Release => match lock::release(ctx, &self.end, self.desc) {
                Ok(()) => {
                    self.rounds -= 1;
                    self.state = if self.rounds == 0 {
                        LockOwnerState::Free
                    } else {
                        LockOwnerState::Take
                    };
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            LockOwnerState::Free => match lock::free(ctx, &self.end, self.desc) {
                Ok(()) => {
                    *self.shared.borrow_mut() = None;
                    StepResult::Done
                }
                Err(e) => on_err(&e),
            },
        }
    }
}

/// The contending half of the §V-B Lock workload: repeatedly takes and
/// immediately releases the shared lock, blocking while the owner holds
/// it.
#[derive(Debug)]
pub struct LockContender {
    end: ClientEnd,
    shared: SharedDesc,
    rounds: u32,
    holding: bool,
    contended: bool,
}

impl LockContender {
    /// A contender performing up to `rounds` take/release cycles; it
    /// finishes early when the owner frees the lock.
    #[must_use]
    pub fn new(end: ClientEnd, shared: SharedDesc, rounds: u32) -> Self {
        Self {
            end,
            shared,
            rounds,
            holding: false,
            contended: false,
        }
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for LockContender {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let Some(desc) = *self.shared.borrow() else {
            // Done if the owner already freed the lock; otherwise it has
            // not allocated it yet.
            return if self.rounds == 0 || self.contended {
                StepResult::Done
            } else {
                StepResult::Yield
            };
        };
        self.contended = true;
        if self.holding {
            match lock::release(ctx, &self.end, desc) {
                Ok(()) => {
                    self.holding = false;
                    self.rounds = self.rounds.saturating_sub(1);
                    if self.rounds == 0 {
                        return StepResult::Done;
                    }
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            }
        } else {
            match lock::take(ctx, &self.end, desc) {
                Ok(()) => {
                    self.holding = true;
                    StepResult::Yield
                }
                // The owner may have freed the lock while we contended.
                Err(CallError::Service(composite::ServiceError::NotFound)) => {
                    if self.rounds == 0 {
                        StepResult::Done
                    } else {
                        StepResult::Yield
                    }
                }
                Err(e) => on_err(&e),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Event: a waiter blocks on an event; a trigger fires it from another
// component.
// ---------------------------------------------------------------------

/// The waiting half of the §V-B Event workload (also the event creator).
#[derive(Debug)]
pub struct EventWaiter {
    end: ClientEnd,
    shared: SharedDesc,
    rounds: u32,
    desc: Option<i64>,
}

impl EventWaiter {
    /// A waiter creating the event and waiting `rounds` times.
    #[must_use]
    pub fn new(end: ClientEnd, shared: SharedDesc, rounds: u32) -> Self {
        Self {
            end,
            shared,
            rounds,
            desc: None,
        }
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for EventWaiter {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let desc = match self.desc {
            Some(d) => d,
            None => match evt::split(ctx, &self.end, 0, 1) {
                Ok(d) => {
                    self.desc = Some(d);
                    *self.shared.borrow_mut() = Some(d);
                    return StepResult::Yield;
                }
                Err(e) => return on_err(&e),
            },
        };
        if self.rounds == 0 {
            return match evt::free(ctx, &self.end, desc) {
                Ok(()) => {
                    *self.shared.borrow_mut() = None;
                    StepResult::Done
                }
                Err(e) => on_err(&e),
            };
        }
        match evt::wait(ctx, &self.end, desc) {
            Ok(returned) => {
                if returned != desc {
                    return StepResult::Crashed(format!(
                        "evt_wait returned {returned}, expected {desc}"
                    ));
                }
                self.rounds -= 1;
                StepResult::Yield
            }
            Err(e) => on_err(&e),
        }
    }
}

/// The triggering half of the §V-B Event workload, running in a
/// *different* component (exercising the global descriptor namespace).
#[derive(Debug)]
pub struct EventTrigger {
    end: ClientEnd,
    shared: SharedDesc,
    rounds: u32,
}

impl EventTrigger {
    /// A trigger firing the shared event `rounds` times.
    #[must_use]
    pub fn new(end: ClientEnd, shared: SharedDesc, rounds: u32) -> Self {
        Self {
            end,
            shared,
            rounds,
        }
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for EventTrigger {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        if self.rounds == 0 {
            return StepResult::Done;
        }
        let Some(desc) = *self.shared.borrow() else {
            return StepResult::Yield; // waiter has not created it yet
        };
        match evt::trigger(ctx, &self.end, desc) {
            Ok(()) => {
                self.rounds -= 1;
                if self.rounds == 0 {
                    StepResult::Done
                } else {
                    StepResult::Yield
                }
            }
            // The waiter may have freed the event already.
            Err(CallError::Service(composite::ServiceError::NotFound)) => StepResult::Done,
            Err(e) => on_err(&e),
        }
    }
}

// ---------------------------------------------------------------------
// Timer: periodic block/wake.
// ---------------------------------------------------------------------

/// The §V-B Timer workload: create a periodic timer and wait on it
/// repeatedly.
#[derive(Debug)]
pub struct TimerPeriodic {
    end: ClientEnd,
    period_ns: i64,
    rounds: u32,
    desc: Option<i64>,
}

impl TimerPeriodic {
    /// A periodic waiter with the given period, running `rounds` periods.
    #[must_use]
    pub fn new(end: ClientEnd, period_ns: i64, rounds: u32) -> Self {
        Self {
            end,
            period_ns,
            rounds,
            desc: None,
        }
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for TimerPeriodic {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let desc = match self.desc {
            Some(d) => d,
            None => match tmr::create(ctx, &self.end, self.period_ns) {
                Ok(d) => {
                    self.desc = Some(d);
                    return StepResult::Yield;
                }
                Err(e) => return on_err(&e),
            },
        };
        if self.rounds == 0 {
            return match tmr::free(ctx, &self.end, desc) {
                Ok(()) => StepResult::Done,
                Err(e) => on_err(&e),
            };
        }
        match tmr::wait(ctx, &self.end, desc) {
            Ok(()) => {
                self.rounds -= 1;
                StepResult::Yield
            }
            Err(e) => on_err(&e),
        }
    }
}

// ---------------------------------------------------------------------
// MM: grant, alias into another component, revoke.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmState {
    Get,
    Alias,
    Release,
}

/// The §V-B MM workload: pages are granted, aliased into a different
/// component, then revoked (removing all aliases).
#[derive(Debug)]
pub struct MmGrantAliasRevoke {
    end: ClientEnd,
    dst: composite::ComponentId,
    rounds: u32,
    state: MmState,
    next_vaddr: u64,
    root_key: i64,
}

impl MmGrantAliasRevoke {
    /// A grant/alias/revoke loop of `rounds` iterations, aliasing into
    /// `dst`.
    #[must_use]
    pub fn new(end: ClientEnd, dst: composite::ComponentId, rounds: u32) -> Self {
        Self {
            end,
            dst,
            rounds,
            state: MmState::Get,
            next_vaddr: 0x1000,
            root_key: 0,
        }
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for MmGrantAliasRevoke {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let vaddr = self.next_vaddr;
        match self.state {
            MmState::Get => match mman::get_page(ctx, &self.end, vaddr) {
                Ok(key) => {
                    self.root_key = key;
                    self.state = MmState::Alias;
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            MmState::Alias => match mman::alias_page(
                ctx,
                &self.end,
                self.root_key,
                self.dst,
                vaddr + 0x1_0000_0000,
            ) {
                Ok(_) => {
                    self.state = MmState::Release;
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            MmState::Release => match mman::release_page(ctx, &self.end, self.root_key) {
                Ok(()) => {
                    // Verify revocation removed the alias.
                    let alias_gone = ctx
                        .kernel()
                        .pages()
                        .translate(self.dst, vaddr + 0x1_0000_0000)
                        .is_none();
                    if !alias_gone {
                        return StepResult::Crashed("alias survived revocation".into());
                    }
                    self.rounds -= 1;
                    self.next_vaddr += 0x1000;
                    if self.rounds == 0 {
                        StepResult::Done
                    } else {
                        self.state = MmState::Get;
                        StepResult::Yield
                    }
                }
                Err(e) => on_err(&e),
            },
        }
    }
}

// ---------------------------------------------------------------------
// FS: open, write a byte, read it back, close.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FsState {
    Open,
    Write,
    Seek,
    Read,
    Close,
}

/// The §V-B FS workload: open a file, write a byte, read it back
/// (verifying the value), close.
#[derive(Debug)]
pub struct FsOpenWriteRead {
    end: ClientEnd,
    rounds: u32,
    state: FsState,
    fd: i64,
    iteration: u32,
}

impl FsOpenWriteRead {
    /// An open/write/read/close loop of `rounds` iterations.
    #[must_use]
    pub fn new(end: ClientEnd, rounds: u32) -> Self {
        Self {
            end,
            rounds,
            state: FsState::Open,
            fd: 0,
            iteration: 0,
        }
    }

    fn byte(&self) -> u8 {
        (0x40 + (self.iteration % 64)) as u8
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for FsOpenWriteRead {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        match self.state {
            FsState::Open => {
                let path = format!("bench-{}.dat", self.iteration % 4);
                match fs::split(ctx, &self.end, 0, &path) {
                    Ok(fd) => {
                        self.fd = fd;
                        self.state = FsState::Write;
                        StepResult::Yield
                    }
                    Err(e) => on_err(&e),
                }
            }
            FsState::Write => match fs::write(ctx, &self.end, self.fd, vec![self.byte()]) {
                Ok(1) => {
                    self.state = FsState::Seek;
                    StepResult::Yield
                }
                Ok(n) => StepResult::Crashed(format!("twrite wrote {n} bytes, expected 1")),
                Err(e) => on_err(&e),
            },
            FsState::Seek => match fs::seek(ctx, &self.end, self.fd, 0) {
                Ok(()) => {
                    self.state = FsState::Read;
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            FsState::Read => match fs::read(ctx, &self.end, self.fd, 1) {
                Ok(data) => {
                    if data != vec![self.byte()] {
                        return StepResult::Crashed(format!(
                            "read back {data:?}, expected {:?}",
                            [self.byte()]
                        ));
                    }
                    self.state = FsState::Close;
                    StepResult::Yield
                }
                Err(e) => on_err(&e),
            },
            FsState::Close => match fs::release(ctx, &self.end, self.fd) {
                Ok(()) => {
                    self.rounds -= 1;
                    self.iteration += 1;
                    if self.rounds == 0 {
                        StepResult::Done
                    } else {
                        self.state = FsState::Open;
                        StepResult::Yield
                    }
                }
                Err(e) => on_err(&e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CostModel, Executor, Kernel, Priority, RunExit};

    use crate::cbuf::CbufService;
    use crate::event::EventService;
    use crate::lock::LockService;
    use crate::mm::MemoryManager;
    use crate::ramfs::RamFs;
    use crate::scheduler::Scheduler;
    use crate::storage::StorageService;
    use crate::timer::TimerService;

    struct Rig {
        k: Kernel,
        app1: composite::ComponentId,
        app2: composite::ComponentId,
        sched: composite::ComponentId,
        lock: composite::ComponentId,
        evt: composite::ComponentId,
        tmr: composite::ComponentId,
        mm: composite::ComponentId,
        fs: composite::ComponentId,
    }

    fn rig() -> Rig {
        let mut k = Kernel::with_costs(CostModel::free());
        let app1 = k.add_client_component("app1");
        let app2 = k.add_client_component("app2");
        let sched = k.add_component("sched", Box::new(Scheduler::new()));
        let lock = k.add_component("lock", Box::new(LockService::new()));
        let evt = k.add_component("evt", Box::new(EventService::new()));
        let tmr = k.add_component("tmr", Box::new(TimerService::new()));
        let st = k.add_component("storage", Box::new(StorageService::new()));
        let cb = k.add_component("cbuf", Box::new(CbufService::new()));
        let mm = k.add_component("mm", Box::new(MemoryManager::new()));
        let fs = k.add_component("fs", Box::new(RamFs::new(st, cb)));
        for app in [app1, app2] {
            for svc in [sched, lock, evt, tmr, mm, fs] {
                k.grant(app, svc);
            }
        }
        k.grant(fs, st);
        k.grant(fs, cb);
        Rig {
            k,
            app1,
            app2,
            sched,
            lock,
            evt,
            tmr,
            mm,
            fs,
        }
    }

    #[test]
    fn sched_ping_pong_completes() {
        let mut r = rig();
        let t1 = r.k.create_thread(r.app1, Priority(5));
        let t2 = r.k.create_thread(r.app1, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach(
            t1,
            Box::new(SchedPingPong::new(
                ClientEnd::new(r.app1, t1, r.sched),
                t2,
                5,
                true,
            )),
        );
        ex.attach(
            t2,
            Box::new(SchedPingPong::new(
                ClientEnd::new(r.app1, t2, r.sched),
                t1,
                5,
                false,
            )),
        );
        assert_eq!(ex.run(&mut r.k, 10_000), RunExit::AllDone);
        assert!(r.k.thread(t1).unwrap().state.is_terminal());
        assert!(r.k.thread(t2).unwrap().state.is_terminal());
    }

    #[test]
    fn lock_owner_and_contender_complete() {
        let mut r = rig();
        let t1 = r.k.create_thread(r.app1, Priority(5));
        let t2 = r.k.create_thread(r.app1, Priority(5));
        let shared = shared_desc();
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach(
            t1,
            Box::new(LockOwner::new(
                ClientEnd::new(r.app1, t1, r.lock),
                shared.clone(),
                4,
                2,
            )),
        );
        ex.attach(
            t2,
            Box::new(LockContender::new(
                ClientEnd::new(r.app1, t2, r.lock),
                shared,
                3,
            )),
        );
        assert_eq!(ex.run(&mut r.k, 10_000), RunExit::AllDone);
    }

    #[test]
    fn event_waiter_and_trigger_complete_across_components() {
        let mut r = rig();
        let t1 = r.k.create_thread(r.app1, Priority(5));
        let t2 = r.k.create_thread(r.app2, Priority(6));
        let shared = shared_desc();
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach(
            t1,
            Box::new(EventWaiter::new(
                ClientEnd::new(r.app1, t1, r.evt),
                shared.clone(),
                4,
            )),
        );
        ex.attach(
            t2,
            Box::new(EventTrigger::new(
                ClientEnd::new(r.app2, t2, r.evt),
                shared,
                4,
            )),
        );
        assert_eq!(ex.run(&mut r.k, 10_000), RunExit::AllDone);
    }

    #[test]
    fn timer_periodic_completes_and_advances_time() {
        let mut r = rig();
        let t = r.k.create_thread(r.app1, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach(
            t,
            Box::new(TimerPeriodic::new(
                ClientEnd::new(r.app1, t, r.tmr),
                1_000_000,
                5,
            )),
        );
        assert_eq!(ex.run(&mut r.k, 10_000), RunExit::AllDone);
        assert!(r.k.now().as_nanos() >= 5_000_000);
    }

    #[test]
    fn mm_grant_alias_revoke_completes() {
        let mut r = rig();
        let t = r.k.create_thread(r.app1, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach(
            t,
            Box::new(MmGrantAliasRevoke::new(
                ClientEnd::new(r.app1, t, r.mm),
                r.app2,
                6,
            )),
        );
        assert_eq!(ex.run(&mut r.k, 10_000), RunExit::AllDone);
        assert_eq!(r.k.pages().mapping_count(), 0);
    }

    #[test]
    fn fs_open_write_read_close_completes() {
        let mut r = rig();
        let t = r.k.create_thread(r.app1, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach(
            t,
            Box::new(FsOpenWriteRead::new(ClientEnd::new(r.app1, t, r.fs), 6)),
        );
        assert_eq!(ex.run(&mut r.k, 10_000), RunExit::AllDone);
    }

    #[test]
    fn fs_workload_crashes_on_unrecovered_fault() {
        // Without a recovery runtime, a fault reaches the workload and
        // crashes it — the bare-kernel baseline behavior.
        let mut r = rig();
        let t = r.k.create_thread(r.app1, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach(
            t,
            Box::new(FsOpenWriteRead::new(ClientEnd::new(r.app1, t, r.fs), 100)),
        );
        ex.run(&mut r.k, 10);
        r.k.fault(r.fs);
        ex.run(&mut r.k, 100);
        assert_eq!(
            r.k.thread(t).unwrap().state,
            composite::ThreadState::Crashed
        );
    }
}
