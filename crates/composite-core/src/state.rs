//! The kernel's complete observable state as a plain value.
//!
//! [`KernelState`] is the left operand of the pure fold
//! `step(KernelState, Event) -> (KernelState, Effects)`. Every table a
//! transition can touch is `Arc`-shared, so `clone()` is O(1) — a
//! snapshot costs a handful of reference-count bumps, and the first
//! mutation after a snapshot pays a copy-on-write of just the table it
//! touches (`Arc::make_mut`). The model checker leans on this for
//! shrinking (replaying candidate prefixes from saved snapshots) and
//! `sgtrace replay --to` uses it for time travel.
//!
//! What is deliberately *not* here: service objects (the runtime shell
//! owns `Box<dyn Service>` images), component names (interned in the
//! shell), the flight recorder, and the metrics registry. The core
//! reports what those runtime facilities should record as
//! [`Effect`](crate::effect::Effect) data.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::capability::CapTable;
use crate::ids::{ComponentId, Epoch, ThreadId};
use crate::pages::PageTables;
use crate::thread::Thread;
use crate::time::{CostModel, SimTime};

/// The booter component (id 0); it owns micro-reboot authority,
/// mirroring the paper's step (2)-(3) where the hardware exception
/// handler vectors to the booter.
pub const BOOTER: ComponentId = ComponentId(0);

/// The boot thread (id 0), used for post-reboot initialization upcalls.
pub const BOOT_THREAD: ThreadId = ThreadId(0);

/// Reboot-storm escalation policy: when the booter performs more than
/// `max_reboots_in_window` micro-reboots of one component within
/// `reboot_window`, the component is marked **degraded** — clients fail
/// fast for `degraded_cooldown`, after which the booter cold-restarts it
/// (fresh image, cleared mark). Repeated reboots inside the window are
/// additionally spaced by a deterministic exponential virtual-time
/// backoff starting at `reboot_backoff`.
///
/// The default policy is **disabled** (`reboot_window == 0`): the
/// established single-fault behavior — reboot immediately, as often as
/// asked — is unchanged unless a harness opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EscalationPolicy {
    /// Sliding window over which reboots of one component are counted
    /// (zero disables escalation entirely).
    pub reboot_window: SimTime,
    /// Reboots tolerated inside the window before degradation.
    pub max_reboots_in_window: u32,
    /// How long a degraded component rejects clients before the booter
    /// cold-restarts it.
    pub degraded_cooldown: SimTime,
    /// Base backoff charged before the second reboot in a window; doubles
    /// per additional reboot (capped at `base << 6`).
    pub reboot_backoff: SimTime,
}

impl EscalationPolicy {
    /// The disabled policy (no backoff, no degradation) — the default.
    #[must_use]
    pub const fn disabled() -> Self {
        Self {
            reboot_window: SimTime::ZERO,
            max_reboots_in_window: 0,
            degraded_cooldown: SimTime::ZERO,
            reboot_backoff: SimTime::ZERO,
        }
    }

    /// A calibrated storm policy: more than 3 reboots inside 5 ms marks
    /// the component degraded for 50 ms; reboots back off from 10 µs.
    #[must_use]
    pub const fn storm_defaults() -> Self {
        Self {
            reboot_window: SimTime(5_000_000),
            max_reboots_in_window: 3,
            degraded_cooldown: SimTime(50_000_000),
            reboot_backoff: SimTime(10_000),
        }
    }

    /// Whether the policy does anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.reboot_window > SimTime::ZERO && self.max_reboots_in_window > 0
    }
}

/// Lifecycle state of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentState {
    /// Serving invocations normally.
    Active,
    /// Crashed by a (detected, fail-stop) fault; every invocation fails
    /// until micro-rebooted.
    Faulty,
}

/// The core's view of one component: lifecycle state, micro-reboot
/// epoch, and whether a service image exists for it (the image itself
/// lives in the runtime shell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentMeta {
    /// Lifecycle state.
    pub state: ComponentState,
    /// Micro-reboot epoch.
    pub epoch: Epoch,
    /// Whether a service was ever installed (`false` for pure client
    /// components — application protection domains with no interface).
    pub has_service: bool,
}

/// The kernel's complete observable state. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelState {
    /// Component table, indexed by [`ComponentId`].
    pub components: Arc<Vec<ComponentMeta>>,
    /// Thread table, indexed by [`ThreadId`].
    pub threads: Arc<Vec<Thread>>,
    /// Capability table.
    pub caps: Arc<CapTable>,
    /// Simulated page tables.
    pub pages: Arc<PageTables>,
    /// Current virtual time.
    pub time: SimTime,
    /// The cost model.
    pub costs: CostModel,
    /// Reboot-storm escalation policy.
    pub escalation: EscalationPolicy,
    /// Per-invocation watchdog step budget (0 = disabled).
    pub watchdog_budget: u64,
    /// Components whose recovery is currently in flight (innermost
    /// last); a fault raised while this is non-empty is *nested*.
    pub active_recoveries: Arc<Vec<ComponentId>>,
    /// Degraded components and the virtual time at which the booter's
    /// cold restart clears the mark, keyed by component id.
    pub degraded: Arc<BTreeMap<u32, SimTime>>,
    /// Recent reboot timestamps per component (escalation window).
    pub reboot_history: Arc<BTreeMap<u32, VecDeque<SimTime>>>,
    /// One-shot fault armed to fire the moment the next recovery begins
    /// (the SWIFI during-recovery injection hook).
    pub armed_recovery_fault: Option<ComponentId>,
}

impl KernelState {
    /// An empty state (no components, no threads) with the given cost
    /// model. The runtime shell adds the booter and boot thread via
    /// events so ids stay in lockstep with its side tables.
    #[must_use]
    pub fn with_costs(costs: CostModel) -> Self {
        Self {
            components: Arc::new(Vec::new()),
            threads: Arc::new(Vec::new()),
            caps: Arc::new(CapTable::new()),
            pages: Arc::new(PageTables::new()),
            time: SimTime::ZERO,
            costs,
            escalation: EscalationPolicy::disabled(),
            watchdog_budget: 0,
            active_recoveries: Arc::new(Vec::new()),
            degraded: Arc::new(BTreeMap::new()),
            reboot_history: Arc::new(BTreeMap::new()),
            armed_recovery_fault: None,
        }
    }

    /// An empty state with the paper-calibrated cost model.
    #[must_use]
    pub fn new() -> Self {
        Self::with_costs(CostModel::paper_defaults())
    }

    // ------------------------------------------------------------------
    // Read helpers
    // ------------------------------------------------------------------

    /// A component's metadata.
    #[must_use]
    pub fn component(&self, c: ComponentId) -> Option<&ComponentMeta> {
        self.components.get(c.0 as usize)
    }

    /// A thread.
    #[must_use]
    pub fn thread(&self, t: ThreadId) -> Option<&Thread> {
        self.threads.get(t.0 as usize)
    }

    /// Whether a component is currently faulty.
    #[must_use]
    pub fn is_faulty(&self, c: ComponentId) -> bool {
        self.component(c)
            .is_some_and(|m| m.state == ComponentState::Faulty)
    }

    /// The micro-reboot epoch of a component.
    #[must_use]
    pub fn epoch_of(&self, c: ComponentId) -> Option<Epoch> {
        self.component(c).map(|m| m.epoch)
    }

    /// Whether `c` is currently degraded (clients fail fast until the
    /// booter's cold restart).
    #[must_use]
    pub fn is_degraded(&self, c: ComponentId) -> bool {
        self.degraded
            .get(&c.0)
            .is_some_and(|&until| self.time < until)
    }

    /// The virtual time at which `c`'s degraded mark clears, if marked.
    #[must_use]
    pub fn degraded_until(&self, c: ComponentId) -> Option<SimTime> {
        self.degraded.get(&c.0).copied()
    }

    /// How many recovery actions are currently in flight.
    #[must_use]
    pub fn recovery_depth(&self) -> usize {
        self.active_recoveries.len()
    }

    /// How many recovery actions are in flight *on `c`* specifically.
    #[must_use]
    pub fn recovery_depth_of(&self, c: ComponentId) -> usize {
        self.active_recoveries.iter().filter(|&&x| x == c).count()
    }

    // ------------------------------------------------------------------
    // Copy-on-write mutation helpers (Arc::make_mut)
    // ------------------------------------------------------------------

    /// Mutable component table (copy-on-write).
    pub fn components_mut(&mut self) -> &mut Vec<ComponentMeta> {
        Arc::make_mut(&mut self.components)
    }

    /// Mutable thread table (copy-on-write).
    pub fn threads_mut(&mut self) -> &mut Vec<Thread> {
        Arc::make_mut(&mut self.threads)
    }

    /// Mutable capability table (copy-on-write).
    pub fn caps_mut(&mut self) -> &mut CapTable {
        Arc::make_mut(&mut self.caps)
    }

    /// Mutable page tables (copy-on-write).
    pub fn pages_mut(&mut self) -> &mut PageTables {
        Arc::make_mut(&mut self.pages)
    }

    /// Mutable in-flight-recovery stack (copy-on-write).
    pub fn recoveries_mut(&mut self) -> &mut Vec<ComponentId> {
        Arc::make_mut(&mut self.active_recoveries)
    }

    /// Mutable degraded-mark table (copy-on-write).
    pub fn degraded_mut(&mut self) -> &mut BTreeMap<u32, SimTime> {
        Arc::make_mut(&mut self.degraded)
    }

    /// Mutable reboot-history table (copy-on-write).
    pub fn reboot_history_mut(&mut self) -> &mut BTreeMap<u32, VecDeque<SimTime>> {
        Arc::make_mut(&mut self.reboot_history)
    }
}

impl Default for KernelState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_cheap_and_independent() {
        let mut s = KernelState::with_costs(CostModel::free());
        s.components_mut().push(ComponentMeta {
            state: ComponentState::Active,
            epoch: Epoch::default(),
            has_service: true,
        });
        let snap = s.clone();
        // Shared until written…
        assert!(Arc::ptr_eq(&s.components, &snap.components));
        // …then copy-on-write isolates the snapshot.
        s.components_mut()[0].state = ComponentState::Faulty;
        assert!(s.is_faulty(ComponentId(0)));
        assert!(!snap.is_faulty(ComponentId(0)));
        assert_ne!(s, snap);
    }

    #[test]
    fn degraded_depends_on_time() {
        let mut s = KernelState::with_costs(CostModel::free());
        s.degraded_mut().insert(3, SimTime(100));
        assert!(s.is_degraded(ComponentId(3)));
        s.time = SimTime(100);
        assert!(!s.is_degraded(ComponentId(3)));
        assert_eq!(s.degraded_until(ComponentId(3)), Some(SimTime(100)));
    }

    #[test]
    fn escalation_policy_enablement() {
        assert!(!EscalationPolicy::disabled().is_enabled());
        assert!(EscalationPolicy::storm_defaults().is_enabled());
        assert_eq!(EscalationPolicy::default(), EscalationPolicy::disabled());
    }
}
