//! What the runtime shell must do after a step.
//!
//! The pure core cannot write the trace ring or bump metrics counters,
//! so it *describes* those writes as [`Effect`] values, in the exact
//! order the imperative kernel used to perform them. The shell folds
//! the list; the trace stays byte-identical because the order is part
//! of the contract.
//!
//! [`Effects`] stores the first few effects inline (most transitions
//! emit zero or one) so the invocation hot path stays allocation-free.

use crate::event::Reply;
use crate::ids::{ComponentId, Epoch, ThreadId};
use crate::mechanism::Mechanism;
use crate::time::SimTime;

/// One deferred runtime action. Counter effects map 1:1 onto
/// `KernelStats` bumps; the remaining variants carry everything the
/// flight recorder needs to emit its events in the established order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Count a successful invocation of the component.
    CountInvocation(ComponentId),
    /// Count an invocation rejected because the target was faulty.
    CountFaultedInvocation(ComponentId),
    /// Count a fault raised on the component.
    CountFault(ComponentId),
    /// Count a fault raised while recovery was already in flight.
    CountNestedFault(ComponentId),
    /// Count a micro-reboot of the component.
    CountReboot(ComponentId),
    /// Count a cold restart of the component.
    CountColdRestart(ComponentId),
    /// Count a watchdog expiry on the component.
    CountWatchdogFire(ComponentId),
    /// Count an invocation rejected because the target was degraded.
    CountDegradedRejection(ComponentId),
    /// Count an upcall dispatch.
    CountUpcall,
    /// A thread blocked inside a server (emit the `block` trace event).
    ThreadBlocked {
        /// The blocked thread.
        thread: ThreadId,
        /// Where it blocked.
        in_component: ComponentId,
    },
    /// A thread went to sleep (emit the `sleep` trace event at its home).
    ThreadSlept {
        /// The sleeping thread.
        thread: ThreadId,
        /// Its home component (trace site).
        home: ComponentId,
        /// Wake deadline.
        until: SimTime,
    },
    /// A thread became runnable (emit the `wake` trace event at `site`).
    ThreadWoken {
        /// The woken thread.
        thread: ThreadId,
        /// Where it was blocked (or its home, for sleepers).
        site: ComponentId,
    },
    /// A fault was raised: the shell manages the recovery episode
    /// (clamp/close/open) and emits `fault_injected`. Emitted before the
    /// [`Effect::FaultWoke`] wakeups it parents.
    FaultRaised {
        /// The faulted component.
        component: ComponentId,
        /// Its epoch at fault time.
        epoch: Epoch,
        /// Whether recovery was already in flight (child episode).
        nested: bool,
    },
    /// A thread was eagerly woken by the preceding [`Effect::FaultRaised`]
    /// (emit `wake` parented to the fault span).
    FaultWoke {
        /// The faulted component.
        component: ComponentId,
        /// The woken thread.
        thread: ThreadId,
    },
    /// The watchdog fired (emit the `watchdog_fired` marker).
    WatchdogFired {
        /// The hung component.
        component: ComponentId,
        /// The thread whose invocation hung.
        thread: ThreadId,
    },
    /// A component was marked degraded (emit `degraded_marked`).
    DegradedMarked {
        /// The degraded component.
        component: ComponentId,
        /// When the mark clears.
        until: SimTime,
    },
    /// A recovery mechanism fired `n` times: the shell routes this
    /// through its metrics/trace choke point (no-op when `n == 0`).
    MechanismFired {
        /// The component the mechanism acted on.
        component: ComponentId,
        /// Which mechanism.
        mech: Mechanism,
        /// Firing count.
        n: u64,
        /// The recording thread.
        thread: ThreadId,
        /// Simulated time the firing consumed (already charged).
        dur: SimTime,
    },
}

const INLINE: usize = 6;
const FILLER: Effect = Effect::CountUpcall;

/// A step's [`Reply`] plus its ordered effect list. Up to [`INLINE`]
/// effects live inline; longer lists (mass wakeups) spill to the heap.
#[derive(Debug, Clone)]
pub struct Effects {
    /// The typed immediate answer.
    pub reply: Reply,
    len: usize,
    inline: [Effect; INLINE],
    spill: Vec<Effect>,
}

impl Effects {
    /// No effects, reply [`Reply::None`].
    #[must_use]
    pub fn none() -> Self {
        Self::with_reply(Reply::None)
    }

    /// No effects, explicit reply.
    #[must_use]
    pub fn with_reply(reply: Reply) -> Self {
        Self {
            reply,
            len: 0,
            inline: [FILLER; INLINE],
            spill: Vec::new(),
        }
    }

    /// Append one effect (order is the replay contract).
    pub fn push(&mut self, e: Effect) {
        if self.len < INLINE {
            self.inline[self.len] = e;
        } else {
            self.spill.push(e);
        }
        self.len += 1;
    }

    /// Number of effects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The effects, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Effect> {
        self.inline[..self.len.min(INLINE)]
            .iter()
            .chain(self.spill.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill_preserves_order() {
        let mut fx = Effects::none();
        for i in 0..10 {
            fx.push(Effect::CountFault(ComponentId(i)));
        }
        assert_eq!(fx.len(), 10);
        let ids: Vec<u32> = fx
            .iter()
            .map(|e| match e {
                Effect::CountFault(c) => c.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_effects() {
        let fx = Effects::none();
        assert!(fx.is_empty());
        assert_eq!(fx.iter().count(), 0);
        assert_eq!(fx.reply, Reply::None);
    }
}
