//! Newtype identifiers used throughout the simulated kernel.

use std::fmt;

/// Identifier of a component (protection domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comp#{}", self.0)
    }
}

/// Identifier of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thd#{}", self.0)
    }
}

/// Identifier of a physical frame in the simulated memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// Component epoch: incremented on every micro-reboot so client stubs can
/// detect that the server lost its state since their last invocation
/// (the `CSTUB_FAULT_UPDATE` check of Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Epoch(pub u32);

impl Epoch {
    /// The next epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch#{}", self.0)
    }
}

/// Thread priority. **Lower numeric value = higher priority** (COMPOSITE
/// and fixed-priority RT convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(pub u8);

impl Priority {
    /// The highest possible priority.
    pub const HIGHEST: Priority = Priority(0);
    /// The lowest possible priority.
    pub const LOWEST: Priority = Priority(u8::MAX);

    /// True when `self` is more urgent than `other`.
    #[must_use]
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(ComponentId(1).to_string(), "comp#1");
        assert_eq!(ThreadId(2).to_string(), "thd#2");
        assert_eq!(FrameId(3).to_string(), "frame#3");
        assert_eq!(Epoch(4).to_string(), "epoch#4");
        assert_eq!(Priority(5).to_string(), "prio5");
    }

    #[test]
    fn epoch_next_increments() {
        assert_eq!(Epoch::default().next(), Epoch(1));
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::HIGHEST.is_higher_than(Priority::LOWEST));
        assert!(Priority(1).is_higher_than(Priority(2)));
        assert!(!Priority(2).is_higher_than(Priority(2)));
    }
}
