//! The in-repo property-testing engine.
//!
//! No external property-testing crate exists in the build environment,
//! so the checker is built on the repo's own deterministic
//! [`SplitMix64`] stream: [`run_check`] drives a [`Model`] through a
//! random walk — the model generates one event per step from its
//! current state (guarded generation keeps walks meaningful) and
//! applies it, checking its invariants after every step. On a
//! violation, the recorded event sequence is shrunk with a
//! delta-debugging pass (chunk removal, halving chunk sizes, then
//! single-event removal) that accepts a candidate only when replaying
//! it from a fresh model reproduces a violation of the *same*
//! invariant.
//!
//! Everything is a function of `(seed, model)`: the same seed always
//! produces the same walk, the same violation, and the same shrunk
//! counterexample, so CI failures replay locally verbatim.

use std::fmt;

use crate::rng::SplitMix64;

/// One invariant violation: which named invariant broke, and a
/// human-readable account of how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (shrinking matches on this).
    pub invariant: &'static str,
    /// What was observed vs. expected.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

/// A checkable state machine: resettable, self-generating, and
/// self-validating.
///
/// `generate` may consult the model's current state to produce only
/// *plausible* events (guarded generation); `apply` must nevertheless
/// be total, because shrinking replays arbitrary subsequences in which
/// earlier context has been deleted.
pub trait Model {
    /// The event alphabet of the walk.
    type Event: Clone + fmt::Debug;

    /// Return to the initial state (topology included).
    fn reset(&mut self);

    /// Draw the next event from the given deterministic stream.
    fn generate(&mut self, rng: &mut SplitMix64) -> Self::Event;

    /// Apply one event and check every invariant.
    ///
    /// # Errors
    /// The first violated invariant, if any.
    fn apply(&mut self, ev: &Self::Event) -> Result<(), Violation>;
}

/// Walk parameters. Everything is explicit so CI runs are replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Seed of the event stream.
    pub seed: u64,
    /// Number of random-walk steps.
    pub steps: usize,
    /// Replay budget for shrinking (each candidate subsequence costs
    /// one replay).
    pub max_shrink_iters: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            seed: 0xC3_5EED,
            steps: 10_000,
            max_shrink_iters: 2_000,
        }
    }
}

/// A shrunk failing run.
#[derive(Debug, Clone)]
pub struct Counterexample<E> {
    /// The violation the shrunk sequence reproduces.
    pub violation: Violation,
    /// The shrunk event sequence; applying these to a fresh model
    /// violates [`Counterexample::violation`] on the final event.
    pub events: Vec<E>,
    /// Length of the failing prefix before shrinking.
    pub original_len: usize,
    /// Replays spent shrinking.
    pub shrink_iterations: usize,
}

/// Result of one [`run_check`] call.
#[derive(Debug, Clone)]
pub struct CheckReport<E> {
    /// Steps actually executed (equals the configured steps unless a
    /// violation cut the walk short).
    pub steps_run: usize,
    /// The shrunk counterexample, if any invariant broke.
    pub counterexample: Option<Counterexample<E>>,
}

impl<E> CheckReport<E> {
    /// Whether the walk completed with every invariant intact.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Random-walk `model` for `cfg.steps` events, checking invariants
/// after every step; on violation, shrink and report.
pub fn run_check<M: Model>(model: &mut M, cfg: &CheckConfig) -> CheckReport<M::Event> {
    model.reset();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut events: Vec<M::Event> = Vec::new();
    for i in 0..cfg.steps {
        let ev = model.generate(&mut rng);
        events.push(ev.clone());
        if let Err(violation) = model.apply(&ev) {
            let cex = shrink(model, events, violation, cfg.max_shrink_iters);
            return CheckReport {
                steps_run: i + 1,
                counterexample: Some(cex),
            };
        }
    }
    CheckReport {
        steps_run: cfg.steps,
        counterexample: None,
    }
}

/// Replay `events` from a fresh model; accept only a violation of the
/// `invariant` being shrunk (a different invariant would mean the
/// candidate found a *different* bug — rejecting it keeps shrinking
/// convergent). Returns the violation and the index of the event that
/// triggered it.
fn replay<M: Model>(
    model: &mut M,
    events: &[M::Event],
    invariant: &str,
) -> Option<(usize, Violation)> {
    model.reset();
    for (i, ev) in events.iter().enumerate() {
        if let Err(v) = model.apply(ev) {
            return (v.invariant == invariant).then_some((i, v));
        }
    }
    None
}

fn shrink<M: Model>(
    model: &mut M,
    mut events: Vec<M::Event>,
    mut violation: Violation,
    budget: usize,
) -> Counterexample<M::Event> {
    let original_len = events.len();
    let invariant = violation.invariant;
    let mut iters = 0usize;
    let mut chunk = (events.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0usize;
        while i < events.len() && iters < budget {
            let end = (i + chunk).min(events.len());
            let mut candidate: Vec<M::Event> = Vec::with_capacity(events.len() - (end - i));
            candidate.extend_from_slice(&events[..i]);
            candidate.extend_from_slice(&events[end..]);
            iters += 1;
            if candidate.is_empty() {
                break;
            }
            if let Some((at, v)) = replay(model, &candidate, invariant) {
                candidate.truncate(at + 1);
                events = candidate;
                violation = v;
                progressed = true;
                // Retry at the same index: the next chunk slid into place.
            } else {
                i = end;
            }
        }
        if iters >= budget || (chunk == 1 && !progressed) {
            break;
        }
        if chunk > 1 {
            chunk /= 2;
        }
    }
    // Leave the model in the failing state so callers can inspect it.
    let _ = replay(model, &events, invariant);
    Counterexample {
        violation,
        events,
        original_len,
        shrink_iterations: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: events are digits 0..10; the "no-three-sevens"
    /// invariant breaks once three 7s have been applied. The minimal
    /// counterexample is exactly three 7s.
    struct Sevens {
        sevens: usize,
    }

    impl Model for Sevens {
        type Event = u64;

        fn reset(&mut self) {
            self.sevens = 0;
        }

        fn generate(&mut self, rng: &mut SplitMix64) -> u64 {
            rng.gen_range(10)
        }

        fn apply(&mut self, ev: &u64) -> Result<(), Violation> {
            if *ev == 7 {
                self.sevens += 1;
            }
            if self.sevens >= 3 {
                return Err(Violation {
                    invariant: "no-three-sevens",
                    detail: format!("saw {} sevens", self.sevens),
                });
            }
            Ok(())
        }
    }

    #[test]
    fn finds_and_shrinks_to_minimal_counterexample() {
        let mut model = Sevens { sevens: 0 };
        let report = run_check(&mut model, &CheckConfig::default());
        let cex = report.counterexample.expect("three 7s appear quickly");
        assert_eq!(cex.violation.invariant, "no-three-sevens");
        assert_eq!(cex.events, vec![7, 7, 7], "ddmin reaches the minimum");
        assert!(cex.original_len >= 3);
        // Shrunk sequence replays to the same violation.
        model.reset();
        let mut last = Ok(());
        for ev in &cex.events {
            last = model.apply(ev);
        }
        assert!(last.is_err());
    }

    #[test]
    fn clean_model_passes() {
        struct Clean;
        impl Model for Clean {
            type Event = u64;
            fn reset(&mut self) {}
            fn generate(&mut self, rng: &mut SplitMix64) -> u64 {
                rng.next_u64()
            }
            fn apply(&mut self, _ev: &u64) -> Result<(), Violation> {
                Ok(())
            }
        }
        let report = run_check(
            &mut Clean,
            &CheckConfig {
                seed: 1,
                steps: 500,
                max_shrink_iters: 100,
            },
        );
        assert!(report.passed());
        assert_eq!(report.steps_run, 500);
    }

    #[test]
    fn same_seed_same_counterexample() {
        let cfg = CheckConfig::default();
        let a = run_check(&mut Sevens { sevens: 0 }, &cfg);
        let b = run_check(&mut Sevens { sevens: 0 }, &cfg);
        assert_eq!(
            a.counterexample.unwrap().events,
            b.counterexample.unwrap().events
        );
    }
}
