//! Dynamically typed values crossing component interfaces.
//!
//! COMPOSITE invocations pass register-sized words (plus shared buffers
//! for bulk data). The simulation mirrors that with a small dynamic value
//! type: integers for ids/offsets/flags, strings for paths, and byte
//! buffers standing in for zero-copy `cbuf` references.
//!
//! The fault-tolerance runtimes clone values constantly (tracking last
//! observed arguments, replaying them at recovery), so both payload
//! variants are cheap to clone: [`SmallStr`] stores short strings (paths
//! are almost always short) inline with no heap traffic and falls back to
//! a shared `Arc<str>`, and [`Bytes`] is a shared `Arc<[u8]>` — cloning
//! either is at worst a reference-count bump. This matches the substrate:
//! a `cbuf` *is* a shared buffer reference, not a copy.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A value passed to or returned from a component invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Value {
    /// Absence of a value (a `void` return).
    #[default]
    Unit,
    /// A register-sized integer.
    Int(i64),
    /// A string (file path etc.).
    Str(SmallStr),
    /// Bulk data (stands in for a zero-copy buffer reference).
    Bytes(Bytes),
}

impl Value {
    /// Integer payload.
    ///
    /// # Errors
    ///
    /// [`TypeMismatch`] when the value is not an [`Value::Int`].
    pub fn int(&self) -> Result<i64, TypeMismatch> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(TypeMismatch {
                expected: "int",
                found: other.kind(),
            }),
        }
    }

    /// String payload.
    ///
    /// # Errors
    ///
    /// [`TypeMismatch`] when the value is not a [`Value::Str`].
    pub fn str(&self) -> Result<&str, TypeMismatch> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(TypeMismatch {
                expected: "str",
                found: other.kind(),
            }),
        }
    }

    /// Byte payload.
    ///
    /// # Errors
    ///
    /// [`TypeMismatch`] when the value is not a [`Value::Bytes`].
    pub fn bytes(&self) -> Result<&[u8], TypeMismatch> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(TypeMismatch {
                expected: "bytes",
                found: other.kind(),
            }),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v.into())
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{:?}", &**s),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

/// Longest string stored without a heap allocation. Chosen so `SmallStr`
/// is no larger than the `Arc` variant plus its niche.
const INLINE_CAP: usize = 22;

/// A string that is cheap to clone: short strings (interface names,
/// function names, file paths) live inline on the stack; longer ones
/// share an `Arc<str>` so cloning is a reference-count bump either way.
#[derive(Clone)]
pub struct SmallStr(StrRepr);

#[derive(Clone)]
enum StrRepr {
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    Heap(Arc<str>),
}

impl SmallStr {
    /// The string contents.
    #[must_use]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            StrRepr::Inline { len, buf } => {
                // Inline bytes are copied verbatim from a valid &str.
                std::str::from_utf8(&buf[..usize::from(*len)]).expect("inline bytes are UTF-8")
            }
            StrRepr::Heap(s) => s,
        }
    }
}

impl From<&str> for SmallStr {
    fn from(v: &str) -> Self {
        if v.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..v.len()].copy_from_slice(v.as_bytes());
            SmallStr(StrRepr::Inline {
                len: v.len() as u8,
                buf,
            })
        } else {
            SmallStr(StrRepr::Heap(Arc::from(v)))
        }
    }
}

impl From<String> for SmallStr {
    fn from(v: String) -> Self {
        v.as_str().into()
    }
}

impl Deref for SmallStr {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for SmallStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for SmallStr {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SmallStr {}

impl PartialEq<str> for SmallStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SmallStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shared, immutable byte buffer. Cloning bumps a reference count —
/// the simulation's stand-in for passing a `cbuf` reference rather than
/// copying bulk data across a component boundary.
#[derive(Clone, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Copy the contents out into an owned vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == **other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like the Vec<u8> this used to be, so Debug output of
        // values (goldens, traces) is unchanged.
        fmt::Debug::fmt(&self.0, f)
    }
}

/// Maximum argument count stored without a heap allocation. The widest
/// shipped interface function takes 5 arguments.
const ARG_CAP: usize = 8;

/// A small-vector argument buffer: up to [`ARG_CAP`] values live on the
/// caller's stack, so building a translated/replayed argument list on the
/// invoke path allocates nothing. This is the "per-thread scratch" of the
/// hot path — it lives in the invoking thread's stack frame, which keeps
/// it reentrancy-safe when recovery recurses through nested upcalls.
#[derive(Clone)]
pub struct ArgVec(ArgRepr);

#[derive(Clone)]
enum ArgRepr {
    Inline { len: u8, buf: [Value; ARG_CAP] },
    Heap(Vec<Value>),
}

impl ArgVec {
    /// An empty argument buffer.
    #[must_use]
    pub fn new() -> Self {
        ArgVec(ArgRepr::Inline {
            len: 0,
            buf: Default::default(),
        })
    }

    /// Append a value, spilling to the heap past [`ARG_CAP`] entries.
    pub fn push(&mut self, value: Value) {
        match &mut self.0 {
            ArgRepr::Inline { len, buf } => {
                let i = usize::from(*len);
                if i < ARG_CAP {
                    buf[i] = value;
                    *len += 1;
                } else {
                    let mut v: Vec<Value> = buf.to_vec();
                    v.push(value);
                    self.0 = ArgRepr::Heap(v);
                }
            }
            ArgRepr::Heap(v) => v.push(value),
        }
    }

    /// The arguments as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Value] {
        match &self.0 {
            ArgRepr::Inline { len, buf } => &buf[..usize::from(*len)],
            ArgRepr::Heap(v) => v,
        }
    }

    /// Copy the arguments into an owned vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Value> {
        self.as_slice().to_vec()
    }
}

impl Default for ArgVec {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for ArgVec {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl DerefMut for ArgVec {
    fn deref_mut(&mut self) -> &mut [Value] {
        match &mut self.0 {
            ArgRepr::Inline { len, buf } => &mut buf[..usize::from(*len)],
            ArgRepr::Heap(v) => v,
        }
    }
}

impl FromIterator<Value> for ArgVec {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut out = ArgVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl From<&[Value]> for ArgVec {
    fn from(vals: &[Value]) -> Self {
        vals.iter().cloned().collect()
    }
}

impl fmt::Debug for ArgVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

/// Error for a [`Value`] accessed at the wrong type — interface misuse
/// detected at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeMismatch {
    /// What the accessor wanted.
    pub expected: &'static str,
    /// What the value actually was.
    pub found: &'static str,
}

impl fmt::Display for TypeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expected a {} value, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for TypeMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_succeed_on_matching_kind() {
        assert_eq!(Value::Int(3).int().unwrap(), 3);
        assert_eq!(Value::Str("p".into()).str().unwrap(), "p");
        assert_eq!(Value::Bytes(vec![1].into()).bytes().unwrap(), &[1]);
    }

    #[test]
    fn accessors_fail_on_mismatch() {
        assert!(Value::Unit.int().is_err());
        assert!(Value::Int(1).str().is_err());
        let e = Value::Int(1).bytes().unwrap_err();
        assert_eq!(e.to_string(), "expected a bytes value, found int");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7u32), Value::Int(7));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(()), Value::Unit);
        assert_eq!(Value::from(vec![9u8]), Value::Bytes(vec![9].into()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::from("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Bytes(vec![0; 4].into()).to_string(), "<4 bytes>");
    }

    #[test]
    fn small_str_inline_and_heap_agree() {
        let short = SmallStr::from("bench-3.dat");
        let long = SmallStr::from("a-path-name-well-beyond-the-inline-capacity.dat");
        assert_eq!(short.as_str(), "bench-3.dat");
        assert_eq!(
            long.as_str(),
            "a-path-name-well-beyond-the-inline-capacity.dat"
        );
        assert_eq!(short, SmallStr::from(String::from("bench-3.dat")));
        assert_eq!(format!("{short:?}"), "\"bench-3.dat\"");
        // Boundary: exactly INLINE_CAP bytes stays inline-equal to heap.
        let edge = "x".repeat(INLINE_CAP);
        assert_eq!(SmallStr::from(edge.as_str()).as_str(), edge);
    }

    #[test]
    fn value_debug_renders_like_before() {
        assert_eq!(format!("{:?}", Value::from("p")), "Str(\"p\")");
        assert_eq!(format!("{:?}", Value::from(vec![1u8, 2])), "Bytes([1, 2])");
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let b = Bytes::from(vec![7u8; 64]);
        let c = b.clone();
        assert_eq!(&*b as *const [u8], &*c as *const [u8]);
        assert_eq!(c.to_vec(), vec![7u8; 64]);
        assert!(b == vec![7u8; 64]);
    }

    #[test]
    fn argvec_inline_then_spills() {
        let mut a = ArgVec::new();
        for i in 0..ARG_CAP as i64 {
            a.push(Value::Int(i));
        }
        assert_eq!(a.len(), ARG_CAP);
        a.push(Value::Int(99));
        assert_eq!(a.len(), ARG_CAP + 1);
        assert_eq!(a[ARG_CAP], Value::Int(99));
        a[0] = Value::Unit;
        assert_eq!(a.to_vec()[0], Value::Unit);
        let from_iter: ArgVec = (0..3).map(Value::Int).collect();
        assert_eq!(&*from_iter, &[Value::Int(0), Value::Int(1), Value::Int(2)]);
    }
}
