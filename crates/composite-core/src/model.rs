//! A property-based model of the recovery kernel.
//!
//! [`KernelWalk`] random-walks the pure core through fault injections,
//! nested recovery episodes, watchdog expiries, reboot storms, and
//! invocation traffic, and checks five recovery invariants after
//! *every* step — each recomputed independently of the transition
//! function it audits:
//!
//! 1. **no-lost-wakeups** — no thread is ever left blocked inside a
//!    faulty component (the T0 eager-wakeup guarantee).
//! 2. **bounded-episode-depth** — the in-flight recovery stack never
//!    exceeds [`MAX_MODEL_DEPTH`], matching the flight recorder's
//!    episode-nesting clamp.
//! 3. **state-effect-agreement** — σ-style shadow tables folded from
//!    the *effect stream* and the raw event sequence (faulty flags,
//!    recovery stack, degraded marks, reboot histories, predicted
//!    admission outcomes) agree exactly with the kernel state.
//! 4. **episode-latency-conservation** — virtual time advances by
//!    exactly the sum of the independently recomputed charges
//!    (invocation costs, upcall costs, micro-reboot cost plus the
//!    escalation backoff recomputed from a shadow reboot history).
//! 5. **stack-balanced-at-quiescence** — whenever no invocation is in
//!    flight, every thread's invocation stack is exactly `[home]`
//!    (descriptor-leak freedom at quiescence).
//!
//! Generation is *guarded* (events are drawn only when plausible in the
//! current state) but application is *total*: shrinking replays
//! arbitrary subsequences, so `apply` tolerates events whose context
//! was deleted.

use std::collections::{BTreeMap, VecDeque};

use crate::check::{Model, Violation};
use crate::effect::Effect;
use crate::event::{AdmitOutcome, Event, RebootOutcome, Reply};
use crate::ids::{ComponentId, Priority, ThreadId};
use crate::rng::SplitMix64;
use crate::state::{EscalationPolicy, KernelState, BOOTER};
use crate::step::step;
use crate::thread::ThreadState;
use crate::time::{CostModel, SimTime};

/// Maximum in-flight recovery depth the walk tolerates — the same bound
/// the flight recorder clamps episode nesting to.
pub const MAX_MODEL_DEPTH: usize = 8;

/// The application home component (threads live here, no service).
const APP_HOME: ComponentId = ComponentId(1);
/// The rebootable service components the walk faults and recovers.
const SERVERS: [ComponentId; 4] = [
    ComponentId(2),
    ComponentId(3),
    ComponentId(4),
    ComponentId(5),
];
/// The application threads driving invocations.
const APP_THREADS: [ThreadId; 3] = [ThreadId(1), ThreadId(2), ThreadId(3)];

/// Seeded bug shapes for the mutation-style sanity tests: each disables
/// one guarantee the invariants must then catch within a bounded
/// random-walk budget.
#[cfg(test)]
#[derive(Debug, Clone, Copy, Default)]
pub struct Bugs {
    /// Drop one eager wakeup per fault — the "untracked argument
    /// skipped during replay" shape: the effect stream records the
    /// wakeup but the state transition loses it.
    pub lost_wakeup: bool,
    /// Remove the episode-depth guard from the generator, letting
    /// recovery episodes nest without bound.
    pub unbounded_nest: bool,
}

/// The checkable kernel model. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct KernelWalk {
    /// The kernel state under test (public so harnesses can inspect the
    /// failing state after a check).
    pub state: KernelState,
    // --- shadow tables, folded independently of `step` ---
    /// Expected virtual time (invariant 4).
    expected_time: SimTime,
    /// Faulty flags folded from the effect stream (invariant 3).
    shadow_faulty: Vec<bool>,
    /// Recovery stack folded from the raw events (invariant 3).
    shadow_stack: Vec<ComponentId>,
    /// Degraded marks folded from the raw events (invariants 3, 4).
    shadow_degraded: BTreeMap<u32, SimTime>,
    /// Reboot history folded with independently recomputed escalation
    /// arithmetic (invariants 3, 4).
    shadow_hist: BTreeMap<u32, VecDeque<SimTime>>,
    /// Admitted-but-unfinished invocations (invariant 5).
    pending: Vec<(ThreadId, ComponentId)>,
    /// A degraded mark the shell would apply right after the reboot
    /// that tripped the storm policy.
    pending_mark: Option<(ComponentId, SimTime)>,
    /// Seeded bug shapes (mutation-style sanity tests only).
    #[cfg(test)]
    pub bugs: Bugs,
}

impl KernelWalk {
    /// A fresh walk over the fixed topology: booter + boot thread, one
    /// application home with three threads, four granted service
    /// components, storm escalation armed.
    #[must_use]
    pub fn new() -> Self {
        let mut w = Self {
            state: KernelState::with_costs(CostModel::paper_defaults()),
            expected_time: SimTime::ZERO,
            shadow_faulty: Vec::new(),
            shadow_stack: Vec::new(),
            shadow_degraded: BTreeMap::new(),
            shadow_hist: BTreeMap::new(),
            pending: Vec::new(),
            pending_mark: None,
            #[cfg(test)]
            bugs: Bugs::default(),
        };
        w.reset();
        w
    }

    fn apply_setup(&mut self, ev: &Event) {
        let (next, _) = step(&self.state, ev);
        self.state = next;
    }

    /// Predict the admission outcome from the shadow tables (plus the
    /// capability table and invocation stacks, which only setup events
    /// touch). Compared against the actual [`Reply`] in invariant 3.
    fn predict_admit(
        &self,
        client: ComponentId,
        thread: ThreadId,
        target: ComponentId,
        bypass_caps: bool,
    ) -> AdmitOutcome {
        if target.0 as usize >= self.state.components.len() {
            return AdmitOutcome::NoSuchComponent;
        }
        if !bypass_caps && !self.state.caps.allows(client, target) {
            return AdmitOutcome::NoCapability;
        }
        if let Some(&until) = self.shadow_degraded.get(&target.0) {
            if self.state.time < until {
                return AdmitOutcome::Degraded;
            }
            return AdmitOutcome::NeedColdRestart;
        }
        if self.shadow_faulty[target.0 as usize] {
            return AdmitOutcome::Faulty;
        }
        let Some(th) = self.state.thread(thread) else {
            return AdmitOutcome::NoSuchThread;
        };
        if th.invocation_stack.contains(&target) {
            return AdmitOutcome::Reentrant;
        }
        AdmitOutcome::Admitted
    }

    /// Recompute, on the shadow tables, the virtual-time charge and
    /// storm verdict of one micro-reboot — the same arithmetic `step`
    /// performs, folded over independently maintained history.
    fn shadow_reboot(&mut self, c: ComponentId, pre_time: SimTime) -> (SimTime, Option<SimTime>) {
        let policy = self.state.escalation;
        let mut t = pre_time + self.state.costs.micro_reboot;
        let mut mark = None;
        if policy.is_enabled() {
            if self
                .shadow_degraded
                .get(&c.0)
                .is_some_and(|&until| t >= until)
            {
                self.shadow_degraded.remove(&c.0);
                self.shadow_hist.remove(&c.0);
            }
            let window_start = t.saturating_sub(policy.reboot_window);
            let hist = self.shadow_hist.entry(c.0).or_default();
            while hist.front().is_some_and(|&t0| t0 < window_start) {
                hist.pop_front();
            }
            let prior = hist.len() as u32;
            if prior > 0 {
                t += SimTime(policy.reboot_backoff.0 << (prior - 1).min(6));
            }
            hist.push_back(t);
            if hist.len() as u32 > policy.max_reboots_in_window {
                hist.clear();
                mark = Some(t + policy.degraded_cooldown);
            }
        }
        (t, mark)
    }

    fn check_invariants(&self, ev: &Event, actual_reply: &Reply) -> Result<(), Violation> {
        // 1. no-lost-wakeups
        for th in self.state.threads.iter() {
            if let ThreadState::Blocked { in_component } = th.state {
                if self.state.is_faulty(in_component) {
                    return Err(Violation {
                        invariant: "no-lost-wakeups",
                        detail: format!(
                            "thread {:?} still blocked in faulty component {:?} after {ev:?}",
                            th.id, in_component
                        ),
                    });
                }
            }
        }
        // 2. bounded-episode-depth
        if self.state.recovery_depth() > MAX_MODEL_DEPTH {
            return Err(Violation {
                invariant: "bounded-episode-depth",
                detail: format!(
                    "recovery depth {} exceeds {MAX_MODEL_DEPTH} after {ev:?}",
                    self.state.recovery_depth()
                ),
            });
        }
        // 3. state-effect-agreement
        for (i, meta) in self.state.components.iter().enumerate() {
            let state_faulty = self.state.is_faulty(ComponentId(i as u32));
            if self.shadow_faulty[i] != state_faulty {
                return Err(Violation {
                    invariant: "state-effect-agreement",
                    detail: format!(
                        "component {i}: effect-derived faulty={} but state says {} \
                         (epoch {:?}) after {ev:?}",
                        self.shadow_faulty[i], state_faulty, meta.epoch
                    ),
                });
            }
        }
        if self.shadow_stack != *self.state.active_recoveries {
            return Err(Violation {
                invariant: "state-effect-agreement",
                detail: format!(
                    "event-derived recovery stack {:?} != state {:?} after {ev:?}",
                    self.shadow_stack, self.state.active_recoveries
                ),
            });
        }
        if self.shadow_degraded != *self.state.degraded
            || self.shadow_hist != *self.state.reboot_history
        {
            return Err(Violation {
                invariant: "state-effect-agreement",
                detail: format!(
                    "shadow degraded/history diverged from σ-tables after {ev:?}: \
                     {:?}/{:?} vs {:?}/{:?}",
                    self.shadow_degraded,
                    self.shadow_hist,
                    self.state.degraded,
                    self.state.reboot_history
                ),
            });
        }
        let _ = actual_reply;
        // 4. episode-latency-conservation
        if self.state.time != self.expected_time {
            return Err(Violation {
                invariant: "episode-latency-conservation",
                detail: format!(
                    "virtual time {:?} != independently recomputed {:?} after {ev:?}",
                    self.state.time, self.expected_time
                ),
            });
        }
        // 5. stack-balanced-at-quiescence
        if self.pending.is_empty() {
            for th in self.state.threads.iter() {
                if th.invocation_stack.as_slice() != [th.home] {
                    return Err(Violation {
                        invariant: "stack-balanced-at-quiescence",
                        detail: format!(
                            "no invocation in flight but thread {:?} holds stack {:?} \
                             after {ev:?}",
                            th.id, th.invocation_stack
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

impl Default for KernelWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl Model for KernelWalk {
    type Event = Event;

    fn reset(&mut self) {
        self.state = KernelState::with_costs(CostModel::paper_defaults());
        self.apply_setup(&Event::AddComponent { has_service: false }); // booter
        self.apply_setup(&Event::AddThread {
            home: BOOTER,
            priority: Priority::HIGHEST,
        });
        self.apply_setup(&Event::SetEscalation(EscalationPolicy::storm_defaults()));
        self.apply_setup(&Event::AddComponent { has_service: false }); // app home
        for server in SERVERS {
            self.apply_setup(&Event::AddComponent { has_service: true });
            self.apply_setup(&Event::Grant {
                client: APP_HOME,
                server,
            });
        }
        for _ in APP_THREADS {
            self.apply_setup(&Event::AddThread {
                home: APP_HOME,
                priority: Priority(5),
            });
        }
        self.expected_time = self.state.time;
        self.shadow_faulty = vec![false; self.state.components.len()];
        self.shadow_stack.clear();
        self.shadow_degraded.clear();
        self.shadow_hist.clear();
        self.pending.clear();
        self.pending_mark = None;
    }

    fn generate(&mut self, rng: &mut SplitMix64) -> Event {
        // The shell applies the storm verdict immediately after the
        // reboot's trace scope closes; the walk mirrors that ordering.
        if let Some((component, until)) = self.pending_mark.take() {
            return Event::MarkDegraded { component, until };
        }
        // Drain in-flight invocations about half the time so walks
        // regularly pass through quiescence (invariant 5 bites).
        if !self.pending.is_empty() && rng.gen_bool(1, 2) {
            let (thread, target) = self.pending[rng.gen_index(self.pending.len())];
            return Event::InvokeFinish {
                thread,
                target,
                ok: rng.gen_bool(3, 4),
            };
        }
        let server = SERVERS[rng.gen_index(SERVERS.len())];
        let thread = APP_THREADS[rng.gen_index(APP_THREADS.len())];
        let now = self.state.time;
        match rng.gen_range(100) {
            0..=14 => Event::Fault { component: server },
            15..=24 => Event::MicroReboot { component: server },
            25..=29 => Event::ColdRestart { component: server },
            30..=39 => {
                let depth_ok = self.state.recovery_depth() < MAX_MODEL_DEPTH;
                #[cfg(test)]
                let depth_ok = depth_ok || self.bugs.unbounded_nest;
                if depth_ok {
                    Event::BeginRecovery { component: server }
                } else {
                    let component = *self.state.active_recoveries.last().expect("depth > 0");
                    Event::EndRecovery { component }
                }
            }
            40..=47 => match self.state.active_recoveries.last() {
                Some(&component) => Event::EndRecovery { component },
                None => Event::Fault { component: server },
            },
            48..=51 => Event::ArmRecoveryFault { victim: server },
            52..=53 => Event::DisarmRecoveryFault,
            54..=59 => Event::WatchdogExpire {
                component: server,
                thread,
            },
            60..=71 => {
                // One invocation in flight per thread keeps generated
                // walks balanced; shrinking may still interleave.
                if self.pending.iter().any(|&(t, _)| t == thread) {
                    Event::Charge(SimTime(rng.gen_range(2_000)))
                } else {
                    Event::InvokeAdmit {
                        client: APP_HOME,
                        thread,
                        target: server,
                        bypass_caps: false,
                    }
                }
            }
            72..=79 => Event::BlockThread {
                thread,
                in_component: server,
            },
            80..=84 => Event::SleepThread {
                thread,
                until: now + SimTime(1_000 * (1 + rng.gen_range(40))),
            },
            85..=89 => Event::WakeThread { thread },
            90..=95 => Event::AdvanceTo(now + SimTime(rng.gen_range(50_000))),
            _ => Event::Charge(SimTime(rng.gen_range(5_000))),
        }
    }

    fn apply(&mut self, ev: &Event) -> Result<(), Violation> {
        // Total-application guard: blocking into a faulty component is
        // unreachable in the real system (admission rejects the invoke
        // first), so a shrunk subsequence that deletes the reboot
        // between a fault and a block skips the block instead of
        // fabricating an unreachable state.
        if let Event::BlockThread { in_component, .. } = *ev {
            if self.state.is_faulty(in_component) {
                return Ok(());
            }
        }
        let pre_time = self.state.time;

        // Independent recomputation (invariants 3 and 4) — before the
        // transition runs.
        let predicted_admit = match *ev {
            Event::InvokeAdmit {
                client,
                thread,
                target,
                bypass_caps,
            } => Some(self.predict_admit(client, thread, target, bypass_caps)),
            _ => None,
        };
        let mut predicted_mark = None;
        let expected_delta = match *ev {
            Event::Charge(d) => d,
            Event::AdvanceTo(t) => t.saturating_sub(pre_time),
            Event::ChargeUpcall { .. } => self.state.costs.upcall,
            Event::InvokeAdmit { .. } => {
                if predicted_admit == Some(AdmitOutcome::Admitted) {
                    self.state.costs.invocation
                } else {
                    SimTime::ZERO
                }
            }
            Event::MicroReboot { component } => {
                let (t, mark) = self.shadow_reboot(component, pre_time);
                predicted_mark = mark;
                t.saturating_sub(pre_time)
            }
            Event::ColdRestart { component } => {
                self.shadow_degraded.remove(&component.0);
                self.shadow_hist.remove(&component.0);
                self.state.costs.micro_reboot
            }
            _ => SimTime::ZERO,
        };
        self.expected_time += expected_delta;

        // The transition under test — the snapshotting spelling, so
        // every walk step also exercises the copy-on-write tables.
        let (next, fx) = step(&self.state, ev);
        self.state = next;

        // Fold the effect stream and raw event into the shadow tables.
        for e in fx.iter() {
            match *e {
                Effect::CountFault(c) => self.shadow_faulty[c.0 as usize] = true,
                Effect::CountReboot(c) | Effect::CountColdRestart(c) => {
                    self.shadow_faulty[c.0 as usize] = false;
                }
                _ => {}
            }
        }
        match *ev {
            Event::BeginRecovery { component } => self.shadow_stack.push(component),
            Event::EndRecovery { component } => {
                if let Some(pos) = self.shadow_stack.iter().rposition(|&c| c == component) {
                    self.shadow_stack.remove(pos);
                }
            }
            Event::MarkDegraded { component, until } => {
                self.shadow_degraded.insert(component.0, until);
            }
            Event::InvokeAdmit { thread, target, .. } => {
                let actual = fx.reply;
                if let Some(predicted) = predicted_admit {
                    if actual != Reply::Admit(predicted) {
                        return Err(Violation {
                            invariant: "state-effect-agreement",
                            detail: format!(
                                "admission of {ev:?} predicted {predicted:?} from shadow \
                                 σ-tables but the kernel replied {actual:?}"
                            ),
                        });
                    }
                }
                if actual == Reply::Admit(AdmitOutcome::Admitted) {
                    self.pending.push((thread, target));
                }
            }
            Event::InvokeFinish { thread, target, .. } | Event::InvokeAbort { thread, target } => {
                if let Some(pos) = self
                    .pending
                    .iter()
                    .position(|&(t, c)| t == thread && c == target)
                {
                    self.pending.remove(pos);
                }
            }
            Event::MicroReboot { component } => {
                if let Reply::Reboot(RebootOutcome::Done { mark_degraded }) = fx.reply {
                    if mark_degraded != predicted_mark {
                        return Err(Violation {
                            invariant: "state-effect-agreement",
                            detail: format!(
                                "reboot of {component:?} predicted storm verdict \
                                 {predicted_mark:?} but the kernel replied {mark_degraded:?}"
                            ),
                        });
                    }
                    if let Some(until) = mark_degraded {
                        self.pending_mark = Some((component, until));
                    }
                }
            }
            _ => {}
        }

        // Seeded bug shapes (mutation-style sanity tests).
        #[cfg(test)]
        if self.bugs.lost_wakeup {
            if let Event::Fault { component } = *ev {
                let first_woken = fx.iter().find_map(|e| match *e {
                    Effect::FaultWoke { thread, .. } => Some(thread),
                    _ => None,
                });
                if let Some(t) = first_woken {
                    // The effect stream says this thread woke; the buggy
                    // kernel "forgot" to apply it.
                    self.state.threads_mut()[t.0 as usize].state = ThreadState::Blocked {
                        in_component: component,
                    };
                }
            }
        }

        self.check_invariants(ev, &fx.reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{run_check, CheckConfig};

    #[test]
    fn clean_walk_holds_all_invariants() {
        let mut walk = KernelWalk::new();
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed: 0xC3_5EED,
                steps: 10_000,
                max_shrink_iters: 2_000,
            },
        );
        if let Some(cex) = &report.counterexample {
            panic!(
                "clean model violated {}: {}\nshrunk events: {:#?}",
                cex.violation.invariant, cex.violation.detail, cex.events
            );
        }
        assert_eq!(report.steps_run, 10_000);
    }

    #[test]
    fn several_seeds_hold() {
        for seed in [1u64, 2, 3, 0xDEAD_BEEF] {
            let mut walk = KernelWalk::new();
            let report = run_check(
                &mut walk,
                &CheckConfig {
                    seed,
                    steps: 2_000,
                    max_shrink_iters: 1_000,
                },
            );
            assert!(
                report.passed(),
                "seed {seed}: {:?}",
                report.counterexample.map(|c| c.violation)
            );
        }
    }

    #[test]
    fn seeded_lost_wakeup_is_caught_and_shrunk() {
        let mut walk = KernelWalk::new();
        walk.bugs.lost_wakeup = true;
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed: 0xC3_5EED,
                steps: 3_000,
                max_shrink_iters: 2_000,
            },
        );
        let cex = report
            .counterexample
            .expect("a blocked thread plus a fault appears well inside the budget");
        assert_eq!(cex.violation.invariant, "no-lost-wakeups");
        // Minimal shape: block a thread in a server, fault the server.
        assert!(
            cex.events.len() <= 4,
            "expected a near-minimal counterexample, got {:#?}",
            cex.events
        );
        assert!(
            matches!(cex.events.last(), Some(Event::Fault { .. })),
            "the violating step is the fault: {:#?}",
            cex.events
        );
        assert!(cex.events.len() < cex.original_len);
    }

    #[test]
    fn seeded_unbounded_nest_is_caught_and_shrunk() {
        let mut walk = KernelWalk::new();
        walk.bugs.unbounded_nest = true;
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed: 7,
                steps: 6_000,
                max_shrink_iters: 3_000,
            },
        );
        let cex = report
            .counterexample
            .expect("unbounded nesting crosses the depth bound inside the budget");
        assert_eq!(cex.violation.invariant, "bounded-episode-depth");
        // Minimal shape: MAX_MODEL_DEPTH + 1 un-matched BeginRecovery
        // events (shrinking deletes everything else).
        assert_eq!(cex.events.len(), MAX_MODEL_DEPTH + 1, "{:#?}", cex.events);
        assert!(cex
            .events
            .iter()
            .all(|e| matches!(e, Event::BeginRecovery { .. })));
    }
}
