//! The SuperGlue/C³ recovery mechanisms (§III of the paper), plus the
//! two channel-recovery extensions of the streaming pipeline workload.
//!
//! The enum lives in the pure core because the step function reports
//! mechanism firings as [`Effect::MechanismFired`](crate::effect::Effect)
//! data; the runtime shell (`composite::metrics`) folds those effects
//! into its σ-table counters.
//!
//! The paper's eight mechanisms (R0–U0) come first and keep their dense
//! indices; the channel extensions (DL0 dead-letter routing, CR0
//! committed-cursor replay) are appended so existing counter layouts
//! stay stable.

/// The recovery mechanisms, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mechanism {
    /// Recovery-walk replay: a σ-walk function re-executed to rebuild a
    /// descriptor.
    R0,
    /// Eager wakeup of threads blocked in the failed service.
    T0,
    /// On-demand / deferred (thread-affine) recovery completion.
    T1,
    /// Descriptor teardown: close/free drops the descriptor (and its
    /// subtree) from tracking.
    D0,
    /// Parent-first ordering: a parent descriptor recovered before its
    /// child.
    D1,
    /// Storage round trip: creator lookup or record of descriptor
    /// metadata.
    G0,
    /// Redundant data storage: descriptor payload fetched back from the
    /// storage service.
    G1,
    /// Upcall into the descriptor's creating component.
    U0,
    /// Dead-letter routing: a message that repeatedly faulted its
    /// consumer is diverted to the dead-letter queue instead of being
    /// re-delivered (showstopper escalation).
    Dl0,
    /// Committed-cursor replay: a rebooted channel endpoint re-seated at
    /// its last committed cursor (exactly-once resume).
    Cr0,
}

/// All mechanisms, in presentation order
/// (R0 T0 T1 D0 D1 G0 G1 U0 DL0 CR0).
pub const MECHANISMS: [Mechanism; 10] = [
    Mechanism::R0,
    Mechanism::T0,
    Mechanism::T1,
    Mechanism::D0,
    Mechanism::D1,
    Mechanism::G0,
    Mechanism::G1,
    Mechanism::U0,
    Mechanism::Dl0,
    Mechanism::Cr0,
];

impl Mechanism {
    /// Stable short name used in JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::R0 => "R0",
            Mechanism::T0 => "T0",
            Mechanism::T1 => "T1",
            Mechanism::D0 => "D0",
            Mechanism::D1 => "D1",
            Mechanism::G0 => "G0",
            Mechanism::G1 => "G1",
            Mechanism::U0 => "U0",
            Mechanism::Dl0 => "DL0",
            Mechanism::Cr0 => "CR0",
        }
    }

    /// Dense array index (presentation order).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, m) in MECHANISMS.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<_> = MECHANISMS.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), MECHANISMS.len());
    }
}
