//! Simulated time and the invocation cost model.
//!
//! The web-server macro-benchmark (Fig 7) and the fault-injection
//! campaign (Table II) need deterministic, laptop-fast runs, so the
//! kernel keeps a virtual clock in nanoseconds. Every component
//! invocation advances the clock by a configurable cost; the recovery
//! runtime adds further costs for micro-reboots and descriptor walks.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero (boot).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Whole nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference.
    #[must_use]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Virtual-time costs charged by the kernel and recovery runtime.
///
/// Defaults approximate the paper's hardware (§II-E: kernel invocation
/// paths around ½ μs on an i7-2760QM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of one component invocation (kernel mediation + stubs).
    pub invocation: SimTime,
    /// Extra per-invocation cost of descriptor-state tracking (the
    /// infrastructure overhead of Fig 6(a)).
    pub tracking: SimTime,
    /// Cost of the booter's `memcpy` micro-reboot of one component.
    pub micro_reboot: SimTime,
    /// Cost of replaying one interface function during a recovery walk.
    pub recovery_step: SimTime,
    /// Cost of one storage-component round trip (**G0**/**G1**).
    pub storage_round_trip: SimTime,
    /// Cost of one upcall into a client component (**U0**).
    pub upcall: SimTime,
}

impl CostModel {
    /// The paper-calibrated defaults.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            invocation: SimTime(700),
            tracking: SimTime(100),
            micro_reboot: SimTime(40_000),
            recovery_step: SimTime(1_500),
            storage_round_trip: SimTime(2_500),
            upcall: SimTime(1_200),
        }
    }

    /// A zero-cost model for logic-only tests.
    #[must_use]
    pub fn free() -> Self {
        Self {
            invocation: SimTime::ZERO,
            tracking: SimTime::ZERO,
            micro_reboot: SimTime::ZERO,
            recovery_step: SimTime::ZERO,
            storage_round_trip: SimTime::ZERO,
            upcall: SimTime::ZERO,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100);
        let b = SimTime(40);
        assert_eq!(a + b, SimTime(140));
        assert_eq!(a - b, SimTime(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime(140));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime(12).to_string(), "12ns");
        assert_eq!(SimTime(1_500).to_string(), "1.5us");
        assert_eq!(SimTime(2_500_000_000).to_string(), "2.500s");
    }

    #[test]
    fn default_cost_model_is_paper_calibrated() {
        let m = CostModel::default();
        assert_eq!(m.invocation, SimTime(700));
        assert!(m.micro_reboot > m.invocation);
    }

    #[test]
    fn free_model_is_all_zero() {
        let m = CostModel::free();
        assert_eq!(m.invocation, SimTime::ZERO);
        assert_eq!(m.micro_reboot, SimTime::ZERO);
    }
}
