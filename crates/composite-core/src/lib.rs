//! The pure state-machine core of the COMPOSITE kernel simulation.
//!
//! Everything in this crate is deterministic data-in/data-out: the
//! kernel's entire observable behavior is the fold
//!
//! ```text
//! step(KernelState, Event) -> (KernelState, Effects)
//! ```
//!
//! with **no interior mutability and no I/O** — no trace ring, no
//! metrics registry, no clocks, no randomness beyond the caller-seeded
//! [`rng::SplitMix64`]. The `composite` crate wraps this core in a thin
//! runtime shell (`composite::kernel::Kernel`) that owns the flight
//! recorder, metrics, and service objects and merely drives `step` and
//! applies the returned [`effect::Effect`]s.
//!
//! The split follows the `zos-kernel-core` idiom: the pure core is the
//! primary verification target. [`check`] implements an in-repo
//! property-testing harness (deterministic generators + shrinking) and
//! [`model`] random-walks event sequences — fault injections, nested
//! episodes, watchdog expiries, reboot storms — checking recovery
//! invariants after every step. [`state::KernelState`] is cheaply
//! snapshottable (`Arc`-shared tables, O(1) clone), which the checker
//! uses for shrinking and `sgtrace replay --to` uses for time travel.
//!
//! Purity is enforced at crate granularity: this crate has **zero
//! dependencies**, so it cannot reach the trace ring or metrics even by
//! accident, and a lint-level test (`tests/purity.rs`) bans interior
//! mutability and hidden I/O in the sources.

#![forbid(unsafe_code)]

pub mod capability;
pub mod check;
pub mod effect;
pub mod error;
pub mod event;
pub mod ids;
pub mod mechanism;
pub mod model;
pub mod pages;
pub mod rng;
pub mod state;
pub mod step;
pub mod thread;
pub mod time;
pub mod value;

pub use capability::CapTable;
pub use check::{run_check, CheckConfig, CheckReport, Counterexample, Model, Violation};
pub use effect::{Effect, Effects};
pub use error::{CallError, KernelError, ServiceError};
pub use event::{AdmitOutcome, Event, RebootOutcome, Reply, WakeOutcome};
pub use ids::{ComponentId, Epoch, FrameId, Priority, ThreadId};
pub use mechanism::{Mechanism, MECHANISMS};
pub use model::KernelWalk;
pub use pages::{PageTables, VAddr};
pub use rng::{mix, SplitMix64};
pub use state::{
    ComponentMeta, ComponentState, EscalationPolicy, KernelState, BOOTER, BOOT_THREAD,
};
pub use step::{step, step_in_place};
pub use thread::{RegisterFile, Thread, ThreadState, NUM_REGISTERS};
pub use time::{CostModel, SimTime};
pub use value::{ArgVec, Bytes, SmallStr, TypeMismatch, Value};
