//! Error types for the simulated kernel.

use std::fmt;

use crate::ids::{ComponentId, ThreadId};
use crate::value::TypeMismatch;

/// Errors a service implementation returns from its `call` entry point
/// (`composite::component::Service::call`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The invoking thread must block; the service has queued it and the
    /// kernel will suspend it. The client retries the invocation when the
    /// thread is woken (condition-variable semantics).
    WouldBlock,
    /// Invalid argument — including the post-reboot "descriptor id not
    /// found" condition that the server-side stub turns into **G0**
    /// storage-component recovery.
    InvalidArg,
    /// The descriptor/resource named by the call does not exist.
    NotFound,
    /// The operation is valid but cannot proceed (out of frames, quota…).
    Unavailable,
    /// An argument had the wrong dynamic type.
    Type(TypeMismatch),
    /// The function name is not part of this component's interface.
    NoSuchFunction(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::WouldBlock => f.write_str("invoking thread must block"),
            ServiceError::InvalidArg => f.write_str("invalid argument"),
            ServiceError::NotFound => f.write_str("no such descriptor or resource"),
            ServiceError::Unavailable => f.write_str("resource temporarily unavailable"),
            ServiceError::Type(e) => write!(f, "type error: {e}"),
            ServiceError::NoSuchFunction(name) => {
                write!(f, "no function {name:?} in this interface")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<TypeMismatch> for ServiceError {
    fn from(e: TypeMismatch) -> Self {
        ServiceError::Type(e)
    }
}

/// Errors surfaced to the *client side* of a component invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CallError {
    /// The target component is in the faulty state (or faulted during the
    /// call): the inter-component exception that activates stub recovery.
    Fault {
        /// The component that failed.
        component: ComponentId,
    },
    /// The invoking thread was suspended; retry after wakeup.
    WouldBlock,
    /// The server rejected the call.
    Service(ServiceError),
    /// The client holds no capability to invoke the target.
    NoCapability {
        /// Who attempted the call.
        client: ComponentId,
        /// The target lacking a capability.
        target: ComponentId,
    },
    /// The target component id does not exist.
    NoSuchComponent(ComponentId),
    /// The invocation re-entered a component already on this thread's
    /// invocation stack (the simulation forbids recursive re-entry).
    Reentrant(ComponentId),
    /// The target component was degraded after a reboot storm: clients
    /// fail fast until the booter's cold restart clears the mark.
    Degraded {
        /// The degraded component.
        component: ComponentId,
    },
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Fault { component } => {
                write!(f, "component {component} is faulty")
            }
            CallError::WouldBlock => f.write_str("invocation would block"),
            CallError::Service(e) => write!(f, "server error: {e}"),
            CallError::NoCapability { client, target } => {
                write!(f, "{client} holds no invocation capability for {target}")
            }
            CallError::NoSuchComponent(c) => write!(f, "no such component {c}"),
            CallError::Reentrant(c) => write!(f, "re-entrant invocation of {c}"),
            CallError::Degraded { component } => {
                write!(
                    f,
                    "component {component} is degraded (awaiting cold restart)"
                )
            }
        }
    }
}

impl std::error::Error for CallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CallError::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServiceError> for CallError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::WouldBlock => CallError::WouldBlock,
            other => CallError::Service(other),
        }
    }
}

/// Errors from kernel administration calls (component/thread management).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// Unknown component id.
    NoSuchComponent(ComponentId),
    /// Unknown thread id.
    NoSuchThread(ThreadId),
    /// The operation needs the thread to be in a different state.
    BadThreadState(ThreadId),
    /// Out of simulated physical frames.
    OutOfFrames,
    /// The virtual address is already mapped in that component.
    AlreadyMapped,
    /// The virtual address is not mapped in that component.
    NotMapped,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchComponent(c) => write!(f, "no such component {c}"),
            KernelError::NoSuchThread(t) => write!(f, "no such thread {t}"),
            KernelError::BadThreadState(t) => write!(f, "thread {t} is in the wrong state"),
            KernelError::OutOfFrames => f.write_str("out of physical frames"),
            KernelError::AlreadyMapped => f.write_str("virtual address already mapped"),
            KernelError::NotMapped => f.write_str("virtual address not mapped"),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_error_displays() {
        assert_eq!(
            ServiceError::WouldBlock.to_string(),
            "invoking thread must block"
        );
        assert!(ServiceError::NoSuchFunction("f".into())
            .to_string()
            .contains("\"f\""));
    }

    #[test]
    fn call_error_from_service_error() {
        assert_eq!(
            CallError::from(ServiceError::WouldBlock),
            CallError::WouldBlock
        );
        assert_eq!(
            CallError::from(ServiceError::InvalidArg),
            CallError::Service(ServiceError::InvalidArg)
        );
    }

    #[test]
    fn call_error_source_chain() {
        use std::error::Error as _;
        let e = CallError::Service(ServiceError::NotFound);
        assert!(e.source().is_some());
        assert!(CallError::WouldBlock.source().is_none());
    }

    #[test]
    fn kernel_error_displays() {
        assert_eq!(
            KernelError::OutOfFrames.to_string(),
            "out of physical frames"
        );
        assert!(KernelError::NoSuchThread(ThreadId(3))
            .to_string()
            .contains("thd#3"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceError>();
        assert_send_sync::<CallError>();
        assert_send_sync::<KernelError>();
    }
}
