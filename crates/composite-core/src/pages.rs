//! Simulated physical frames and per-component page tables.
//!
//! The memory manager *component* owns the mapping-tree policy; the
//! *kernel* owns the actual page tables. This mirrors COMPOSITE: when the
//! MM faults and is micro-rebooted its trees are lost, but the kernel
//! page tables survive, and the recovering MM can *reflect* on them
//! (§II-D, §II-F) while rebuilding its metadata from client stubs.

use std::collections::BTreeMap;

use crate::error::KernelError;
use crate::ids::{ComponentId, FrameId};

/// A virtual page address within a component. Page-granular: the low 12
/// bits are ignored by convention (callers pass page-aligned values).
pub type VAddr = u64;

/// Simulated physical memory + per-component page tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageTables {
    /// Next frame to hand out.
    next_frame: u32,
    /// Upper bound on frames (0 = unlimited).
    frame_limit: u32,
    /// (component, vaddr) → frame.
    maps: BTreeMap<(ComponentId, VAddr), FrameId>,
}

impl PageTables {
    /// Unlimited-frame page tables.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Page tables with a frame budget, for exhaustion tests.
    #[must_use]
    pub fn with_frame_limit(limit: u32) -> Self {
        Self {
            frame_limit: limit,
            ..Self::default()
        }
    }

    /// Allocate a fresh physical frame.
    ///
    /// # Errors
    ///
    /// [`KernelError::OutOfFrames`] when the budget is exhausted.
    pub fn alloc_frame(&mut self) -> Result<FrameId, KernelError> {
        if self.frame_limit != 0 && self.next_frame >= self.frame_limit {
            return Err(KernelError::OutOfFrames);
        }
        let f = FrameId(self.next_frame);
        self.next_frame += 1;
        Ok(f)
    }

    /// Map `vaddr` in `component` to `frame`.
    ///
    /// # Errors
    ///
    /// [`KernelError::AlreadyMapped`] when the slot is taken.
    pub fn map(
        &mut self,
        component: ComponentId,
        vaddr: VAddr,
        frame: FrameId,
    ) -> Result<(), KernelError> {
        match self.maps.entry((component, vaddr)) {
            std::collections::btree_map::Entry::Occupied(_) => Err(KernelError::AlreadyMapped),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(frame);
                Ok(())
            }
        }
    }

    /// Map `vaddr` to `frame`, succeeding silently when the identical
    /// mapping already exists — the idempotent variant recovery replay
    /// relies on (re-granting a surviving kernel mapping is a no-op).
    ///
    /// # Errors
    ///
    /// [`KernelError::AlreadyMapped`] when the slot maps a *different*
    /// frame.
    pub fn map_idempotent(
        &mut self,
        component: ComponentId,
        vaddr: VAddr,
        frame: FrameId,
    ) -> Result<(), KernelError> {
        match self.maps.get(&(component, vaddr)) {
            Some(&existing) if existing == frame => Ok(()),
            Some(_) => Err(KernelError::AlreadyMapped),
            None => self.map(component, vaddr, frame),
        }
    }

    /// Remove a mapping, returning its frame.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotMapped`] when no mapping exists.
    pub fn unmap(&mut self, component: ComponentId, vaddr: VAddr) -> Result<FrameId, KernelError> {
        self.maps
            .remove(&(component, vaddr))
            .ok_or(KernelError::NotMapped)
    }

    /// Current frame behind a mapping.
    #[must_use]
    pub fn translate(&self, component: ComponentId, vaddr: VAddr) -> Option<FrameId> {
        self.maps.get(&(component, vaddr)).copied()
    }

    /// Kernel reflection: all mappings of one component, in vaddr order.
    pub fn mappings_of(
        &self,
        component: ComponentId,
    ) -> impl Iterator<Item = (VAddr, FrameId)> + '_ {
        self.maps
            .range((component, VAddr::MIN)..=(component, VAddr::MAX))
            .map(|(&(_, v), &f)| (v, f))
    }

    /// Kernel reflection: every component mapping a given frame (aliases
    /// included), in component/vaddr order.
    pub fn mappers_of(&self, frame: FrameId) -> impl Iterator<Item = (ComponentId, VAddr)> + '_ {
        self.maps
            .iter()
            .filter(move |(_, &f)| f == frame)
            .map(|(&(c, v), _)| (c, v))
    }

    /// Total number of live mappings.
    #[must_use]
    pub fn mapping_count(&self) -> usize {
        self.maps.len()
    }

    /// Number of frames handed out so far.
    #[must_use]
    pub fn frames_allocated(&self) -> u32 {
        self.next_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ComponentId = ComponentId(1);
    const C2: ComponentId = ComponentId(2);

    #[test]
    fn alloc_map_translate_unmap() {
        let mut p = PageTables::new();
        let f = p.alloc_frame().unwrap();
        p.map(C1, 0x1000, f).unwrap();
        assert_eq!(p.translate(C1, 0x1000), Some(f));
        assert_eq!(p.unmap(C1, 0x1000).unwrap(), f);
        assert_eq!(p.translate(C1, 0x1000), None);
    }

    #[test]
    fn double_map_rejected() {
        let mut p = PageTables::new();
        let f = p.alloc_frame().unwrap();
        p.map(C1, 0x1000, f).unwrap();
        assert_eq!(p.map(C1, 0x1000, f), Err(KernelError::AlreadyMapped));
    }

    #[test]
    fn idempotent_map_allows_same_frame_only() {
        let mut p = PageTables::new();
        let f = p.alloc_frame().unwrap();
        let g = p.alloc_frame().unwrap();
        p.map_idempotent(C1, 0x1000, f).unwrap();
        p.map_idempotent(C1, 0x1000, f).unwrap();
        assert_eq!(
            p.map_idempotent(C1, 0x1000, g),
            Err(KernelError::AlreadyMapped)
        );
    }

    #[test]
    fn unmap_missing_rejected() {
        let mut p = PageTables::new();
        assert_eq!(p.unmap(C1, 0x2000), Err(KernelError::NotMapped));
    }

    #[test]
    fn frame_limit_enforced() {
        let mut p = PageTables::with_frame_limit(2);
        p.alloc_frame().unwrap();
        p.alloc_frame().unwrap();
        assert_eq!(p.alloc_frame(), Err(KernelError::OutOfFrames));
        assert_eq!(p.frames_allocated(), 2);
    }

    #[test]
    fn reflection_by_component_and_frame() {
        let mut p = PageTables::new();
        let f = p.alloc_frame().unwrap();
        p.map(C1, 0x1000, f).unwrap();
        p.map(C2, 0x8000, f).unwrap(); // alias in another component
        let g = p.alloc_frame().unwrap();
        p.map(C1, 0x2000, g).unwrap();

        assert_eq!(
            p.mappings_of(C1).collect::<Vec<_>>(),
            vec![(0x1000, f), (0x2000, g)]
        );
        assert_eq!(
            p.mappers_of(f).collect::<Vec<_>>(),
            vec![(C1, 0x1000), (C2, 0x8000)]
        );
        assert_eq!(p.mapping_count(), 3);
    }

    #[test]
    fn same_vaddr_different_components_coexist() {
        let mut p = PageTables::new();
        let f = p.alloc_frame().unwrap();
        let g = p.alloc_frame().unwrap();
        p.map(C1, 0x1000, f).unwrap();
        p.map(C2, 0x1000, g).unwrap();
        assert_eq!(p.translate(C1, 0x1000), Some(f));
        assert_eq!(p.translate(C2, 0x1000), Some(g));
    }
}
