//! Simulated threads: scheduling state, invocation stack, and the
//! register file targeted by SWIFI fault injection.

use std::fmt;

use crate::ids::{ComponentId, Priority, ThreadId};
use crate::time::SimTime;

/// Number of simulated registers per thread: six general-purpose
/// registers plus `ESP` and `EBP`, mirroring the paper's SWIFI setup
/// ("eight 32-bit registers (6 general purpose registers and 2 special
/// registers ESP and EBP)").
pub const NUM_REGISTERS: usize = 8;

/// Register names, indexable by register number.
pub const REGISTER_NAMES: [&str; NUM_REGISTERS] =
    ["EAX", "EBX", "ECX", "EDX", "ESI", "EDI", "ESP", "EBP"];

/// Index of `ESP` in a [`RegisterFile`].
pub const REG_ESP: usize = 6;
/// Index of `EBP` in a [`RegisterFile`].
pub const REG_EBP: usize = 7;

/// A thread's simulated register file.
///
/// The SWIFI crate flips bits here; the μ-programs attached to interface
/// functions read and write these registers so that corruption has
/// mechanistic consequences (bad addresses, bad values, bad counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterFile {
    regs: [u32; NUM_REGISTERS],
    /// Bitmask of registers whose current value came from a fault
    /// injection and has not been overwritten since. Cleared per-register
    /// on write; used to decide whether a flipped bit was ever *read*
    /// (activated) or died silently (undetected fault).
    tainted: u8,
}

impl RegisterFile {
    /// All-zero registers, no taint.
    #[must_use]
    pub fn new() -> Self {
        Self {
            regs: [0; NUM_REGISTERS],
            tainted: 0,
        }
    }

    /// Read a register, reporting whether its value is tainted.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_REGISTERS`.
    #[must_use]
    pub fn read(&self, idx: usize) -> (u32, bool) {
        assert!(idx < NUM_REGISTERS, "register index out of range");
        (self.regs[idx], self.tainted & (1 << idx) != 0)
    }

    /// Write a register, clearing its taint (the injected value was
    /// overwritten before being consumed — an undetected fault).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_REGISTERS`.
    pub fn write(&mut self, idx: usize, value: u32) {
        assert!(idx < NUM_REGISTERS, "register index out of range");
        self.regs[idx] = value;
        self.tainted &= !(1 << idx);
    }

    /// Flip one bit of a register and mark it tainted — the SWIFI
    /// injection primitive.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_REGISTERS` or `bit >= 32`.
    pub fn flip_bit(&mut self, idx: usize, bit: u32) {
        assert!(idx < NUM_REGISTERS, "register index out of range");
        assert!(bit < 32, "bit index out of range");
        self.regs[idx] ^= 1 << bit;
        self.tainted |= 1 << idx;
    }

    /// Whether any register is currently tainted.
    #[must_use]
    pub fn any_tainted(&self) -> bool {
        self.tainted != 0
    }

    /// Clear all taint without changing values (e.g. after classifying an
    /// injection outcome).
    pub fn clear_taint(&mut self) {
        self.tainted = 0;
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for RegisterFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, name) in REGISTER_NAMES.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{name}={:08x}", self.regs[i])?;
        }
        Ok(())
    }
}

/// Scheduling state of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Suspended inside the given server component (synchronous blocking
    /// invocation).
    Blocked {
        /// The component the thread blocked in.
        in_component: ComponentId,
    },
    /// Suspended until the given simulated time (timer block).
    SleepingUntil(SimTime),
    /// The workload finished.
    Completed,
    /// The thread was killed by an unrecoverable fault.
    Crashed,
}

impl ThreadState {
    /// True for [`ThreadState::Runnable`].
    #[must_use]
    pub fn is_runnable(&self) -> bool {
        matches!(self, ThreadState::Runnable)
    }

    /// True when the thread can never run again.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, ThreadState::Completed | ThreadState::Crashed)
    }
}

/// A simulated thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Thread {
    /// Thread id.
    pub id: ThreadId,
    /// Fixed base priority (lower value = higher priority).
    pub priority: Priority,
    /// Home component (where the thread's workload logic lives).
    pub home: ComponentId,
    /// Scheduling state.
    pub state: ThreadState,
    /// Invocation stack: the chain of components the thread has migrated
    /// through, home first. The last entry is where it currently
    /// executes.
    pub invocation_stack: Vec<ComponentId>,
    /// The simulated registers.
    pub registers: RegisterFile,
    /// Monotonically increasing count of scheduler dispatches, for
    /// round-robin tie-breaking.
    pub dispatches: u64,
}

impl Thread {
    /// Create a runnable thread homed in `home`.
    #[must_use]
    pub fn new(id: ThreadId, home: ComponentId, priority: Priority) -> Self {
        Self {
            id,
            priority,
            home,
            state: ThreadState::Runnable,
            invocation_stack: vec![home],
            registers: RegisterFile::new(),
            dispatches: 0,
        }
    }

    /// The component the thread currently executes in.
    #[must_use]
    pub fn current_component(&self) -> ComponentId {
        *self.invocation_stack.last().expect("stack never empty")
    }

    /// True when the thread is currently executing inside `c` (anywhere
    /// on its invocation stack top).
    #[must_use]
    pub fn executing_in(&self, c: ComponentId) -> bool {
        self.current_component() == c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_register_file_is_clean() {
        let r = RegisterFile::new();
        assert!(!r.any_tainted());
        assert_eq!(r.read(0), (0, false));
    }

    #[test]
    fn flip_taints_and_write_clears() {
        let mut r = RegisterFile::new();
        r.flip_bit(3, 7);
        assert_eq!(r.read(3), (1 << 7, true));
        assert!(r.any_tainted());
        r.write(3, 42);
        assert_eq!(r.read(3), (42, false));
        assert!(!r.any_tainted());
    }

    #[test]
    fn flip_is_involutive() {
        let mut r = RegisterFile::new();
        r.write(1, 0xdead_beef);
        r.flip_bit(1, 0);
        r.flip_bit(1, 0);
        assert_eq!(r.read(1).0, 0xdead_beef);
    }

    #[test]
    fn clear_taint_preserves_values() {
        let mut r = RegisterFile::new();
        r.flip_bit(REG_ESP, 31);
        let v = r.read(REG_ESP).0;
        r.clear_taint();
        assert_eq!(r.read(REG_ESP), (v, false));
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn read_out_of_range_panics() {
        let _ = RegisterFile::new().read(8);
    }

    #[test]
    fn display_names_all_registers() {
        let s = RegisterFile::new().to_string();
        for name in REGISTER_NAMES {
            assert!(s.contains(name));
        }
    }

    #[test]
    fn thread_stack_tracks_current_component() {
        let mut t = Thread::new(ThreadId(1), ComponentId(10), Priority(5));
        assert_eq!(t.current_component(), ComponentId(10));
        t.invocation_stack.push(ComponentId(20));
        assert_eq!(t.current_component(), ComponentId(20));
        assert!(t.executing_in(ComponentId(20)));
        assert!(!t.executing_in(ComponentId(10)));
    }

    #[test]
    fn thread_state_predicates() {
        assert!(ThreadState::Runnable.is_runnable());
        assert!(!ThreadState::Completed.is_runnable());
        assert!(ThreadState::Crashed.is_terminal());
        assert!(ThreadState::Completed.is_terminal());
        assert!(!ThreadState::Blocked {
            in_component: ComponentId(1)
        }
        .is_terminal());
    }
}
