//! The pure kernel transition function.
//!
//! [`step`] is total, deterministic, and side-effect-free: it consumes a
//! [`KernelState`] and an [`Event`] and produces the successor state
//! plus the [`Effects`] the runtime shell must apply (counter bumps,
//! trace events). Effect *order* mirrors the order the imperative
//! kernel performed those actions, so a shell that folds the list
//! reproduces the established traces byte for byte.
//!
//! [`step_in_place`] is the allocation-free spelling used on the hot
//! path; [`step`] is the persistent spelling the model checker and
//! `sgtrace replay` fold over (an O(1) clone per step thanks to the
//! `Arc`-shared tables).

use crate::effect::{Effect, Effects};
use crate::event::{AdmitOutcome, Event, RebootOutcome, Reply, WakeOutcome};
use crate::ids::{ComponentId, Epoch, ThreadId};
use crate::mechanism::Mechanism;
use crate::state::{ComponentMeta, ComponentState, KernelState, BOOT_THREAD};
use crate::thread::{Thread, ThreadState};
use crate::time::SimTime;

/// Apply one event to a snapshot, returning the successor state and the
/// deferred runtime effects. O(1) except for the tables the transition
/// actually touches (copy-on-write).
#[must_use]
pub fn step(state: &KernelState, ev: &Event) -> (KernelState, Effects) {
    let mut next = state.clone();
    let fx = step_in_place(&mut next, ev);
    (next, fx)
}

/// Apply one event in place. Semantically identical to [`step`]; this
/// spelling avoids the snapshot when the caller owns the state.
pub fn step_in_place(state: &mut KernelState, ev: &Event) -> Effects {
    match *ev {
        Event::AddComponent { has_service } => {
            let id = ComponentId(state.components.len() as u32);
            state.components_mut().push(ComponentMeta {
                state: ComponentState::Active,
                epoch: Epoch::default(),
                has_service,
            });
            Effects::with_reply(Reply::Component(id))
        }
        Event::AddThread { home, priority } => {
            let id = ThreadId(state.threads.len() as u32);
            state.threads_mut().push(Thread::new(id, home, priority));
            Effects::with_reply(Reply::Thread(id))
        }
        Event::Grant { client, server } => {
            state.caps_mut().grant(client, server);
            Effects::none()
        }
        Event::SetCosts(costs) => {
            state.costs = costs;
            Effects::none()
        }
        Event::SetEscalation(policy) => {
            state.escalation = policy;
            Effects::none()
        }
        Event::SetWatchdogBudget(budget) => {
            state.watchdog_budget = budget;
            Effects::none()
        }
        Event::Charge(cost) => {
            state.time += cost;
            Effects::none()
        }
        Event::AdvanceTo(t) => {
            if t > state.time {
                state.time = t;
            }
            let now = state.time;
            let mut fx = Effects::none();
            // Wake in thread-id order: the shell's trace events and
            // wakeup counts follow this order.
            if state
                .threads
                .iter()
                .any(|th| matches!(th.state, ThreadState::SleepingUntil(d) if d <= now))
            {
                for th in state.threads_mut() {
                    if let ThreadState::SleepingUntil(d) = th.state {
                        if d <= now {
                            th.state = ThreadState::Runnable;
                            fx.push(Effect::ThreadWoken {
                                thread: th.id,
                                site: th.home,
                            });
                        }
                    }
                }
            }
            fx
        }
        Event::BlockThread {
            thread,
            in_component,
        } => {
            let mut fx = Effects::none();
            // Missing threads are silently ignored (established
            // behavior of the internal block path).
            if state.thread(thread).is_some() {
                state.threads_mut()[thread.0 as usize].state =
                    ThreadState::Blocked { in_component };
                fx.push(Effect::ThreadBlocked {
                    thread,
                    in_component,
                });
            }
            fx
        }
        Event::SleepThread { thread, until } => {
            let mut fx = Effects::none();
            if let Some(th) = state.thread(thread) {
                let home = th.home;
                state.threads_mut()[thread.0 as usize].state = ThreadState::SleepingUntil(until);
                fx.push(Effect::ThreadSlept {
                    thread,
                    home,
                    until,
                });
            }
            fx
        }
        Event::WakeThread { thread } => {
            let Some(th) = state.thread(thread) else {
                return Effects::with_reply(Reply::Wake(WakeOutcome::NoSuchThread));
            };
            match th.state {
                ThreadState::Blocked { .. } | ThreadState::SleepingUntil(_) => {
                    let site = match th.state {
                        ThreadState::Blocked { in_component } => in_component,
                        _ => th.home,
                    };
                    state.threads_mut()[thread.0 as usize].state = ThreadState::Runnable;
                    let mut fx = Effects::with_reply(Reply::Wake(WakeOutcome::Woken));
                    fx.push(Effect::ThreadWoken { thread, site });
                    fx
                }
                ThreadState::Runnable => {
                    Effects::with_reply(Reply::Wake(WakeOutcome::AlreadyRunnable))
                }
                ThreadState::Completed | ThreadState::Crashed => {
                    Effects::with_reply(Reply::Wake(WakeOutcome::BadState))
                }
            }
        }
        Event::BeginRecovery { component } => {
            state.recoveries_mut().push(component);
            let mut fx = Effects::none();
            if let Some(victim) = state.armed_recovery_fault {
                // Fire only once the victim is healthy enough to fault
                // again (an already-faulty victim keeps the fault armed
                // for a later recovery action).
                if !state.is_faulty(victim) {
                    state.armed_recovery_fault = None;
                    fault_transition(state, victim, &mut fx);
                }
            }
            fx
        }
        Event::EndRecovery { component } => {
            if let Some(pos) = state
                .active_recoveries
                .iter()
                .rposition(|&x| x == component)
            {
                state.recoveries_mut().remove(pos);
            }
            Effects::none()
        }
        Event::ArmRecoveryFault { victim } => {
            state.armed_recovery_fault = Some(victim);
            Effects::none()
        }
        Event::DisarmRecoveryFault => {
            state.armed_recovery_fault = None;
            Effects::none()
        }
        Event::Fault { component } => {
            let mut fx = Effects::none();
            let woken = fault_transition(state, component, &mut fx);
            fx.reply = Reply::Woken(woken);
            fx
        }
        Event::WatchdogExpire { component, thread } => {
            let mut fx = Effects::none();
            fx.push(Effect::CountWatchdogFire(component));
            fx.push(Effect::WatchdogFired { component, thread });
            let woken = fault_transition(state, component, &mut fx);
            fx.reply = Reply::Woken(woken);
            fx
        }
        Event::InvokeAdmit {
            client,
            thread,
            target,
            bypass_caps,
        } => {
            if target.0 as usize >= state.components.len() {
                return Effects::with_reply(Reply::Admit(AdmitOutcome::NoSuchComponent));
            }
            if !bypass_caps && !state.caps.allows(client, target) {
                return Effects::with_reply(Reply::Admit(AdmitOutcome::NoCapability));
            }
            if let Some(&until) = state.degraded.get(&target.0) {
                if state.time < until {
                    // Fail fast while the degraded cooldown holds: no
                    // thread migration, just a cheap rejection.
                    let mut fx = Effects::with_reply(Reply::Admit(AdmitOutcome::Degraded));
                    fx.push(Effect::CountDegradedRejection(target));
                    return fx;
                }
                // Cooldown elapsed: the shell performs the cold restart
                // that clears the mark, then re-admits.
                return Effects::with_reply(Reply::Admit(AdmitOutcome::NeedColdRestart));
            }
            if state.components[target.0 as usize].state == ComponentState::Faulty {
                let mut fx = Effects::with_reply(Reply::Admit(AdmitOutcome::Faulty));
                fx.push(Effect::CountFaultedInvocation(target));
                return fx;
            }
            let Some(th) = state.thread(thread) else {
                return Effects::with_reply(Reply::Admit(AdmitOutcome::NoSuchThread));
            };
            if th.invocation_stack.contains(&target) {
                return Effects::with_reply(Reply::Admit(AdmitOutcome::Reentrant));
            }
            state.threads_mut()[thread.0 as usize]
                .invocation_stack
                .push(target);
            state.time += state.costs.invocation;
            Effects::with_reply(Reply::Admit(AdmitOutcome::Admitted))
        }
        Event::InvokeAbort { thread, target } => {
            pop_stack(state, thread, target);
            Effects::none()
        }
        Event::InvokeFinish { thread, target, ok } => {
            pop_stack(state, thread, target);
            let mut fx = Effects::none();
            if ok {
                fx.push(Effect::CountInvocation(target));
            }
            fx
        }
        Event::ChargeUpcall { server, thread } => {
            let dur = state.costs.upcall;
            state.time += dur;
            let mut fx = Effects::none();
            fx.push(Effect::CountUpcall);
            fx.push(Effect::MechanismFired {
                component: server,
                mech: Mechanism::U0,
                n: 1,
                thread,
                dur,
            });
            fx
        }
        Event::NoteUpcall => {
            let mut fx = Effects::none();
            fx.push(Effect::CountUpcall);
            fx
        }
        Event::MicroReboot { component } => {
            let Some(meta) = state.component(component) else {
                return Effects::with_reply(Reply::Reboot(RebootOutcome::NotAService));
            };
            if !meta.has_service {
                return Effects::with_reply(Reply::Reboot(RebootOutcome::NotAService));
            }
            {
                let m = &mut state.components_mut()[component.0 as usize];
                m.epoch = m.epoch.next();
                m.state = ComponentState::Active;
            }
            state.time += state.costs.micro_reboot;
            let mut mark_degraded = None;
            if state.escalation.is_enabled() {
                // Lazily drop an expired degraded mark (the booter's
                // cold restart supersedes it) so history restarts clean.
                if state
                    .degraded
                    .get(&component.0)
                    .is_some_and(|&until| state.time >= until)
                {
                    state.degraded_mut().remove(&component.0);
                    state.reboot_history_mut().remove(&component.0);
                }
                let window = state.escalation.reboot_window;
                let window_start = state.time.saturating_sub(window);
                let hist = state.reboot_history_mut().entry(component.0).or_default();
                while hist.front().is_some_and(|&t0| t0 < window_start) {
                    hist.pop_front();
                }
                let prior = hist.len() as u32;
                if prior > 0 {
                    // Deterministic exponential backoff from the second
                    // reboot in the window, capped at base << 6.
                    let backoff = SimTime(state.escalation.reboot_backoff.0 << (prior - 1).min(6));
                    state.time += backoff;
                }
                let now = state.time;
                let max = state.escalation.max_reboots_in_window;
                let cooldown = state.escalation.degraded_cooldown;
                let hist = state.reboot_history_mut().entry(component.0).or_default();
                hist.push_back(now);
                if hist.len() as u32 > max {
                    hist.clear();
                    mark_degraded = Some(now + cooldown);
                }
            }
            let mut fx = Effects::with_reply(Reply::Reboot(RebootOutcome::Done { mark_degraded }));
            fx.push(Effect::CountReboot(component));
            fx
        }
        Event::ColdRestart { component } => {
            let Some(meta) = state.component(component) else {
                return Effects::with_reply(Reply::Reboot(RebootOutcome::NotAService));
            };
            if !meta.has_service {
                return Effects::with_reply(Reply::Reboot(RebootOutcome::NotAService));
            }
            {
                let m = &mut state.components_mut()[component.0 as usize];
                m.epoch = m.epoch.next();
                m.state = ComponentState::Active;
            }
            state.degraded_mut().remove(&component.0);
            state.reboot_history_mut().remove(&component.0);
            state.time += state.costs.micro_reboot;
            let mut fx = Effects::with_reply(Reply::Reboot(RebootOutcome::Done {
                mark_degraded: None,
            }));
            fx.push(Effect::CountColdRestart(component));
            fx
        }
        Event::MarkDegraded { component, until } => {
            state.degraded_mut().insert(component.0, until);
            let mut fx = Effects::none();
            fx.push(Effect::DegradedMarked { component, until });
            fx
        }
    }
}

/// The fail-stop fault transition shared by [`Event::Fault`],
/// [`Event::WatchdogExpire`], and armed during-recovery faults: mark
/// the component faulty, count the fault (plus the nested-fault counter
/// when recovery is in flight), and eagerly wake every thread blocked
/// in it (**T0**). Returns the number of threads woken.
fn fault_transition(state: &mut KernelState, c: ComponentId, fx: &mut Effects) -> u64 {
    let Some(meta) = state.component(c) else {
        return 0;
    };
    let epoch = meta.epoch;
    state.components_mut()[c.0 as usize].state = ComponentState::Faulty;
    fx.push(Effect::CountFault(c));
    let nested = !state.active_recoveries.is_empty();
    if nested {
        fx.push(Effect::CountNestedFault(c));
    }
    fx.push(Effect::FaultRaised {
        component: c,
        epoch,
        nested,
    });
    let mut woken = 0u64;
    let any_blocked = state
        .threads
        .iter()
        .any(|th| th.state == ThreadState::Blocked { in_component: c });
    if any_blocked {
        for th in state.threads_mut() {
            if th.state == (ThreadState::Blocked { in_component: c }) {
                th.state = ThreadState::Runnable;
                fx.push(Effect::FaultWoke {
                    component: c,
                    thread: th.id,
                });
                woken += 1;
            }
        }
    }
    // T0: the eager release of threads blocked in the failed component
    // (§III-C). The shell's choke point no-ops when `n == 0`.
    fx.push(Effect::MechanismFired {
        component: c,
        mech: Mechanism::T0,
        n: woken,
        thread: BOOT_THREAD,
        dur: SimTime::ZERO,
    });
    woken
}

fn pop_stack(state: &mut KernelState, thread: ThreadId, target: ComponentId) {
    if let Some(th) = state.thread(thread) {
        if th.invocation_stack.last() == Some(&target) {
            state.threads_mut()[thread.0 as usize]
                .invocation_stack
                .pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Priority;
    use crate::state::{EscalationPolicy, BOOTER};
    use crate::time::CostModel;

    fn storm_policy() -> EscalationPolicy {
        EscalationPolicy {
            reboot_window: SimTime(1_000_000),
            max_reboots_in_window: 3,
            degraded_cooldown: SimTime(5_000_000),
            reboot_backoff: SimTime(10),
        }
    }

    fn base() -> KernelState {
        let mut s = KernelState::with_costs(CostModel::free());
        // booter + boot thread, one service, one client, one app thread
        let _ = step_in_place(&mut s, &Event::AddComponent { has_service: false });
        let _ = step_in_place(
            &mut s,
            &Event::AddThread {
                home: BOOTER,
                priority: Priority::HIGHEST,
            },
        );
        let _ = step_in_place(&mut s, &Event::AddComponent { has_service: false });
        let _ = step_in_place(&mut s, &Event::AddComponent { has_service: true });
        let _ = step_in_place(
            &mut s,
            &Event::Grant {
                client: ComponentId(1),
                server: ComponentId(2),
            },
        );
        let _ = step_in_place(
            &mut s,
            &Event::AddThread {
                home: ComponentId(1),
                priority: Priority(5),
            },
        );
        s
    }

    #[test]
    fn step_is_pure_against_its_input() {
        let s = base();
        let snap = s.clone();
        let (next, _) = step(
            &s,
            &Event::Fault {
                component: ComponentId(2),
            },
        );
        assert_eq!(s, snap, "step must not mutate its input");
        assert!(next.is_faulty(ComponentId(2)));
        assert!(!s.is_faulty(ComponentId(2)));
    }

    #[test]
    fn admission_charges_and_migrates() {
        let mut s = base();
        s.costs.invocation = SimTime(700);
        let fx = step_in_place(
            &mut s,
            &Event::InvokeAdmit {
                client: ComponentId(1),
                thread: ThreadId(1),
                target: ComponentId(2),
                bypass_caps: false,
            },
        );
        assert_eq!(fx.reply, Reply::Admit(AdmitOutcome::Admitted));
        assert_eq!(s.time, SimTime(700));
        assert_eq!(
            s.thread(ThreadId(1)).unwrap().invocation_stack.last(),
            Some(&ComponentId(2))
        );
        let fx = step_in_place(
            &mut s,
            &Event::InvokeFinish {
                thread: ThreadId(1),
                target: ComponentId(2),
                ok: true,
            },
        );
        assert_eq!(fx.iter().count(), 1);
        assert_eq!(
            s.thread(ThreadId(1)).unwrap().invocation_stack.last(),
            Some(&ComponentId(1))
        );
    }

    #[test]
    fn admission_rejects_in_established_order() {
        let mut s = base();
        let admit = |s: &mut KernelState, client, target| {
            step_in_place(
                s,
                &Event::InvokeAdmit {
                    client,
                    thread: ThreadId(1),
                    target,
                    bypass_caps: false,
                },
            )
            .reply
        };
        assert_eq!(
            admit(&mut s, ComponentId(1), ComponentId(9)),
            Reply::Admit(AdmitOutcome::NoSuchComponent)
        );
        assert_eq!(
            admit(&mut s, ComponentId(2), ComponentId(1)),
            Reply::Admit(AdmitOutcome::NoCapability)
        );
        let _ = step_in_place(
            &mut s,
            &Event::Fault {
                component: ComponentId(2),
            },
        );
        assert_eq!(
            admit(&mut s, ComponentId(1), ComponentId(2)),
            Reply::Admit(AdmitOutcome::Faulty)
        );
        // Reentrancy: the thread's own home is always on its stack.
        assert_eq!(
            admit(&mut s, ComponentId(1), ComponentId(1)),
            Reply::Admit(AdmitOutcome::Reentrant)
        );
    }

    #[test]
    fn fault_wakes_blocked_threads_in_order() {
        let mut s = base();
        let _ = step_in_place(
            &mut s,
            &Event::AddThread {
                home: ComponentId(1),
                priority: Priority(5),
            },
        );
        for t in [ThreadId(1), ThreadId(2)] {
            let _ = step_in_place(
                &mut s,
                &Event::BlockThread {
                    thread: t,
                    in_component: ComponentId(2),
                },
            );
        }
        let fx = step_in_place(
            &mut s,
            &Event::Fault {
                component: ComponentId(2),
            },
        );
        assert_eq!(fx.reply, Reply::Woken(2));
        let woken: Vec<ThreadId> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::FaultWoke { thread, .. } => Some(*thread),
                _ => None,
            })
            .collect();
        assert_eq!(woken, vec![ThreadId(1), ThreadId(2)]);
        assert!(s.thread(ThreadId(1)).unwrap().state.is_runnable());
    }

    #[test]
    fn nested_fault_is_counted() {
        let mut s = base();
        let _ = step_in_place(
            &mut s,
            &Event::BeginRecovery {
                component: ComponentId(2),
            },
        );
        let fx = step_in_place(
            &mut s,
            &Event::Fault {
                component: ComponentId(2),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::CountNestedFault(c) if *c == ComponentId(2))));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::FaultRaised { nested: true, .. })));
    }

    #[test]
    fn armed_fault_fires_on_begin_recovery() {
        let mut s = base();
        let _ = step_in_place(
            &mut s,
            &Event::ArmRecoveryFault {
                victim: ComponentId(2),
            },
        );
        let fx = step_in_place(
            &mut s,
            &Event::BeginRecovery {
                component: ComponentId(2),
            },
        );
        assert!(s.is_faulty(ComponentId(2)));
        assert_eq!(s.armed_recovery_fault, None);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::FaultRaised { nested: true, .. })));
    }

    #[test]
    fn reboot_storm_escalates_to_degraded() {
        let mut s = base();
        s.escalation = storm_policy();
        let mut marked = None;
        for _ in 0..4 {
            let fx = step_in_place(
                &mut s,
                &Event::MicroReboot {
                    component: ComponentId(2),
                },
            );
            if let Reply::Reboot(RebootOutcome::Done { mark_degraded }) = fx.reply {
                if mark_degraded.is_some() {
                    marked = mark_degraded;
                }
            }
        }
        let until = marked.expect("4th reboot in window trips the policy");
        let fx = step_in_place(
            &mut s,
            &Event::MarkDegraded {
                component: ComponentId(2),
                until,
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::DegradedMarked { .. })));
        assert!(s.is_degraded(ComponentId(2)));
        // Cold restart clears the mark and history.
        let _ = step_in_place(
            &mut s,
            &Event::ColdRestart {
                component: ComponentId(2),
            },
        );
        assert!(!s.is_degraded(ComponentId(2)));
        assert!(s.reboot_history.get(&2).is_none());
    }

    #[test]
    fn advance_to_wakes_due_sleepers_only() {
        let mut s = base();
        let _ = step_in_place(
            &mut s,
            &Event::SleepThread {
                thread: ThreadId(1),
                until: SimTime(1000),
            },
        );
        let fx = step_in_place(&mut s, &Event::AdvanceTo(SimTime(999)));
        assert!(fx.is_empty());
        let fx = step_in_place(&mut s, &Event::AdvanceTo(SimTime(1000)));
        assert_eq!(fx.iter().count(), 1);
        assert!(s.thread(ThreadId(1)).unwrap().state.is_runnable());
        // Never backwards.
        let _ = step_in_place(&mut s, &Event::AdvanceTo(SimTime(10)));
        assert_eq!(s.time, SimTime(1000));
    }
}
