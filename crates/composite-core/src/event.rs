//! The kernel's input alphabet.
//!
//! Every state change the runtime shell (`composite::Kernel`) performs
//! goes through exactly one [`Event`] applied by
//! [`step`](crate::step::step). Events are plain `Copy` data — no
//! strings, no boxed services — so the model checker can generate,
//! store, shrink, and replay them freely.
//!
//! The invocation path is split into admission / abort / finish events
//! because the service call itself (a `Box<dyn Service>` method) is
//! runtime-shell territory: the core decides *whether* a call may
//! proceed and accounts for its kernel-level cost; the shell runs the
//! body between [`Event::InvokeAdmit`] and [`Event::InvokeFinish`].

use crate::ids::{ComponentId, Priority, ThreadId};
use crate::state::EscalationPolicy;
use crate::time::{CostModel, SimTime};

/// One kernel transition input. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Register a component; the shell keeps the name and any service
    /// image in its own parallel tables.
    AddComponent {
        /// Whether a service image exists for it.
        has_service: bool,
    },
    /// Create a runnable thread homed in `home`.
    AddThread {
        /// Home component.
        home: ComponentId,
        /// Fixed base priority.
        priority: Priority,
    },
    /// Grant `client` the capability to invoke `server`.
    Grant {
        /// Client component.
        client: ComponentId,
        /// Server component.
        server: ComponentId,
    },
    /// Replace the cost model.
    SetCosts(CostModel),
    /// Install a reboot-storm escalation policy.
    SetEscalation(EscalationPolicy),
    /// Arm the per-invocation watchdog step budget (0 = disabled).
    SetWatchdogBudget(u64),
    /// Charge an explicit virtual-time cost.
    Charge(SimTime),
    /// Advance virtual time to `t` (never backwards), waking every
    /// sleeper whose deadline has passed.
    AdvanceTo(SimTime),
    /// Mark a thread blocked inside a server component.
    BlockThread {
        /// The blocking thread.
        thread: ThreadId,
        /// The component it blocked in.
        in_component: ComponentId,
    },
    /// Put a thread to sleep until a deadline.
    SleepThread {
        /// The sleeping thread.
        thread: ThreadId,
        /// Absolute wake deadline.
        until: SimTime,
    },
    /// Wake a blocked or sleeping thread.
    WakeThread {
        /// The thread to wake.
        thread: ThreadId,
    },
    /// Mark the start of a recovery action on a component (fires any
    /// armed during-recovery fault).
    BeginRecovery {
        /// The component under recovery.
        component: ComponentId,
    },
    /// Close the innermost recovery action on a component.
    EndRecovery {
        /// The component whose recovery action ends.
        component: ComponentId,
    },
    /// Arm a one-shot fault that fires when the next recovery begins.
    ArmRecoveryFault {
        /// The component to fault.
        victim: ComponentId,
    },
    /// Drop an armed during-recovery fault that never fired.
    DisarmRecoveryFault,
    /// Crash a component (fail-stop), eagerly waking threads blocked in
    /// it (**T0**).
    Fault {
        /// The crashing component.
        component: ComponentId,
    },
    /// Declare the in-flight invocation on a component hung and convert
    /// the hang into a detected fault.
    WatchdogExpire {
        /// The hung component.
        component: ComponentId,
        /// The thread whose invocation hung.
        thread: ThreadId,
    },
    /// Admission control + cost accounting for a synchronous invocation.
    /// On [`AdmitOutcome::Admitted`] the thread has migrated into the
    /// target and the invocation cost is charged; the shell then runs the
    /// service body and applies [`Event::InvokeFinish`].
    InvokeAdmit {
        /// The invoking client component.
        client: ComponentId,
        /// The invoking thread.
        thread: ThreadId,
        /// The target (server) component.
        target: ComponentId,
        /// Skip the capability check (booter-initiated upcalls).
        bypass_caps: bool,
    },
    /// Undo the thread migration of an admitted invocation whose body
    /// never ran (service image unavailable).
    InvokeAbort {
        /// The invoking thread.
        thread: ThreadId,
        /// The target component.
        target: ComponentId,
    },
    /// Complete an admitted invocation: migrate the thread back and, on
    /// `ok`, count the successful invocation.
    InvokeFinish {
        /// The invoking thread.
        thread: ThreadId,
        /// The target component.
        target: ComponentId,
        /// Whether the service body returned a value.
        ok: bool,
    },
    /// Charge and count a **U0** upcall dispatch on behalf of `server`.
    ChargeUpcall {
        /// The server whose descriptor is being recovered.
        server: ComponentId,
        /// The thread driving recovery.
        thread: ThreadId,
    },
    /// Count an upcall dispatch without charging (the kernel-level
    /// `upcall` entry point tallies separately from **U0** accounting).
    NoteUpcall,
    /// Booter micro-reboot: fresh image (the shell has already reset the
    /// service), epoch bump, reactivation, escalation accounting.
    MicroReboot {
        /// The component being rebooted.
        component: ComponentId,
    },
    /// Booter cold restart: like a micro-reboot but clears the degraded
    /// mark and storm history and never re-enters escalation accounting.
    ColdRestart {
        /// The component being restarted.
        component: ComponentId,
    },
    /// Mark a component degraded until the given time (applied by the
    /// shell after the reboot's trace scope closes, preserving event
    /// order).
    MarkDegraded {
        /// The degraded component.
        component: ComponentId,
        /// When the booter's cold restart clears the mark.
        until: SimTime,
    },
}

/// Outcome of an [`Event::InvokeAdmit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Thread migrated, cost charged; run the service body.
    Admitted,
    /// The target component id does not exist.
    NoSuchComponent,
    /// The client holds no capability for the target.
    NoCapability,
    /// The target is degraded: rejected fast (counted).
    Degraded,
    /// The target's degraded cooldown has elapsed: the shell must cold
    /// restart it, then re-admit. No state was changed.
    NeedColdRestart,
    /// The target is faulty (counted); surface the inter-component
    /// exception.
    Faulty,
    /// The invoking thread does not exist.
    NoSuchThread,
    /// The thread already executes in the target.
    Reentrant,
}

/// Outcome of an [`Event::WakeThread`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeOutcome {
    /// The thread was blocked or sleeping and is now runnable.
    Woken,
    /// The thread was already runnable (no-op).
    AlreadyRunnable,
    /// No such thread.
    NoSuchThread,
    /// The thread is completed or crashed.
    BadState,
}

/// Outcome of an [`Event::MicroReboot`] / [`Event::ColdRestart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebootOutcome {
    /// Rebooted. `mark_degraded` carries the escalation verdict: the
    /// shell must apply [`Event::MarkDegraded`] after closing the
    /// reboot's trace scope.
    Done {
        /// `Some(until)` when the reboot storm tripped the policy.
        mark_degraded: Option<SimTime>,
    },
    /// The component does not exist or has no service image.
    NotAService,
}

/// The immediate, typed answer of one [`step`](crate::step::step) call —
/// what the corresponding imperative kernel method used to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    /// Nothing to report.
    None,
    /// Id assigned by [`Event::AddComponent`].
    Component(ComponentId),
    /// Id assigned by [`Event::AddThread`].
    Thread(ThreadId),
    /// Threads eagerly woken by [`Event::Fault`] /
    /// [`Event::WatchdogExpire`] (**T0**).
    Woken(u64),
    /// Outcome of [`Event::WakeThread`].
    Wake(WakeOutcome),
    /// Outcome of [`Event::InvokeAdmit`].
    Admit(AdmitOutcome),
    /// Outcome of [`Event::MicroReboot`] / [`Event::ColdRestart`].
    Reboot(RebootOutcome),
}
