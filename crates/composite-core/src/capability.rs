//! Capability-based invocation access control.
//!
//! COMPOSITE mediates component invocations through capabilities held in
//! kernel tables (§II-B). The simulation keeps a per-client set of
//! invocable targets; an invocation without a matching capability is
//! rejected before reaching the server.

use std::collections::BTreeSet;

use crate::ids::ComponentId;

/// Kernel capability table: which client components may invoke which
/// server components.
///
/// The ordered grant set drives the (cold) enumeration queries; the
/// per-invocation `allows` check reads a dense per-client bitmask so the
/// hot path never walks the tree.
#[derive(Debug, Clone, Default)]
pub struct CapTable {
    grants: BTreeSet<(ComponentId, ComponentId)>,
    /// `rows[client][server / 64]` bit `server % 64` mirrors `grants`.
    rows: Vec<Vec<u64>>,
}

impl PartialEq for CapTable {
    fn eq(&self, other: &Self) -> bool {
        // The bitmask rows are a derived index of `grants`; comparing the
        // grant set alone keeps equality independent of row capacity.
        self.grants == other.grants
    }
}

impl Eq for CapTable {}

impl CapTable {
    /// Empty table (nothing may invoke anything).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Grant `client` the right to invoke `server`.
    pub fn grant(&mut self, client: ComponentId, server: ComponentId) {
        self.grants.insert((client, server));
        let (c, w) = (client.0 as usize, server.0 as usize / 64);
        if c >= self.rows.len() {
            self.rows.resize_with(c + 1, Vec::new);
        }
        let row = &mut self.rows[c];
        if w >= row.len() {
            row.resize(w + 1, 0);
        }
        row[w] |= 1 << (server.0 % 64);
    }

    /// Revoke a previously granted capability. Returns whether a grant
    /// was present.
    pub fn revoke(&mut self, client: ComponentId, server: ComponentId) -> bool {
        let had = self.grants.remove(&(client, server));
        if had {
            self.rows[client.0 as usize][server.0 as usize / 64] &= !(1 << (server.0 % 64));
        }
        had
    }

    /// Whether `client` may invoke `server`. A component may always
    /// "invoke" itself (local calls need no capability).
    #[must_use]
    #[inline]
    pub fn allows(&self, client: ComponentId, server: ComponentId) -> bool {
        client == server
            || self
                .rows
                .get(client.0 as usize)
                .and_then(|row| row.get(server.0 as usize / 64))
                .is_some_and(|w| w & (1 << (server.0 % 64)) != 0)
    }

    /// All servers `client` can invoke, in id order.
    pub fn servers_of(&self, client: ComponentId) -> impl Iterator<Item = ComponentId> + '_ {
        self.grants
            .iter()
            .filter(move |(c, _)| *c == client)
            .map(|&(_, s)| s)
    }

    /// All clients that can invoke `server`, in id order — the set the
    /// recovery runtime must notify when `server` faults.
    pub fn clients_of(&self, server: ComponentId) -> impl Iterator<Item = ComponentId> + '_ {
        self.grants
            .iter()
            .filter(move |(_, s)| *s == server)
            .map(|&(c, _)| c)
    }

    /// Number of grants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// True when no grants exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_allows_and_revoke_removes() {
        let mut t = CapTable::new();
        let (a, b) = (ComponentId(1), ComponentId(2));
        assert!(!t.allows(a, b));
        t.grant(a, b);
        assert!(t.allows(a, b));
        assert!(!t.allows(b, a));
        assert!(t.revoke(a, b));
        assert!(!t.allows(a, b));
        assert!(!t.revoke(a, b));
    }

    #[test]
    fn self_invocation_always_allowed() {
        let t = CapTable::new();
        assert!(t.allows(ComponentId(5), ComponentId(5)));
    }

    #[test]
    fn client_and_server_queries() {
        let mut t = CapTable::new();
        let (a, b, c) = (ComponentId(1), ComponentId(2), ComponentId(3));
        t.grant(a, c);
        t.grant(b, c);
        t.grant(a, b);
        assert_eq!(t.servers_of(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(t.clients_of(c).collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn duplicate_grants_are_idempotent() {
        let mut t = CapTable::new();
        t.grant(ComponentId(1), ComponentId(2));
        t.grant(ComponentId(1), ComponentId(2));
        assert_eq!(t.len(), 1);
    }
}
