//! Lint-level purity check for the pure kernel core.
//!
//! `composite-core` exists so that `step(KernelState, Event)` is a real
//! function: same inputs, same outputs, nothing else. The type system
//! enforces most of that (no `&mut self` receivers on `step`, `KernelState`
//! is plain data), but interior mutability and ambient I/O would slip
//! through unnoticed. This test scans the crate's own sources for the
//! constructs that would break the contract, so a future edit that
//! reintroduces them fails CI with a pointed message rather than a
//! subtle nondeterminism.

/// Every module of the crate, embedded at compile time so the test needs
/// no filesystem access at run time and cannot drift from what was built.
static SOURCES: &[(&str, &str)] = &[
    ("lib.rs", include_str!("../src/lib.rs")),
    ("ids.rs", include_str!("../src/ids.rs")),
    ("time.rs", include_str!("../src/time.rs")),
    ("rng.rs", include_str!("../src/rng.rs")),
    ("value.rs", include_str!("../src/value.rs")),
    ("error.rs", include_str!("../src/error.rs")),
    ("capability.rs", include_str!("../src/capability.rs")),
    ("pages.rs", include_str!("../src/pages.rs")),
    ("thread.rs", include_str!("../src/thread.rs")),
    ("mechanism.rs", include_str!("../src/mechanism.rs")),
    ("state.rs", include_str!("../src/state.rs")),
    ("event.rs", include_str!("../src/event.rs")),
    ("effect.rs", include_str!("../src/effect.rs")),
    ("step.rs", include_str!("../src/step.rs")),
    ("check.rs", include_str!("../src/check.rs")),
    ("model.rs", include_str!("../src/model.rs")),
];

/// Constructs that would let hidden state or I/O leak into `step`.
static BANNED: &[(&str, &str)] = &[
    (
        "RefCell",
        "interior mutability defeats the pure-step contract",
    ),
    (
        "UnsafeCell",
        "interior mutability defeats the pure-step contract",
    ),
    (
        "Cell<",
        "interior mutability defeats the pure-step contract",
    ),
    (
        "Mutex",
        "shared mutable state defeats the pure-step contract",
    ),
    (
        "RwLock",
        "shared mutable state defeats the pure-step contract",
    ),
    (
        "Atomic",
        "shared mutable state defeats the pure-step contract",
    ),
    (
        "static mut",
        "global mutable state defeats the pure-step contract",
    ),
    (
        "thread_local",
        "global mutable state defeats the pure-step contract",
    ),
    (
        "println!",
        "the core must not write to stdout; emit an Effect",
    ),
    (
        "eprintln!",
        "the core must not write to stderr; emit an Effect",
    ),
    (
        "std::io",
        "the core performs no I/O; the runtime shell does",
    ),
    (
        "std::fs",
        "the core performs no I/O; the runtime shell does",
    ),
    (
        "std::net",
        "the core performs no I/O; the runtime shell does",
    ),
    ("std::env", "the core reads no ambient environment"),
    (
        "SystemTime",
        "wall-clock time is nondeterministic; use SimTime",
    ),
    (
        "Instant",
        "wall-clock time is nondeterministic; use SimTime",
    ),
    (
        "std::thread",
        "the core spawns nothing; the runtime shell does",
    ),
    (
        "std::process",
        "the core spawns nothing; the runtime shell does",
    ),
];

#[test]
fn core_sources_contain_no_interior_mutability_or_io() {
    let mut offences = Vec::new();
    for (file, src) in SOURCES {
        for (needle, why) in BANNED {
            for (idx, line) in src.lines().enumerate() {
                if line.contains(needle) {
                    offences.push(format!(
                        "{file}:{}: `{needle}` — {why}\n    {}",
                        idx + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(
        offences.is_empty(),
        "impure constructs found in composite-core:\n{}",
        offences.join("\n")
    );
}

#[test]
fn core_forbids_unsafe_code() {
    let lib = SOURCES
        .iter()
        .find(|(f, _)| *f == "lib.rs")
        .map(|(_, s)| *s)
        .unwrap();
    assert!(
        lib.contains("#![forbid(unsafe_code)]"),
        "composite-core/src/lib.rs must keep `#![forbid(unsafe_code)]`"
    );
}

#[test]
fn core_has_no_dependencies() {
    // The pure core is dependency-free by construction: everything it
    // could pull in is a potential source of hidden state.
    let manifest = include_str!("../Cargo.toml");
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            panic!("composite-core must stay dependency-free, found: {line}");
        }
    }
}
