//! Pipeline harness: the streaming actor-pipeline macro-benchmark
//! (Generator → Worker → Logger over two protected bounded channels)
//! under the standard fault-every-10s SWIFI schedule, plus the
//! channel-layer injection campaign (mid-peek / pre-commit / nested)
//! and the dead-letter showstopper sub-campaign.
//!
//! Run with `cargo run -p sg-bench --release --bin pipeline`. Options:
//!
//! * `--messages N` — jobs the generator emits per run (default 6000);
//! * `--work-us N` — worker processing cost per message in virtual
//!   microseconds (default 10,000 = 10ms, making the default run ~60s
//!   of virtual time so the 10s fault schedule lands ~6 faults);
//! * `--poison-every N` — poison every Nth job (default 0 = none);
//! * `--poison-limit K` — dead-letter threshold (default 3);
//! * `--capacity N` — channel ring capacity (default 8);
//! * `--repetitions N` — repetitions per variant, differing only in
//!   fault-schedule phase (default 1);
//! * `--seed S` — experiment seed;
//! * `--injections N` — campaign injections per phase (default 12);
//! * `--showstoppers N` — showstopper campaign repetitions (default 4);
//! * `--jobs N` — worker threads over the run grid (default: available
//!   parallelism). Output is bit-identical for every value;
//! * `--json PATH` — dump the variant rows as JSON;
//! * `--metrics PATH` — per-component mechanism counters as JSON-lines;
//! * `--trace PATH` — flight-recorder JSON-lines (analyze with
//!   `sgtrace`; `PATH.chrome.json` opens in Perfetto);
//! * `--series PATH` — windowed recovery telemetry as JSON-lines for
//!   `sgstat series` / `sgstat avail`;
//! * `--series-window NS` — window width in simulated nanoseconds
//!   (default 1,000,000,000 = 1s);
//! * `--bench-json PATH` — machine-readable summary for CI artifacts.

use composite::{
    default_jobs, parallel_map_indexed, Json, MetricsSnapshot, SeriesSnapshot, SimTime,
};
use sg_bench::rustc_version;
use sg_pipeline::{
    expected_output, run_pipeline_rep, PipelineConfig, PipelineResult, PipelineVariant,
};
use sg_swifi::{run_pipeline_campaign_parallel, CampaignRow, PipelineCampaignConfig};

/// Default telemetry window: 1 virtual second.
const SERIES_WINDOW: SimTime = SimTime(1_000_000_000);

const VARIANTS: [PipelineVariant; 3] = [
    PipelineVariant::Bare { faults: false },
    PipelineVariant::SuperGlue { faults: false },
    PipelineVariant::SuperGlue { faults: true },
];

/// One output row: a variant's repetitions merged in repetition order.
struct Row {
    variant: PipelineVariant,
    delivered: u64,
    expected: u64,
    dead_letters: u64,
    cursor_restores: u64,
    faults_injected: u64,
    unrecovered: u64,
    /// Every repetition's committed output was byte-identical to the
    /// closed-form fault-free log — the exactly-once witness.
    exact: bool,
    mean_mps: f64,
    metrics: MetricsSnapshot,
    telemetry: SeriesSnapshot,
}

fn merge_reps(cfg: &PipelineConfig, reps: &[PipelineResult]) -> Row {
    let oracle = expected_output(cfg);
    let mut metrics = MetricsSnapshot::default();
    let mut telemetry = SeriesSnapshot::default();
    for r in reps {
        metrics.merge(&r.metrics);
        telemetry.merge(&r.telemetry);
    }
    Row {
        variant: reps[0].variant,
        delivered: reps.iter().map(|r| r.delivered).sum(),
        expected: cfg.expected_delivered() * reps.len() as u64,
        dead_letters: reps.iter().map(|r| r.dead_letters).sum(),
        cursor_restores: reps.iter().map(|r| r.cursor_restores).sum(),
        faults_injected: reps.iter().map(|r| r.faults_injected).sum(),
        unrecovered: reps.iter().map(|r| r.unrecovered).sum(),
        exact: reps.iter().all(|r| r.output == oracle),
        mean_mps: reps
            .iter()
            .map(|r| r.delivered as f64 / r.wall.as_secs_f64().max(1e-9))
            .sum::<f64>()
            / reps.len() as f64,
        metrics,
        telemetry,
    }
}

fn main() {
    let mut cfg = PipelineConfig {
        jobs: 6_000,
        work: SimTime::from_micros(10_000),
        ..PipelineConfig::default()
    };
    let mut repetitions: u64 = 1;
    let mut campaign = PipelineCampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut series_path: Option<String> = None;
    let mut series_window = SERIES_WINDOW;
    let mut bench_json: Option<String> = None;
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--messages" => {
                cfg.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--messages N");
            }
            "--work-us" => {
                let us: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--work-us N");
                cfg.work = SimTime::from_micros(us);
            }
            "--poison-every" => {
                cfg.poison_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--poison-every N");
            }
            "--poison-limit" => {
                cfg.poison_limit = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--poison-limit K");
                assert!(
                    (1..=3).contains(&cfg.poison_limit),
                    "--poison-limit must stay within the per-call retry budget (1..=3)"
                );
            }
            "--capacity" => {
                cfg.capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--capacity N");
            }
            "--repetitions" => {
                repetitions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repetitions N");
                assert!(repetitions > 0, "--repetitions must be positive");
            }
            "--seed" => {
                cfg.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--injections" => {
                campaign.injections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--injections N");
            }
            "--showstoppers" => {
                campaign.showstoppers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--showstoppers N");
            }
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            "--metrics" => metrics_path = Some(args.next().expect("--metrics PATH")),
            "--trace" => {
                trace_path = Some(args.next().expect("--trace PATH"));
                cfg.trace = true;
                campaign.trace = true;
            }
            "--series" => series_path = Some(args.next().expect("--series PATH")),
            "--series-window" => {
                series_window = SimTime(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--series-window NS"),
                );
            }
            "--bench-json" => bench_json = Some(args.next().expect("--bench-json PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    if series_path.is_some() {
        cfg.series_window = series_window;
        campaign.series_window_ns = series_window.0;
    }
    // The run ends when the logger has everything; the duration is a
    // hard cap sized to the stream (worker-bound) plus generous
    // recovery slack.
    cfg.duration = SimTime(cfg.work.0.saturating_mul(cfg.jobs).saturating_mul(3) + 30_000_000_000);
    campaign.seed = cfg.seed;
    campaign.pipeline.poison_limit = cfg.poison_limit;

    println!(
        "Pipeline: {} messages, work {}µs, capacity {}, fault period {}, poison every {} (K={}), {} rep(s), seed {:#x}, {jobs} jobs",
        cfg.jobs,
        cfg.work.0 / 1_000,
        cfg.capacity,
        cfg.fault_period,
        cfg.poison_every,
        cfg.poison_limit,
        repetitions,
        cfg.seed,
    );
    println!(
        "{:<30} {:>10} {:>10} {:>8} {:>6} {:>7} {:>6} {:>10} {:>6}",
        "system", "delivered", "expected", "dead-ltr", "CR0", "faults", "unrec", "msg/s", "exact"
    );

    let reps = repetitions as usize;
    let results = parallel_map_indexed(VARIANTS.len() * reps, jobs, |task| {
        run_pipeline_rep(VARIANTS[task / reps], &cfg, (task % reps) as u64)
    });
    let rows: Vec<Row> = results
        .chunks(reps)
        .map(|chunk| merge_reps(&cfg, chunk))
        .collect();

    for r in &rows {
        println!(
            "{:<30} {:>10} {:>10} {:>8} {:>6} {:>7} {:>6} {:>10.0} {:>6}",
            r.variant.to_string(),
            r.delivered,
            r.expected,
            r.dead_letters,
            r.cursor_restores,
            r.faults_injected,
            r.unrecovered,
            r.mean_mps,
            if r.exact { "yes" } else { "NO" },
        );
        if matches!(r.variant, PipelineVariant::SuperGlue { .. }) {
            assert_eq!(r.unrecovered, 0, "every injected fault must be recovered");
            assert!(
                r.exact,
                "exactly-once: committed output must equal the fault-free oracle"
            );
        }
    }

    println!();
    println!(
        "SWIFI pipeline campaign: {} injections per phase, {} showstopper rep(s)",
        campaign.injections, campaign.showstoppers
    );
    let camp = run_pipeline_campaign_parallel(&campaign, jobs);
    println!("{}", CampaignRow::table_header());
    for row in camp.phases.iter().chain([&camp.showstopper.row]) {
        println!("{}", row.table_line());
        assert_eq!(
            row.recovered, row.injected,
            "{}: every channel-layer injection must recover exactly-once",
            row.component
        );
    }
    println!("{}", camp.showstopper.summary_line());
    assert_eq!(
        camp.showstopper.reboots, camp.showstopper.reboot_cap,
        "dead-letter routing must cap the reboot count"
    );

    if let Some(path) = json_path {
        let out: Vec<Json> = rows
            .iter()
            .map(|r| {
                let mut j = Json::object();
                j.push("variant", r.variant.to_string())
                    .push("delivered", r.delivered)
                    .push("expected", r.expected)
                    .push("dead_letters", r.dead_letters)
                    .push("cursor_restores", r.cursor_restores)
                    .push("faults_injected", r.faults_injected)
                    .push("unrecovered", r.unrecovered)
                    .push("mean_mps", r.mean_mps)
                    .push("exact", r.exact);
                j
            })
            .collect();
        std::fs::write(&path, Json::Array(out).to_pretty()).expect("write json");
        println!("rows written to {path}");
    }

    if let Some(path) = metrics_path {
        let mut out = String::new();
        for r in &rows {
            out.push_str(&r.metrics.to_json_lines(&variant_label(r.variant)));
        }
        out.push_str(&camp.metrics.to_json_lines("pipeline/campaign"));
        std::fs::write(&path, out).expect("write metrics");
        println!("metrics written to {path}");
    }

    if let Some(path) = trace_path {
        let mut shards: Vec<_> = results.iter().filter_map(|r| r.trace.clone()).collect();
        shards.extend(camp.trace.iter().cloned());
        sg_bench::write_trace(&path, &shards);
    }

    if let Some(path) = series_path {
        let mut sections: Vec<(String, &SeriesSnapshot)> = rows
            .iter()
            .map(|r| (variant_label(r.variant), &r.telemetry))
            .collect();
        sections.push(("pipeline/campaign".to_owned(), &camp.series));
        sg_bench::write_series(&path, series_window.0, &sections);
    }

    if let Some(path) = bench_json {
        let mut doc = Json::object();
        doc.push("bench", "pipeline_exactly_once");
        doc.push("unit", "messages_per_second");
        doc.push("messages", cfg.jobs);
        doc.push("work_us", cfg.work.0 / 1_000);
        doc.push("poison_every", cfg.poison_every);
        doc.push("poison_limit", cfg.poison_limit);
        doc.push("repetitions", repetitions);
        doc.push("seed", cfg.seed);
        doc.push("rustc", rustc_version());
        let mut arr = Vec::new();
        for r in &rows {
            let mut o = Json::object();
            o.push("variant", r.variant.to_string());
            o.push("delivered", r.delivered);
            o.push("dead_letters", r.dead_letters);
            o.push("cursor_restores", r.cursor_restores);
            o.push("faults_injected", r.faults_injected);
            o.push("unrecovered", r.unrecovered);
            o.push("mean_mps", r.mean_mps);
            o.push("exact", r.exact);
            arr.push(o);
        }
        doc.push("rows", arr);
        let mut c = Json::object();
        for row in camp.phases.iter().chain([&camp.showstopper.row]) {
            let mut o = Json::object();
            o.push("injected", row.injected);
            o.push("recovered", row.recovered);
            o.push("nested_recovered", row.nested_recovered);
            c.push(&row.component.clone(), o);
        }
        c.push("dead_letters", camp.showstopper.dead_letters);
        c.push("reboots", camp.showstopper.reboots);
        c.push("reboot_cap", camp.showstopper.reboot_cap);
        doc.push("campaign", c);
        std::fs::write(&path, doc.to_pretty()).expect("write bench json");
        println!("bench json written to {path}");
    }
}

/// The context label a variant's metrics and series rows carry.
fn variant_label(v: PipelineVariant) -> String {
    match v {
        PipelineVariant::Bare { faults } => format!("pipeline/composite/faults={faults}"),
        PipelineVariant::SuperGlue { faults } => format!("pipeline/superglue/faults={faults}"),
    }
}
