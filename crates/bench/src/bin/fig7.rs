//! Fig 7 harness: web-server throughput for Apache, base COMPOSITE,
//! COMPOSITE+C³ and COMPOSITE+SuperGlue, without faults and (for the FT
//! variants) with one fault injected into a rotating system component
//! every 10 seconds.
//!
//! Run with `cargo run -p sg-bench --release --bin fig7`. Options:
//! `--seconds N` (default 60), `--connections N` (default 10),
//! `--json PATH`.

use composite::SimTime;
use serde::Serialize;
use sg_webserver::{run_fig7_variant, Fig7Config, WebVariant};

#[derive(Serialize)]
struct Row {
    variant: String,
    mean_rps: f64,
    stdev_rps: f64,
    total_requests: u64,
    faults_injected: u64,
    unrecovered: u64,
    slowdown_vs_base_pct: f64,
    per_second: Vec<u64>,
}

fn sparkline(buckets: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = buckets.iter().copied().max().unwrap_or(1).max(1);
    buckets
        .iter()
        .map(|&b| GLYPHS[((b * 7) / max) as usize])
        .collect()
}

fn main() {
    let mut cfg = Fig7Config::default();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seconds" => {
                let s: u64 = args.next().and_then(|v| v.parse().ok()).expect("--seconds N");
                cfg.duration = SimTime::from_secs(s);
            }
            "--connections" => {
                cfg.connections =
                    args.next().and_then(|v| v.parse().ok()).expect("--connections N");
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let variants = [
        WebVariant::Apache,
        WebVariant::Composite,
        WebVariant::C3 { faults: false },
        WebVariant::SuperGlue { faults: false },
        WebVariant::C3 { faults: true },
        WebVariant::SuperGlue { faults: true },
    ];

    println!(
        "Fig 7: web-server throughput, {} connections, {}s virtual time, fault period {}",
        cfg.connections, cfg.duration.as_secs_f64(), cfg.fault_period
    );
    println!(
        "{:<28} {:>12} {:>9} {:>10} {:>7} {:>9}",
        "system", "req/s", "stdev", "requests", "faults", "slowdown"
    );

    let mut base_rps = None;
    let mut rows = Vec::new();
    for v in variants {
        let r = run_fig7_variant(v, &cfg);
        if v == WebVariant::Composite {
            base_rps = Some(r.mean_rps);
        }
        let slowdown = base_rps
            .map(|b| (1.0 - r.mean_rps / b) * 100.0)
            .filter(|_| v != WebVariant::Apache)
            .unwrap_or(0.0);
        println!(
            "{:<28} {:>12.0} {:>9.0} {:>10} {:>7} {:>8.2}%",
            v.to_string(),
            r.mean_rps,
            r.stdev_rps,
            r.total_requests,
            r.faults_injected,
            slowdown
        );
        if r.faults_injected > 0 {
            println!("  per-second: {}", sparkline(r.series.buckets()));
            assert_eq!(r.unrecovered, 0, "every injected fault must be recovered");
        }
        rows.push(Row {
            variant: v.to_string(),
            mean_rps: r.mean_rps,
            stdev_rps: r.stdev_rps,
            total_requests: r.total_requests,
            faults_injected: r.faults_injected,
            unrecovered: r.unrecovered,
            slowdown_vs_base_pct: slowdown,
            per_second: r.series.buckets().to_vec(),
        });
    }

    println!();
    println!("paper: Apache ~17600 req/s, COMPOSITE ~16200, C3 -10.5%, SuperGlue -11.84%");
    println!("       (-13.6% with one crash injected every 10s); dips last <2s and never");
    println!("       drop throughput to zero.");

    if let Some(path) = json_path {
        std::fs::write(&path, serde_json::to_string_pretty(&rows).expect("serialize"))
            .expect("write json");
        println!("rows written to {path}");
    }
}
