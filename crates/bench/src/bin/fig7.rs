//! Fig 7 harness: web-server throughput for Apache, base COMPOSITE,
//! COMPOSITE+C³ and COMPOSITE+SuperGlue, without faults and (for the FT
//! variants) with one fault injected into a rotating system component
//! every 10 seconds.
//!
//! Run with `cargo run -p sg-bench --release --bin fig7`. Options:
//!
//! * `--seconds N` — virtual run duration (default 60);
//! * `--connections N` — concurrent connections (default 10);
//! * `--repetitions N` — repetitions per variant; repetitions differ
//!   only in the phase of the fault schedule and are averaged (default 1);
//! * `--seed S` — experiment seed for the per-repetition fault phase;
//! * `--jobs N` — worker threads over the (variant × repetition) grid
//!   (default: available parallelism). Output is bit-identical for every
//!   value of `--jobs`;
//! * `--json PATH` — additionally dump the rows as JSON;
//! * `--metrics PATH` — dump per-component recovery-mechanism counters
//!   as JSON-lines (one line per component per variant);
//! * `--trace PATH` — record a flight-recorder trace of every run:
//!   JSON-lines at PATH (analyze with `sgtrace`) plus a Chrome
//!   trace_event rendering at PATH.chrome.json (open in Perfetto).
//!   Byte-identical for every `--jobs` value;
//! * `--series PATH` — dump windowed recovery telemetry (per component,
//!   per simulated-time window) as JSON-lines for `sgstat series`.
//!   Byte-identical for every `--jobs` value;
//! * `--series-window NS` — window width in simulated nanoseconds
//!   (default 1,000,000,000 = 1s, matching the per-second throughput
//!   buckets);
//! * `--bench-json PATH` — write the throughput measurements as a JSON
//!   document (per-variant req/s mean ± stdev, request and fault
//!   totals, slowdown vs base, plus run metadata) for CI artifacts and
//!   regression diffing, mirroring `fig6 --bench-json`.

use composite::{
    default_jobs, parallel_map_indexed, Json, MetricsSnapshot, SeriesSnapshot, SimTime,
};
use sg_bench::rustc_version;
use sg_webserver::{run_fig7_rep, Fig7Config, Fig7Result, WebVariant};

/// Default telemetry window: 1 virtual second, matching the per-second
/// throughput buckets Fig 7 plots.
const FIG7_SERIES_WINDOW: SimTime = SimTime(1_000_000_000);

const VARIANTS: [WebVariant; 6] = [
    WebVariant::Apache,
    WebVariant::Composite,
    WebVariant::C3 { faults: false },
    WebVariant::SuperGlue { faults: false },
    WebVariant::C3 { faults: true },
    WebVariant::SuperGlue { faults: true },
];

/// One output row: a variant's repetitions merged.
struct Row {
    variant: WebVariant,
    mean_rps: f64,
    stdev_rps: f64,
    total_requests: u64,
    faults_injected: u64,
    unrecovered: u64,
    per_second: Vec<u64>,
    metrics: MetricsSnapshot,
    telemetry: SeriesSnapshot,
}

/// Merge a variant's repetitions in repetition order: the mean of the
/// per-rep means, the mean per-rep stdev, summed counters, and the
/// repetition-0 series (the unphased schedule Fig 7 plots).
fn merge_reps(reps: &[Fig7Result]) -> Row {
    let n = reps.len() as f64;
    let mut metrics = MetricsSnapshot::default();
    let mut telemetry = SeriesSnapshot::default();
    for r in reps {
        metrics.merge(&r.metrics);
        telemetry.merge(&r.telemetry);
    }
    Row {
        variant: reps[0].variant,
        mean_rps: reps.iter().map(|r| r.mean_rps).sum::<f64>() / n,
        stdev_rps: reps.iter().map(|r| r.stdev_rps).sum::<f64>() / n,
        total_requests: reps.iter().map(|r| r.total_requests).sum(),
        faults_injected: reps.iter().map(|r| r.faults_injected).sum(),
        unrecovered: reps.iter().map(|r| r.unrecovered).sum(),
        per_second: reps[0].series.buckets().to_vec(),
        metrics,
        telemetry,
    }
}

fn sparkline(buckets: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = buckets.iter().copied().max().unwrap_or(1).max(1);
    buckets
        .iter()
        .map(|&b| GLYPHS[((b * 7) / max) as usize])
        .collect()
}

fn main() {
    let mut cfg = Fig7Config::default();
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut series_path: Option<String> = None;
    let mut series_window = FIG7_SERIES_WINDOW;
    let mut bench_json: Option<String> = None;
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seconds" => {
                let s: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds N");
                cfg.duration = SimTime::from_secs(s);
            }
            "--connections" => {
                cfg.connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--connections N");
            }
            "--repetitions" => {
                cfg.repetitions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repetitions N");
                assert!(cfg.repetitions > 0, "--repetitions must be positive");
            }
            "--seed" => {
                cfg.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            "--metrics" => metrics_path = Some(args.next().expect("--metrics PATH")),
            "--trace" => {
                trace_path = Some(args.next().expect("--trace PATH"));
                cfg.trace = true;
            }
            "--series" => series_path = Some(args.next().expect("--series PATH")),
            "--series-window" => {
                series_window = SimTime(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--series-window NS"),
                );
            }
            "--bench-json" => bench_json = Some(args.next().expect("--bench-json PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    if series_path.is_some() {
        cfg.series_window = series_window;
    }

    println!(
        "Fig 7: web-server throughput, {} connections, {}s virtual time, fault period {}, {} rep(s), {jobs} jobs",
        cfg.connections,
        cfg.duration.as_secs_f64(),
        cfg.fault_period,
        cfg.repetitions,
    );
    println!(
        "{:<28} {:>12} {:>9} {:>10} {:>7} {:>9}",
        "system", "req/s", "stdev", "requests", "faults", "slowdown"
    );

    // Every (variant, repetition) pair is an independent deterministic
    // run; flatten the grid into one task pool and regroup in variant
    // order — bit-identical for any job count.
    let reps = cfg.repetitions as usize;
    let results = parallel_map_indexed(VARIANTS.len() * reps, jobs, |task| {
        run_fig7_rep(VARIANTS[task / reps], &cfg, (task % reps) as u64)
    });
    let rows: Vec<Row> = results.chunks(reps).map(merge_reps).collect();

    let base_rps = rows
        .iter()
        .find(|r| r.variant == WebVariant::Composite)
        .map(|r| r.mean_rps)
        .expect("Composite base runs");
    let slowdown = |r: &Row| {
        if r.variant == WebVariant::Apache {
            0.0
        } else {
            (1.0 - r.mean_rps / base_rps) * 100.0
        }
    };
    for r in &rows {
        println!(
            "{:<28} {:>12.0} {:>9.0} {:>10} {:>7} {:>8.2}%",
            r.variant.to_string(),
            r.mean_rps,
            r.stdev_rps,
            r.total_requests,
            r.faults_injected,
            slowdown(r)
        );
        if r.faults_injected > 0 {
            println!("  per-second: {}", sparkline(&r.per_second));
            assert_eq!(r.unrecovered, 0, "every injected fault must be recovered");
        }
    }

    println!();
    println!("paper: Apache ~17600 req/s, COMPOSITE ~16200, C3 -10.5%, SuperGlue -11.84%");
    println!("       (-13.6% with one crash injected every 10s); dips last <2s and never");
    println!("       drop throughput to zero.");

    if let Some(path) = json_path {
        let out: Vec<Json> = rows
            .iter()
            .map(|r| {
                let mut j = Json::object();
                j.push("variant", r.variant.to_string())
                    .push("mean_rps", r.mean_rps)
                    .push("stdev_rps", r.stdev_rps)
                    .push("total_requests", r.total_requests)
                    .push("faults_injected", r.faults_injected)
                    .push("unrecovered", r.unrecovered)
                    .push("slowdown_vs_base_pct", slowdown(r))
                    .push(
                        "per_second",
                        Json::Array(r.per_second.iter().map(|&b| Json::from(b)).collect()),
                    );
                j
            })
            .collect();
        std::fs::write(&path, Json::Array(out).to_pretty()).expect("write json");
        println!("rows written to {path}");
    }

    if let Some(path) = metrics_path {
        let mut out = String::new();
        for r in &rows {
            out.push_str(&r.metrics.to_json_lines(&variant_label(r.variant)));
        }
        std::fs::write(&path, out).expect("write metrics");
        println!("metrics written to {path}");
    }

    if let Some(path) = trace_path {
        // One shard per (variant, repetition), in task order.
        let shards: Vec<_> = results.iter().filter_map(|r| r.trace.clone()).collect();
        sg_bench::write_trace(&path, &shards);
    }

    if let Some(path) = series_path {
        let sections: Vec<(String, &SeriesSnapshot)> = rows
            .iter()
            .map(|r| (variant_label(r.variant), &r.telemetry))
            .collect();
        sg_bench::write_series(&path, series_window.0, &sections);
    }

    if let Some(path) = bench_json {
        write_bench_json(&path, &cfg, &rows, slowdown);
    }
}

/// The context label a variant's metrics and series rows carry.
fn variant_label(v: WebVariant) -> String {
    match v {
        WebVariant::Apache => "fig7/apache".to_owned(),
        WebVariant::Composite => "fig7/composite".to_owned(),
        WebVariant::C3 { faults } => format!("fig7/c3/faults={faults}"),
        WebVariant::SuperGlue { faults } => format!("fig7/superglue/faults={faults}"),
    }
}

/// The Fig 7 counterpart of `fig6 --bench-json`: per-variant throughput
/// with run metadata, for CI artifacts and regression diffing.
fn write_bench_json(path: &str, cfg: &Fig7Config, rows: &[Row], slowdown: impl Fn(&Row) -> f64) {
    let mut doc = Json::object();
    doc.push("bench", "fig7_throughput");
    doc.push("unit", "requests_per_second");
    doc.push("connections", cfg.connections as u64);
    doc.push("seconds", cfg.duration.as_secs_f64());
    doc.push("repetitions", cfg.repetitions);
    doc.push("seed", cfg.seed);
    doc.push("rustc", rustc_version());
    let mut arr = Vec::new();
    for r in rows {
        let mut o = Json::object();
        o.push("variant", r.variant.to_string());
        o.push("mean_rps", r.mean_rps);
        o.push("stdev_rps", r.stdev_rps);
        o.push("total_requests", r.total_requests);
        o.push("faults_injected", r.faults_injected);
        o.push("unrecovered", r.unrecovered);
        o.push("slowdown_vs_base_pct", slowdown(r));
        arr.push(o);
    }
    doc.push("rows", arr);
    std::fs::write(path, doc.to_pretty()).expect("write bench json");
    println!("bench json written to {path}");
}
