//! Fig 6 harness: (a) descriptor-tracking infrastructure overhead,
//! (b) per-descriptor recovery overhead, (c) lines of recovery code —
//! SuperGlue vs C³ for all six system services.
//!
//! Run with `cargo run -p sg-bench --release --bin fig6`. Wall-clock
//! numbers are means ± stdev over repeated batches (the Criterion
//! benches `fig6a_tracking`/`fig6b_recovery` are the rigorous versions).
//!
//! `--trace PATH` records one flight-recorder trace of a single
//! fault → recover cycle per (service, variant) — the Fig 6(b) recovery
//! path, causally annotated — as JSON-lines at PATH plus a Chrome
//! trace_event rendering at PATH.chrome.json.

use std::time::Instant;

use composite::{InterfaceCall as _, KernelAccess as _, TraceShard, DEFAULT_TRACE_CAPACITY};
use sg_bench::{handwritten_loc, rig, Rig, C3_STUB_SOURCES, SERVICES};
use superglue::testbed::Variant;

const BATCH: u64 = 2_000;
const REPS: usize = 7;

fn label(iface: &str) -> &'static str {
    match iface {
        "sched" => "Sched",
        "mm" => "MM",
        "fs" => "FS",
        "lock" => "Lock",
        "evt" => "Event",
        "tmr" => "Timer",
        _ => "?",
    }
}

/// Mean and stdev of a sample.
fn stats(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0).max(1.0);
    (mean, var.sqrt())
}

/// Wall-clock microseconds per workload iteration under one variant.
fn iteration_us(variant: Variant, iface: &str) -> (f64, f64) {
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut r: Rig = rig(variant);
        for seq in 0..200 {
            r.run_iteration(iface, seq);
        }
        let start = Instant::now();
        for seq in 0..BATCH {
            r.run_iteration(iface, 1_000 + seq);
        }
        let total = start.elapsed().as_secs_f64() * 1e6;
        samples.push(total / BATCH as f64);
    }
    stats(&samples)
}

/// Wall-clock microseconds to recover one descriptor (fault → reboot →
/// walk → redo), with the plain-call cost subtracted.
fn recovery_us(variant: Variant, iface: &str) -> (f64, f64) {
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let cycles = 300u32;
        let mut total_us = 0.0;
        let mut r: Rig = rig(variant);
        let (client, thread, svc, fname, args) = r.setup_recovery_victim(iface);
        for _ in 0..cycles {
            r.tb.runtime.inject_fault(svc);
            let start = Instant::now();
            r.tb.runtime
                .interface_call(client, thread, svc, fname, &args)
                .expect("recovery succeeds");
            total_us += start.elapsed().as_secs_f64() * 1e6;
        }
        let start = Instant::now();
        for _ in 0..cycles {
            r.tb.runtime
                .interface_call(client, thread, svc, fname, &args)
                .expect("plain call succeeds");
        }
        let plain_us = start.elapsed().as_secs_f64() * 1e6;
        samples.push(((total_us - plain_us) / f64::from(cycles)).max(0.0));
    }
    stats(&samples)
}

/// One traced fault → recover cycle for a service under a variant: the
/// causally-annotated version of the path [`recovery_us`] times.
fn traced_recovery_shard(variant: Variant, iface: &str) -> TraceShard {
    let vname = if variant == Variant::C3 {
        "c3"
    } else {
        "superglue"
    };
    let mut shard = TraceShard::labeled(&format!("fig6b/{iface}/{vname}"));
    let mut r: Rig = rig(variant);
    r.tb.runtime
        .kernel_mut()
        .enable_tracing(DEFAULT_TRACE_CAPACITY);
    let (client, thread, svc, fname, args) = r.setup_recovery_victim(iface);
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(client, thread, svc, fname, &args)
        .expect("recovery succeeds");
    let label = shard.label.clone();
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&label));
    shard
}

fn main() {
    let loc_only = std::env::args().any(|a| a == "--loc");
    let (emit_dir, trace_path) = {
        let mut args = std::env::args();
        let mut dir = None;
        let mut trace = None;
        while let Some(a) = args.next() {
            if a == "--emit" {
                dir = args.next();
            } else if a == "--trace" {
                trace = args.next();
            }
        }
        (dir, trace)
    };

    println!("== Fig 6(c): lines of recovery code per system service ==");
    println!(
        "{:<6} {:>12} {:>16} {:>18}",
        "Comp", "IDL LOC", "generated LOC", "hand-written C3"
    );
    let compiled = superglue::compile_all().expect("shipped IDL compiles");
    let sources: std::collections::BTreeMap<_, _> = superglue::idl_sources().into_iter().collect();
    let mut idl_total = 0usize;
    for iface in SERVICES {
        let idl = superglue_idl::idl_loc(sources[iface]);
        idl_total += idl;
        let generated = compiled.get(iface).expect("compiled").generated_loc();
        let hand = C3_STUB_SOURCES
            .iter()
            .find(|(n, _)| *n == iface)
            .map(|(_, s)| handwritten_loc(s))
            .expect("stub source");
        println!(
            "{:<6} {:>12} {:>16} {:>18}",
            label(iface),
            idl,
            generated,
            hand
        );
        if let Some(dir) = &emit_dir {
            let c = compiled.get(iface).expect("compiled");
            superglue_compiler::emit::write_to_dir(
                std::path::Path::new(dir),
                iface,
                &c.client_source,
                &c.server_source,
            )
            .expect("write generated stubs");
        }
    }
    if let Some(dir) = &emit_dir {
        println!("generated stub sources written to {dir}/");
    }
    println!(
        "average IDL file: {} LOC (paper: 37 LOC, an order of magnitude below the recovery code it replaces)",
        idl_total / SERVICES.len()
    );
    if loc_only {
        return;
    }

    println!();
    println!(
        "== Fig 6(a): infrastructure overhead with descriptor state tracking (us/iteration, wall clock) =="
    );
    println!(
        "{:<6} {:>14} {:>18} {:>18} {:>10}",
        "Comp", "base (no FT)", "C3", "SuperGlue", "SG/C3"
    );
    for iface in SERVICES {
        let (base, _) = iteration_us(Variant::Bare, iface);
        let (c3, c3_sd) = iteration_us(Variant::C3, iface);
        let (sg, sg_sd) = iteration_us(Variant::SuperGlue, iface);
        println!(
            "{:<6} {:>12.3}us {:>11.3}+-{:>4.2} {:>11.3}+-{:>4.2} {:>9.2}x",
            label(iface),
            base,
            c3,
            c3_sd,
            sg,
            sg_sd,
            (sg - base).max(0.0) / (c3 - base).max(1e-9)
        );
    }

    println!();
    println!("== Fig 6(b): per-descriptor recovery overhead (us, wall clock) ==");
    println!("{:<6} {:>18} {:>18}", "Comp", "C3", "SuperGlue");
    for iface in SERVICES {
        let (c3, c3_sd) = recovery_us(Variant::C3, iface);
        let (sg, sg_sd) = recovery_us(Variant::SuperGlue, iface);
        println!(
            "{:<6} {:>11.3}+-{:>4.2} {:>11.3}+-{:>4.2}",
            label(iface),
            c3,
            c3_sd,
            sg,
            sg_sd
        );
    }
    println!();
    println!("note: recovery cost ordering tracks the mechanism count of SIII-C");
    println!("      (Event uses R0+T0+T1+D1+G0+U0; Lock only R0+T0+T1).");

    if let Some(path) = trace_path {
        let mut shards = Vec::new();
        for iface in SERVICES {
            for variant in [Variant::C3, Variant::SuperGlue] {
                shards.push(traced_recovery_shard(variant, iface));
            }
        }
        sg_bench::write_trace(&path, &shards);
    }
}
