//! Fig 6 harness: (a) descriptor-tracking infrastructure overhead,
//! (b) per-descriptor recovery overhead, (c) lines of recovery code —
//! SuperGlue vs C³ for all six system services.
//!
//! Run with `cargo run -p sg-bench --release --bin fig6`. Wall-clock
//! numbers are means ± stdev over repeated batches (the Criterion
//! benches `fig6a_tracking`/`fig6b_recovery` are the rigorous versions).
//!
//! `--trace PATH` records one flight-recorder trace of a single
//! fault → recover cycle per (service, variant) — the Fig 6(b) recovery
//! path, causally annotated — as JSON-lines at PATH plus a Chrome
//! trace_event rendering at PATH.chrome.json.
//!
//! `--bench-json PATH` writes the Fig 6(a) measurements as a JSON
//! document (per-component base/C³/SuperGlue/SuperGlue-elided
//! µs/iteration, mean ± stdev ± min, plus run metadata) for CI
//! artifacts and regression diffing.
//! `--check-ratio X` exits nonzero if any component's SG/C³ overhead
//! ratio — fully tracked *or* elided — exceeds X: the CI bench-smoke
//! gate.
//! `--elide` interprets the certified tracking-elision stubs on the
//! Fig 6(b) recovery measurements and `--trace` shards; trace bytes
//! must be identical to a run without the flag.
//!
//! `--series PATH` dumps windowed recovery telemetry of the same
//! fault → recover cycles as JSON-lines for `sgstat series`
//! (`--series-window NS` overrides the 1ms default window).

use std::time::Instant;

use composite::json::Json;
use composite::{
    InterfaceCall as _, KernelAccess as _, SeriesSnapshot, SimTime, TraceShard,
    DEFAULT_SERIES_WINDOW, DEFAULT_TRACE_CAPACITY,
};
use sg_bench::{handwritten_loc, rig_elided, rustc_version, Rig, C3_STUB_SOURCES, SERVICES};
use superglue::testbed::Variant;

const BATCH: u64 = 10_000;
const REPS: usize = 7;

fn label(iface: &str) -> &'static str {
    match iface {
        "sched" => "Sched",
        "mm" => "MM",
        "fs" => "FS",
        "lock" => "Lock",
        "evt" => "Event",
        "tmr" => "Timer",
        _ => "?",
    }
}

/// Summary of one measurement's repetitions.
#[derive(Clone, Copy)]
struct Meas {
    mean: f64,
    stdev: f64,
    /// Minimum over repetitions — the noise-robust estimator (scheduler
    /// and allocator interference is strictly additive), used for the
    /// overhead-ratio gate so CI does not flake on a loaded runner.
    min: f64,
}

/// Mean, stdev and min of a sample.
fn stats(xs: &[f64]) -> Meas {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0).max(1.0);
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    Meas {
        mean,
        stdev: var.sqrt(),
        min,
    }
}

/// Wall-clock microseconds per workload iteration under one variant
/// (`elide` interprets the certified tracking-elision stub specs).
fn iteration_us(variant: Variant, iface: &str, elide: bool) -> Meas {
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut r: Rig = rig_elided(variant, elide);
        for seq in 0..200 {
            r.run_iteration(iface, seq);
        }
        let start = Instant::now();
        for seq in 0..BATCH {
            r.run_iteration(iface, 1_000 + seq);
        }
        let total = start.elapsed().as_secs_f64() * 1e6;
        samples.push(total / BATCH as f64);
    }
    stats(&samples)
}

/// Wall-clock microseconds to recover one descriptor (fault → reboot →
/// walk → redo), with the plain-call cost subtracted.
fn recovery_us(variant: Variant, iface: &str, elide: bool) -> Meas {
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let cycles = 300u32;
        let mut total_us = 0.0;
        let mut r: Rig = rig_elided(variant, elide);
        let (client, thread, svc, fname, args) = r.setup_recovery_victim(iface);
        for _ in 0..cycles {
            r.tb.runtime.inject_fault(svc);
            let start = Instant::now();
            r.tb.runtime
                .interface_call(client, thread, svc, fname, &args)
                .expect("recovery succeeds");
            total_us += start.elapsed().as_secs_f64() * 1e6;
        }
        let start = Instant::now();
        for _ in 0..cycles {
            r.tb.runtime
                .interface_call(client, thread, svc, fname, &args)
                .expect("plain call succeeds");
        }
        let plain_us = start.elapsed().as_secs_f64() * 1e6;
        samples.push(((total_us - plain_us) / f64::from(cycles)).max(0.0));
    }
    stats(&samples)
}

/// One traced fault → recover cycle for a service under a variant: the
/// causally-annotated version of the path [`recovery_us`] times, plus
/// its windowed telemetry when `series_window > 0`.
fn traced_recovery_capture(
    variant: Variant,
    iface: &str,
    elide: bool,
    series_window: u64,
) -> (TraceShard, SeriesSnapshot) {
    let vname = if variant == Variant::C3 {
        "c3"
    } else {
        // The shard label is deliberately elide-independent: the CI
        // differential diffs `--elide` traces byte-for-byte against
        // fully tracked ones.
        "superglue"
    };
    let mut shard = TraceShard::labeled(&format!("fig6b/{iface}/{vname}"));
    let mut r: Rig = rig_elided(variant, elide);
    r.tb.runtime
        .kernel_mut()
        .enable_tracing(DEFAULT_TRACE_CAPACITY);
    if series_window > 0 {
        r.tb.runtime
            .kernel_mut()
            .enable_telemetry(SimTime(series_window));
    }
    let (client, thread, svc, fname, args) = r.setup_recovery_victim(iface);
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(client, thread, svc, fname, &args)
        .expect("recovery succeeds");
    let series = SeriesSnapshot::from_kernel(r.tb.runtime.kernel());
    let label = shard.label.clone();
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&label));
    (shard, series)
}

/// One measured Fig 6(a) row.
struct Fig6aRow {
    iface: &'static str,
    base: Meas,
    c3: Meas,
    sg: Meas,
    /// SuperGlue interpreting the certified tracking-elision stubs.
    sg_elided: Meas,
}

impl Fig6aRow {
    /// (SG − base) / (C³ − base): relative infrastructure overhead,
    /// computed from per-variant minimums (see [`Meas::min`]).
    fn ratio(&self) -> f64 {
        (self.sg.min - self.base.min).max(0.0) / (self.c3.min - self.base.min).max(1e-9)
    }

    /// The elided-stub overhead ratio; `sm_elide` fast paths must only
    /// ever lower this relative to [`Fig6aRow::ratio`].
    fn elided_ratio(&self) -> f64 {
        (self.sg_elided.min - self.base.min).max(0.0) / (self.c3.min - self.base.min).max(1e-9)
    }
}

fn write_bench_json(path: &str, rows: &[Fig6aRow]) {
    let mut doc = Json::object();
    doc.push("bench", "fig6a_tracking");
    doc.push("unit", "us_per_iteration");
    doc.push("batch", BATCH);
    doc.push("reps", REPS);
    // The §V-B micro-workloads are seq-driven and fully deterministic;
    // the seed is recorded for schema stability, not varied.
    doc.push("seed", 0u64);
    doc.push("rustc", rustc_version());
    let mut arr = Vec::new();
    for row in rows {
        let mut o = Json::object();
        o.push("component", label(row.iface));
        o.push("interface", row.iface);
        o.push("base_us_mean", row.base.mean);
        o.push("base_us_stdev", row.base.stdev);
        o.push("base_us_min", row.base.min);
        o.push("c3_us_mean", row.c3.mean);
        o.push("c3_us_stdev", row.c3.stdev);
        o.push("c3_us_min", row.c3.min);
        o.push("superglue_us_mean", row.sg.mean);
        o.push("superglue_us_stdev", row.sg.stdev);
        o.push("superglue_us_min", row.sg.min);
        o.push("sg_over_c3_ratio", row.ratio());
        o.push("superglue_elided_us_mean", row.sg_elided.mean);
        o.push("superglue_elided_us_stdev", row.sg_elided.stdev);
        o.push("superglue_elided_us_min", row.sg_elided.min);
        o.push("sg_elided_over_c3_ratio", row.elided_ratio());
        arr.push(o);
    }
    doc.push("rows", arr);
    std::fs::write(path, doc.to_pretty()).expect("write bench json");
    println!("bench json written to {path}");
}

fn main() {
    let loc_only = std::env::args().any(|a| a == "--loc");
    // --elide interprets the certified tracking-elision stubs on the
    // Fig 6(b) recovery path and traces; the trace bytes must be
    // identical to a run without the flag.
    let elide = std::env::args().any(|a| a == "--elide");
    let (emit_dir, trace_path, bench_json, check_ratio, series_path, series_window) = {
        let mut args = std::env::args();
        let mut dir = None;
        let mut trace = None;
        let mut bench = None;
        let mut check = None;
        let mut series = None;
        let mut window = DEFAULT_SERIES_WINDOW.0;
        while let Some(a) = args.next() {
            if a == "--emit" {
                dir = args.next();
            } else if a == "--trace" {
                trace = args.next();
            } else if a == "--bench-json" {
                bench = args.next();
            } else if a == "--check-ratio" {
                check = args.next().and_then(|v| v.parse::<f64>().ok());
            } else if a == "--series" {
                series = args.next();
            } else if a == "--series-window" {
                window = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--series-window NS");
            }
        }
        (dir, trace, bench, check, series, window)
    };

    println!("== Fig 6(c): lines of recovery code per system service ==");
    println!(
        "{:<6} {:>12} {:>16} {:>18}",
        "Comp", "IDL LOC", "generated LOC", "hand-written C3"
    );
    let compiled = superglue::compile_all().expect("shipped IDL compiles");
    let sources: std::collections::BTreeMap<_, _> = superglue::idl_sources().into_iter().collect();
    let mut idl_total = 0usize;
    for iface in SERVICES {
        let idl = superglue_idl::idl_loc(sources[iface]);
        idl_total += idl;
        let generated = compiled.get(iface).expect("compiled").generated_loc();
        let hand = C3_STUB_SOURCES
            .iter()
            .find(|(n, _)| *n == iface)
            .map(|(_, s)| handwritten_loc(s))
            .expect("stub source");
        println!(
            "{:<6} {:>12} {:>16} {:>18}",
            label(iface),
            idl,
            generated,
            hand
        );
        if let Some(dir) = &emit_dir {
            let c = compiled.get(iface).expect("compiled");
            superglue_compiler::emit::write_to_dir(
                std::path::Path::new(dir),
                iface,
                &c.client_source,
                &c.server_source,
            )
            .expect("write generated stubs");
        }
    }
    if let Some(dir) = &emit_dir {
        println!("generated stub sources written to {dir}/");
    }
    println!(
        "average IDL file: {} LOC (paper: 37 LOC, an order of magnitude below the recovery code it replaces)",
        idl_total / SERVICES.len()
    );
    if loc_only {
        return;
    }

    println!();
    println!(
        "== Fig 6(a): infrastructure overhead with descriptor state tracking (us/iteration, wall clock) =="
    );
    println!(
        "{:<6} {:>14} {:>18} {:>18} {:>18} {:>10} {:>10}",
        "Comp", "base (no FT)", "C3", "SuperGlue", "SG-elided", "SG/C3", "SGe/C3"
    );
    let mut rows = Vec::with_capacity(SERVICES.len());
    for iface in SERVICES {
        let row = Fig6aRow {
            iface,
            base: iteration_us(Variant::Bare, iface, false),
            c3: iteration_us(Variant::C3, iface, false),
            sg: iteration_us(Variant::SuperGlue, iface, false),
            sg_elided: iteration_us(Variant::SuperGlue, iface, true),
        };
        println!(
            "{:<6} {:>12.3}us {:>11.3}+-{:>4.2} {:>11.3}+-{:>4.2} {:>11.3}+-{:>4.2} {:>9.2}x {:>9.2}x",
            label(row.iface),
            row.base.mean,
            row.c3.mean,
            row.c3.stdev,
            row.sg.mean,
            row.sg.stdev,
            row.sg_elided.mean,
            row.sg_elided.stdev,
            row.ratio(),
            row.elided_ratio()
        );
        rows.push(row);
    }
    if let Some(path) = &bench_json {
        write_bench_json(path, &rows);
    }
    if let Some(max) = check_ratio {
        // The gate covers both interpreters: the fully tracked stubs
        // and the certified-elision fast paths (which may only improve).
        let worst = rows
            .iter()
            .max_by(|a, b| a.ratio().total_cmp(&b.ratio()))
            .expect("rows nonempty");
        let worst_elided = rows
            .iter()
            .max_by(|a, b| a.elided_ratio().total_cmp(&b.elided_ratio()))
            .expect("rows nonempty");
        if worst.ratio() > max || worst_elided.elided_ratio() > max {
            eprintln!(
                "FAIL: SG/C3 overhead ratio {:.2} ({}) / elided {:.2} ({}) exceeds the {:.2} gate",
                worst.ratio(),
                label(worst.iface),
                worst_elided.elided_ratio(),
                label(worst_elided.iface),
                max
            );
            std::process::exit(1);
        }
        println!(
            "check-ratio: worst SG/C3 overhead ratio {:.2} ({}), elided {:.2} ({}), within the {:.2} gate",
            worst.ratio(),
            label(worst.iface),
            worst_elided.elided_ratio(),
            label(worst_elided.iface),
            max
        );
    }

    println!();
    println!("== Fig 6(b): per-descriptor recovery overhead (us, wall clock) ==");
    println!("{:<6} {:>18} {:>18}", "Comp", "C3", "SuperGlue");
    for iface in SERVICES {
        let c3 = recovery_us(Variant::C3, iface, false);
        let sg = recovery_us(Variant::SuperGlue, iface, elide);
        println!(
            "{:<6} {:>11.3}+-{:>4.2} {:>11.3}+-{:>4.2}",
            label(iface),
            c3.mean,
            c3.stdev,
            sg.mean,
            sg.stdev
        );
    }
    println!();
    println!("note: recovery cost ordering tracks the mechanism count of SIII-C");
    println!("      (Event uses R0+T0+T1+D1+G0+U0; Lock only R0+T0+T1).");

    if trace_path.is_some() || series_path.is_some() {
        let window = if series_path.is_some() {
            series_window
        } else {
            0
        };
        let mut shards = Vec::new();
        let mut sections = Vec::new();
        for iface in SERVICES {
            for variant in [Variant::C3, Variant::SuperGlue] {
                let (shard, series) = traced_recovery_capture(variant, iface, elide, window);
                sections.push((shard.label.clone(), series));
                shards.push(shard);
            }
        }
        if let Some(path) = trace_path {
            sg_bench::write_trace(&path, &shards);
        }
        if let Some(path) = series_path {
            let refs: Vec<(String, &SeriesSnapshot)> =
                sections.iter().map(|(c, s)| (c.clone(), s)).collect();
            sg_bench::write_series(&path, window, &refs);
        }
    }
}
