//! `modelcheck`: the property-based recovery model checker.
//!
//! Two layers, both driven by the same deterministic
//! generate/apply/shrink harness (`composite_core::check`):
//!
//! * **core** — [`composite::KernelWalk`] random-walks the pure kernel
//!   transition function (`step`) through fault injections, nested
//!   episodes, watchdog expiries, reboot storms, and admission traffic,
//!   recomputing five recovery invariants from independent shadow state
//!   after every step.
//! * **system** — [`sg_bench::modelck::SystemWalk`] random-walks a full
//!   SuperGlue testbed (IDL stubs, storage, booter runtime) and checks
//!   the paper-level invariants: no lost wakeups, bounded episode depth,
//!   descriptor-leak freedom at quiescence, σ-table/trace-counter
//!   agreement, and episode-latency conservation.
//!
//! On a violation the harness shrinks the event sequence to a minimal
//! reproducer, writes it as a JSON artifact (`--out`, consumable by
//! `sgtrace replay` for the core layer), prints it, and exits nonzero.
//!
//! * **elide** — [`sg_bench::modelck::ElideDiffWalk`] drives a
//!   fully-tracked and a certified-elision testbed through the identical
//!   randomized fault schedule and requires them observationally
//!   indistinguishable after every operation, down to byte-identical
//!   flight-recorder traces (the dynamic check behind SG060–SG065).
//!
//! ```text
//! modelcheck [--core-steps N] [--system-steps N] [--elide-steps N] [--seed S] [--out PATH]
//! ```

use std::process::ExitCode;

use composite::{run_check, CheckConfig, Counterexample, Json, KernelWalk};
use sg_bench::modelck::{event_to_json, sysop_to_json, ElideDiffWalk, SystemWalk};

struct Args {
    core_steps: usize,
    system_steps: usize,
    elide_steps: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        core_steps: 10_000,
        system_steps: 300,
        elide_steps: 300,
        seed: 0xC3_5EED,
        out: "target/modelcheck-counterexample.json".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        let mut take = || -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--core-steps" => {
                args.core_steps = take()?.parse().map_err(|e| format!("--core-steps: {e}"))?;
            }
            "--system-steps" => {
                args.system_steps = take()?
                    .parse()
                    .map_err(|e| format!("--system-steps: {e}"))?;
            }
            "--elide-steps" => {
                args.elide_steps = take()?.parse().map_err(|e| format!("--elide-steps: {e}"))?;
            }
            "--seed" => {
                let v = take()?;
                args.seed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse(), |h| u64::from_str_radix(h, 16))
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = take()?,
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

/// Write the shrunk counterexample as a JSON artifact and print it.
fn report_failure<E, F: Fn(&E) -> Json>(
    layer: &str,
    seed: u64,
    cex: &Counterexample<E>,
    to_json: F,
    out: &str,
) {
    println!(
        "FAIL [{layer}] invariant {:?} violated: {}",
        cex.violation.invariant, cex.violation.detail
    );
    println!(
        "  shrunk to {} events (from {} generated, {} shrink iterations):",
        cex.events.len(),
        cex.original_len,
        cex.shrink_iterations
    );
    let mut lines: Vec<Json> = Vec::new();
    for (i, ev) in cex.events.iter().enumerate() {
        let mut j = to_json(ev);
        j.push("span", i as u64);
        println!("    [{i:>3}] {}", j.to_line());
        lines.push(j);
    }
    let mut artifact = Json::object();
    artifact
        .push("model", layer)
        .push("seed", seed)
        .push("invariant", cex.violation.invariant)
        .push("detail", cex.violation.detail.as_str())
        .push("original_len", cex.original_len as u64)
        .push("shrink_iterations", cex.shrink_iterations)
        .push("events", lines);
    if let Some(dir) = std::path::Path::new(out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(out, artifact.to_pretty()) {
        Ok(()) => println!("  counterexample written to {out}"),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
    if layer == "core" {
        println!("  time-travel through it with: sgtrace replay {out} --to <span>");
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("modelcheck: {e}");
            eprintln!(
                "usage: modelcheck [--core-steps N] [--system-steps N] [--elide-steps N] \
                 [--seed S] [--out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;

    if args.core_steps > 0 {
        let mut walk = KernelWalk::new();
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed: args.seed,
                steps: args.core_steps,
                max_shrink_iters: 4_000,
            },
        );
        match &report.counterexample {
            None => println!(
                "ok   [core]   {} random-walk steps, 5 invariants checked after every step \
                 (seed {:#x})",
                report.steps_run, args.seed
            ),
            Some(cex) => {
                failed = true;
                report_failure("core", args.seed, cex, event_to_json, &args.out);
            }
        }
    }

    if args.system_steps > 0 {
        let mut walk = SystemWalk::new();
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed: args.seed ^ 0x5157_EA11, // distinct stream, same reproducibility
                steps: args.system_steps,
                max_shrink_iters: 400,
            },
        );
        match &report.counterexample {
            None => {
                // Per-step invariants held; now the trace-level pair.
                let trace_violations = walk.finish();
                if trace_violations.is_empty() {
                    println!(
                        "ok   [system] {} operations against the SuperGlue testbed, \
                         trace/σ-table agreement and latency conservation verified",
                        report.steps_run
                    );
                } else {
                    failed = true;
                    for v in &trace_violations {
                        println!("FAIL [system] invariant {:?}: {}", v.invariant, v.detail);
                    }
                }
            }
            Some(cex) => {
                failed = true;
                report_failure("system", args.seed, cex, sysop_to_json, &args.out);
            }
        }
    }

    if args.elide_steps > 0 {
        let mut walk = ElideDiffWalk::new();
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed: args.seed ^ 0xE11D_E0FF, // distinct stream, same reproducibility
                steps: args.elide_steps,
                max_shrink_iters: 400,
            },
        );
        match &report.counterexample {
            None => {
                let trace_violations = walk.finish();
                if trace_violations.is_empty() {
                    println!(
                        "ok   [elide]  {} lock-step operations: certified-elision stubs \
                         observationally identical to fully tracked (incl. trace bytes)",
                        report.steps_run
                    );
                } else {
                    failed = true;
                    for v in &trace_violations {
                        println!("FAIL [elide] invariant {:?}: {}", v.invariant, v.detail);
                    }
                }
            }
            Some(cex) => {
                failed = true;
                report_failure("elide", args.seed, cex, sysop_to_json, &args.out);
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
