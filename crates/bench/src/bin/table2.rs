//! Table II harness: the SWIFI fault-injection campaign over all six
//! system services, sharded across worker threads.
//!
//! Run with `cargo run -p sg-bench --release --bin table2`. Options:
//!
//! * `--injections N` — faults per service (default 500, the paper's
//!   count);
//! * `--seed S` — RNG seed (printed for reproducibility);
//! * `--variant c3|superglue` — which protection runs (default
//!   superglue);
//! * `--jobs N` — worker threads (default: available parallelism).
//!   Output is bit-identical for every value of `--jobs`;
//! * `--json PATH` — additionally dump the rows as JSON;
//! * `--metrics PATH` — dump per-component recovery-mechanism counters
//!   as JSON-lines (one line per component per service campaign);
//! * `--trace PATH` — record a flight-recorder trace of every shard:
//!   JSON-lines at PATH (analyze with `sgtrace`) plus a Chrome
//!   trace_event rendering at PATH.chrome.json (open in Perfetto).
//!   Byte-identical for every `--jobs` value.

use std::time::Instant;

use composite::{default_jobs, parallel_map_indexed, Json};
use sg_swifi::{merge_shards, run_shard, shard_sizes, CampaignConfig, CampaignResult};
use superglue::testbed::Variant;

const IFACES: [&str; 6] = ["sched", "mm", "fs", "lock", "evt", "tmr"];

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--injections" => {
                cfg.injections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--injections N");
            }
            "--seed" => {
                cfg.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--variant" => match args.next().as_deref() {
                Some("c3") => cfg.variant = Variant::C3,
                Some("superglue") => cfg.variant = Variant::SuperGlue,
                other => panic!("--variant c3|superglue, got {other:?}"),
            },
            "--mask" => {
                let raw = args.next().expect("--mask HEX");
                cfg.fault_mask = u32::from_str_radix(raw.trim_start_matches("0x"), 16)
                    .expect("--mask takes a hex fault mask");
            }
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            "--metrics" => metrics_path = Some(args.next().expect("--metrics PATH")),
            "--trace" => {
                trace_path = Some(args.next().expect("--trace PATH"));
                cfg.trace = true;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let variant_name = match cfg.variant {
        Variant::SuperGlue => "COMPOSITE+SuperGlue",
        Variant::C3 => "COMPOSITE+C3",
        Variant::Bare => "COMPOSITE (bare)",
    };
    println!(
        "SWIFI fault-injection campaign: {} injections/component, seed 0x{:X}, mask 0x{:08X}, {variant_name}, {jobs} jobs",
        cfg.injections, cfg.seed, cfg.fault_mask,
    );

    // Flatten every (service, shard) pair into one task pool so all
    // workers stay busy across service boundaries, then merge per
    // service in shard order — bit-identical for any job count.
    let shards_per_iface = shard_sizes(cfg.injections).len();
    let start = Instant::now();
    let shard_results = parallel_map_indexed(IFACES.len() * shards_per_iface, jobs, |task| {
        run_shard(
            IFACES[task / shards_per_iface],
            &cfg,
            task % shards_per_iface,
        )
    });
    let results: Vec<CampaignResult> = shard_results
        .chunks(shards_per_iface)
        .zip(IFACES)
        .map(|(chunk, iface)| merge_shards(iface, chunk.iter()))
        .collect();
    let elapsed = start.elapsed();

    println!("{}", sg_swifi::CampaignRow::table_header());
    for r in &results {
        println!("{}", r.row.table_line());
    }

    println!();
    println!("paper (Table II, 500 injections/component): activation 93.8-98.4%,");
    println!("success 88.6-96.1%, Sched worst for segfaults (10.8% of injections),");
    println!("propagation <=0.4%, hangs <=0.8%.");
    println!("wall clock: {:.2}s ({jobs} jobs)", elapsed.as_secs_f64());

    if let Some(path) = json_path {
        let rows: Vec<Json> = results
            .iter()
            .map(|r| {
                let mut j = Json::object();
                j.push("component", r.row.component.as_str())
                    .push("injected", r.row.injected)
                    .push("recovered", r.row.recovered)
                    .push("segfault", r.row.segfault)
                    .push("propagated", r.row.propagated)
                    .push("other", r.row.other)
                    .push("undetected", r.row.undetected)
                    .push("activation_ratio", r.row.activation_ratio())
                    .push("success_rate", r.row.success_rate());
                j
            })
            .collect();
        std::fs::write(&path, Json::Array(rows).to_pretty()).expect("write json");
        println!("rows written to {path}");
    }

    if let Some(path) = metrics_path {
        let mut out = String::new();
        for (iface, r) in IFACES.iter().zip(&results) {
            let variant = match cfg.variant {
                Variant::SuperGlue => "superglue",
                Variant::C3 => "c3",
                Variant::Bare => "bare",
            };
            out.push_str(
                &r.metrics
                    .to_json_lines(&format!("table2/{iface}/{variant}")),
            );
        }
        std::fs::write(&path, out).expect("write metrics");
        println!("metrics written to {path}");
    }

    if let Some(path) = trace_path {
        let shards: Vec<_> = results
            .iter()
            .flat_map(|r| r.trace.iter().cloned())
            .collect();
        sg_bench::write_trace(&path, &shards);
    }
}
