//! Table II harness: the SWIFI fault-injection campaign over all six
//! system services.
//!
//! Run with `cargo run -p sg-bench --release --bin table2`. Options:
//!
//! * `--injections N` — faults per service (default 500, the paper's
//!   count);
//! * `--seed S` — RNG seed (printed for reproducibility);
//! * `--variant c3|superglue` — which protection runs (default
//!   superglue);
//! * `--json PATH` — additionally dump the rows as JSON.

use sg_swifi::{run_campaign, CampaignConfig};
use superglue::testbed::Variant;

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--injections" => {
                cfg.injections =
                    args.next().and_then(|v| v.parse().ok()).expect("--injections N");
            }
            "--seed" => {
                cfg.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--variant" => match args.next().as_deref() {
                Some("c3") => cfg.variant = Variant::C3,
                Some("superglue") => cfg.variant = Variant::SuperGlue,
                other => panic!("--variant c3|superglue, got {other:?}"),
            },
            "--mask" => {
                let raw = args.next().expect("--mask HEX");
                cfg.fault_mask = u32::from_str_radix(raw.trim_start_matches("0x"), 16)
                    .expect("--mask takes a hex fault mask");
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!(
        "SWIFI fault-injection campaign: {} injections/component, seed 0x{:X}, mask 0x{:08X}, {}",
        cfg.injections,
        cfg.seed,
        cfg.fault_mask,
        match cfg.variant {
            Variant::SuperGlue => "COMPOSITE+SuperGlue",
            Variant::C3 => "COMPOSITE+C3",
            Variant::Bare => "COMPOSITE (bare)",
        }
    );
    println!("{}", sg_swifi::CampaignRow::table_header());

    let mut rows = Vec::new();
    for iface in ["sched", "mm", "fs", "lock", "evt", "tmr"] {
        let row = run_campaign(iface, &cfg);
        println!("{}", row.table_line());
        rows.push(row);
    }

    println!();
    println!("paper (Table II, 500 injections/component): activation 93.8-98.4%,");
    println!("success 88.6-96.1%, Sched worst for segfaults (10.8% of injections),");
    println!("propagation <=0.4%, hangs <=0.8%.");

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
        std::fs::write(&path, json).expect("write json");
        println!("rows written to {path}");
    }
}
