//! Table II harness: the SWIFI fault-injection campaign over all six
//! system services, sharded across worker threads.
//!
//! Run with `cargo run -p sg-bench --release --bin table2`. Options:
//!
//! * `--injections N` — faults per service (default 500, the paper's
//!   count);
//! * `--seed S` — RNG seed (printed for reproducibility);
//! * `--variant c3|superglue` — which protection runs (default
//!   superglue);
//! * `--jobs N` — worker threads (default: available parallelism).
//!   Output is bit-identical for every value of `--jobs`;
//! * `--json PATH` — additionally dump the rows as JSON;
//! * `--metrics PATH` — dump per-component recovery-mechanism counters
//!   as JSON-lines (one line per component per service campaign);
//! * `--trace PATH` — record a flight-recorder trace of every shard:
//!   JSON-lines at PATH (analyze with `sgtrace`) plus a Chrome
//!   trace_event rendering at PATH.chrome.json (open in Perfetto).
//!   Byte-identical for every `--jobs` value;
//! * `--series PATH` — dump windowed recovery telemetry (per component,
//!   per simulated-time window: invocations, faults, mechanism firings,
//!   recovery-latency quantiles) as JSON-lines for `sgstat series`.
//!   Byte-identical for every `--jobs` value;
//! * `--series-window NS` — window width in simulated nanoseconds
//!   (default 1,000,000 = 1ms);
//! * `--correlated` — run the Table II-B correlated-fault campaign
//!   instead: every service under the `burst`, `during-recovery`, and
//!   `cascade` regimes, with the degraded / watchdog-detected /
//!   nested-recovered columns;
//! * `--elide` — interpret the certified tracking-elision stub specs
//!   (`sm_elide` fast paths). Every output byte — rows, `--json`,
//!   `--metrics`, `--trace` — must be identical to a run without the
//!   flag; the CI differential diffs the two.

use std::time::Instant;

use composite::{default_jobs, parallel_map_indexed, Json};
use sg_swifi::{
    merge_shards, run_shard, shard_sizes, CampaignConfig, CampaignMode, CampaignResult,
};
use superglue::testbed::Variant;

const IFACES: [&str; 6] = ["sched", "mm", "fs", "lock", "evt", "tmr"];

/// The Table II-B correlated regimes, in output order.
const MODES: [(&str, CampaignMode); 3] = [
    ("burst", CampaignMode::Burst { flips: 3 }),
    ("during-recovery", CampaignMode::DuringRecovery),
    ("cascade", CampaignMode::Cascade),
];

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut series_path: Option<String> = None;
    let mut series_window = composite::DEFAULT_SERIES_WINDOW.0;
    let mut jobs = default_jobs();
    let mut correlated = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--correlated" => correlated = true,
            // Interpret the certified-elision stubs. Every output byte
            // (rows, json, metrics, traces) must be identical to a run
            // without the flag — only proven-dead bookkeeping differs.
            "--elide" => cfg.elide = true,
            "--injections" => {
                cfg.injections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--injections N");
            }
            "--seed" => {
                cfg.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--variant" => match args.next().as_deref() {
                Some("c3") => cfg.variant = Variant::C3,
                Some("superglue") => cfg.variant = Variant::SuperGlue,
                other => panic!("--variant c3|superglue, got {other:?}"),
            },
            "--mask" => {
                let raw = args.next().expect("--mask HEX");
                cfg.fault_mask = u32::from_str_radix(raw.trim_start_matches("0x"), 16)
                    .expect("--mask takes a hex fault mask");
            }
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            "--metrics" => metrics_path = Some(args.next().expect("--metrics PATH")),
            "--trace" => {
                trace_path = Some(args.next().expect("--trace PATH"));
                cfg.trace = true;
            }
            "--series" => series_path = Some(args.next().expect("--series PATH")),
            "--series-window" => {
                series_window = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--series-window NS");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    if series_path.is_some() {
        cfg.series_window_ns = series_window;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        std::process::exit(2);
    }

    let variant_name = match cfg.variant {
        Variant::SuperGlue => "COMPOSITE+SuperGlue",
        Variant::C3 => "COMPOSITE+C3",
        Variant::Bare => "COMPOSITE (bare)",
    };
    println!(
        "SWIFI fault-injection campaign: {} injections/component, seed 0x{:X}, mask 0x{:08X}, {variant_name}, {jobs} jobs",
        cfg.injections, cfg.seed, cfg.fault_mask,
    );

    if correlated {
        run_correlated(&cfg, jobs, json_path, metrics_path, trace_path, series_path);
        return;
    }

    // Flatten every (service, shard) pair into one task pool so all
    // workers stay busy across service boundaries, then merge per
    // service in shard order — bit-identical for any job count.
    let shards_per_iface = shard_sizes(cfg.injections).len();
    let start = Instant::now();
    let shard_results = parallel_map_indexed(IFACES.len() * shards_per_iface, jobs, |task| {
        run_shard(
            IFACES[task / shards_per_iface],
            &cfg,
            task % shards_per_iface,
        )
    });
    let results: Vec<CampaignResult> = shard_results
        .chunks(shards_per_iface)
        .zip(IFACES)
        .map(|(chunk, iface)| merge_shards(iface, chunk.iter()))
        .collect();
    let elapsed = start.elapsed();

    println!("{}", sg_swifi::CampaignRow::table_header());
    for r in &results {
        println!("{}", r.row.table_line());
    }

    println!();
    println!("paper (Table II, 500 injections/component): activation 93.8-98.4%,");
    println!("success 88.6-96.1%, Sched worst for segfaults (10.8% of injections),");
    println!("propagation <=0.4%, hangs <=0.8%.");
    println!("wall clock: {:.2}s ({jobs} jobs)", elapsed.as_secs_f64());

    if let Some(path) = json_path {
        let rows: Vec<Json> = results
            .iter()
            .map(|r| {
                let mut j = Json::object();
                j.push("component", r.row.component.as_str())
                    .push("injected", r.row.injected)
                    .push("recovered", r.row.recovered)
                    .push("segfault", r.row.segfault)
                    .push("propagated", r.row.propagated)
                    .push("other", r.row.other)
                    .push("undetected", r.row.undetected)
                    .push("activation_ratio", r.row.activation_ratio())
                    .push("success_rate", r.row.success_rate());
                j
            })
            .collect();
        std::fs::write(&path, Json::Array(rows).to_pretty()).expect("write json");
        println!("rows written to {path}");
    }

    if let Some(path) = metrics_path {
        let mut out = String::new();
        for (iface, r) in IFACES.iter().zip(&results) {
            let variant = match cfg.variant {
                Variant::SuperGlue => "superglue",
                Variant::C3 => "c3",
                Variant::Bare => "bare",
            };
            out.push_str(
                &r.metrics
                    .to_json_lines(&format!("table2/{iface}/{variant}")),
            );
        }
        std::fs::write(&path, out).expect("write metrics");
        println!("metrics written to {path}");
    }

    if let Some(path) = trace_path {
        let shards: Vec<_> = results
            .iter()
            .flat_map(|r| r.trace.iter().cloned())
            .collect();
        sg_bench::write_trace(&path, &shards);
    }

    if let Some(path) = series_path {
        let variant = variant_slug(cfg.variant);
        let sections: Vec<(String, &composite::SeriesSnapshot)> = IFACES
            .iter()
            .zip(&results)
            .map(|(iface, r)| (format!("table2/{iface}/{variant}"), &r.series))
            .collect();
        sg_bench::write_series(&path, cfg.series_window_ns, &sections);
    }
}

fn variant_slug(v: Variant) -> &'static str {
    match v {
        Variant::SuperGlue => "superglue",
        Variant::C3 => "c3",
        Variant::Bare => "bare",
    }
}

/// The Table II-B campaign: every (mode, service, shard) triple in one
/// flattened task pool, merged per (mode, service) in shard order —
/// byte-identical output for any `--jobs` value.
fn run_correlated(
    cfg: &CampaignConfig,
    jobs: usize,
    json_path: Option<String>,
    metrics_path: Option<String>,
    trace_path: Option<String>,
    series_path: Option<String>,
) {
    let shards_per_iface = shard_sizes(cfg.injections).len();
    let per_mode = IFACES.len() * shards_per_iface;
    let start = Instant::now();
    let shard_results = parallel_map_indexed(MODES.len() * per_mode, jobs, |task| {
        let mut mcfg = *cfg;
        mcfg.mode = MODES[task / per_mode].1;
        let rest = task % per_mode;
        run_shard(
            IFACES[rest / shards_per_iface],
            &mcfg,
            rest % shards_per_iface,
        )
    });
    let results: Vec<(usize, &str, CampaignResult)> = shard_results
        .chunks(shards_per_iface)
        .enumerate()
        .map(|(i, chunk)| {
            let iface = IFACES[i % IFACES.len()];
            (i / IFACES.len(), iface, merge_shards(iface, chunk.iter()))
        })
        .collect();
    let elapsed = start.elapsed();

    for (mode_i, (mode_name, mode)) in MODES.iter().enumerate() {
        let regime = match mode {
            CampaignMode::Burst { flips } => format!("{mode_name} ({flips} flips/injection)"),
            _ => (*mode_name).to_owned(),
        };
        println!();
        println!("Table II-B (correlated faults) — regime: {regime}");
        println!("{}", sg_swifi::CampaignRow::correlated_header());
        for (_, _, r) in results.iter().filter(|(m, _, _)| *m == mode_i) {
            println!("{}", r.row.correlated_line());
        }
    }
    println!();
    println!("wall clock: {:.2}s ({jobs} jobs)", elapsed.as_secs_f64());

    if let Some(path) = json_path {
        let rows: Vec<Json> = results
            .iter()
            .map(|(mode_i, _, r)| {
                let mut j = Json::object();
                j.push("mode", MODES[*mode_i].0)
                    .push("component", r.row.component.as_str())
                    .push("injected", r.row.injected)
                    .push("recovered", r.row.recovered)
                    .push("segfault", r.row.segfault)
                    .push("propagated", r.row.propagated)
                    .push("other", r.row.other)
                    .push("undetected", r.row.undetected)
                    .push("degraded", r.row.degraded)
                    .push("watchdog_detected", r.row.watchdog_detected)
                    .push("nested_recovered", r.row.nested_recovered)
                    .push("success_rate", r.row.success_rate());
                j
            })
            .collect();
        std::fs::write(&path, Json::Array(rows).to_pretty()).expect("write json");
        println!("rows written to {path}");
    }

    if let Some(path) = metrics_path {
        let variant = match cfg.variant {
            Variant::SuperGlue => "superglue",
            Variant::C3 => "c3",
            Variant::Bare => "bare",
        };
        let mut out = String::new();
        for (mode_i, iface, r) in &results {
            out.push_str(
                &r.metrics
                    .to_json_lines(&format!("table2b/{}/{iface}/{variant}", MODES[*mode_i].0)),
            );
        }
        std::fs::write(&path, out).expect("write metrics");
        println!("metrics written to {path}");
    }

    if let Some(path) = trace_path {
        let shards: Vec<_> = results
            .iter()
            .flat_map(|(_, _, r)| r.trace.iter().cloned())
            .collect();
        sg_bench::write_trace(&path, &shards);
    }

    if let Some(path) = series_path {
        let variant = variant_slug(cfg.variant);
        let sections: Vec<(String, &composite::SeriesSnapshot)> = results
            .iter()
            .map(|(mode_i, iface, r)| {
                (
                    format!("table2b/{}/{iface}/{variant}", MODES[*mode_i].0),
                    &r.series,
                )
            })
            .collect();
        sg_bench::write_series(&path, cfg.series_window_ns, &sections);
    }
}
