//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! Run with `cargo run -p sg-bench --release --bin ablations`. The
//! three ablations are independent and run across worker threads
//! (`--jobs N`, default: available parallelism); their reports print in
//! ablation order regardless of the job count.
//!
//! `--trace PATH` records a flight-recorder trace of the ablation
//! kernels (the recovery-policy and G1 ablations; the tracker ablation
//! has no kernel) as JSON-lines at PATH plus a Chrome trace_event
//! rendering at PATH.chrome.json.
//!
//! `--series PATH` dumps windowed recovery telemetry of the same
//! kernels as JSON-lines for `sgstat series` (`--series-window NS`
//! overrides the 1ms default window).

use std::fmt::Write as _;
use std::time::Instant;

use composite::{
    default_jobs, parallel_map_indexed, CostModel, InterfaceCall as _, Kernel, KernelAccess as _,
    Priority, SeriesSnapshot, SimTime, TraceShard, Value, DEFAULT_SERIES_WINDOW,
    DEFAULT_TRACE_CAPACITY,
};
use sg_c3::RecoveryPolicy;
use superglue::testbed::{Testbed, Variant};
use superglue_sm::machine::StateMachineBuilder;
use superglue_sm::tracking::{DescId, DescriptorTracker, OperationLog};
use superglue_sm::{DescriptorResourceModel, State};

/// Ablation 1: on-demand (T1) vs eager recovery — what a high-priority
/// client waits for after a fault when many descriptors are live.
fn ablation_policy(opts: &AblationOpts) -> AblationOutput {
    let mut out = String::new();
    let mut shards = Vec::new();
    let mut series = Vec::new();
    let _ = writeln!(out, "== Ablation 1: on-demand (T1) vs eager recovery ==");
    const DESCRIPTORS: usize = 400;
    for policy in [RecoveryPolicy::OnDemand, RecoveryPolicy::Eager] {
        let mut tb = Testbed::build_with(Variant::SuperGlue, CostModel::paper_defaults(), policy)
            .expect("testbed builds");
        if opts.trace {
            tb.runtime
                .kernel_mut()
                .enable_tracing(DEFAULT_TRACE_CAPACITY);
        }
        if opts.series_window > 0 {
            tb.runtime
                .kernel_mut()
                .enable_telemetry(SimTime(opts.series_window));
        }
        let t = tb.spawn_thread(tb.ids.app1, Priority(5));
        let (app, lock) = (tb.ids.app1, tb.ids.lock);
        let mut ids = Vec::new();
        for _ in 0..DESCRIPTORS {
            let id = tb
                .runtime
                .interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
                .expect("alloc")
                .int()
                .expect("id");
            ids.push(id);
        }
        tb.runtime.inject_fault(lock);
        let start = Instant::now();
        if policy == RecoveryPolicy::Eager {
            tb.runtime
                .handle_fault_now(lock, t)
                .expect("eager recovery");
        }
        // The "high-priority request": one take on one descriptor.
        tb.runtime
            .interface_call(
                app,
                t,
                lock,
                "lock_take",
                &[Value::Int(1), Value::Int(ids[0])],
            )
            .expect("take");
        let first_us = start.elapsed().as_secs_f64() * 1e6;
        let recovered = tb.runtime.stats().descriptors_recovered;
        let _ = writeln!(
            out,
            "  {policy:?}: first request served after {first_us:8.1} us wall  \
             ({recovered} descriptors recovered before it completed)"
        );
        if opts.series_window > 0 {
            series.push((
                format!("ablations/policy/{policy:?}"),
                SeriesSnapshot::from_kernel(tb.runtime.kernel()),
            ));
        }
        if opts.trace {
            let mut shard = TraceShard::labeled(&format!("ablations/policy/{policy:?}"));
            let label = shard.label.clone();
            shard.absorb(tb.runtime.kernel_mut().take_trace(&label));
            shards.push(shard);
        }
    }
    let _ = writeln!(
        out,
        "  -> on-demand bounds the priority inversion: the first request pays for\n\
         \x20    one descriptor, not all {DESCRIPTORS} (the paper's schedulability argument)."
    );
    (out, shards, series)
}

/// Ablation 2+3: bounded state-machine tracking vs the operation log
/// §II-C rejects, and shortest-walk vs full-history replay.
fn ablation_tracker(_opts: &AblationOpts) -> AblationOutput {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== Ablation 2: state-machine tracker vs operation log =="
    );
    let mut b = StateMachineBuilder::new("lock");
    let alloc = b.function("lock_alloc");
    let take = b.function("lock_take");
    let release = b.function("lock_release");
    b.creation(alloc);
    b.transition(alloc, take);
    b.transition(take, release);
    b.transition(release, take);
    let sm = b.build().expect("machine builds");

    const OPS: usize = 100_000;
    let mut tracker = DescriptorTracker::new(DescriptorResourceModel::new());
    let mut log = OperationLog::new();
    tracker.create(DescId(1), alloc, 1, None).expect("create");
    log.record(DescId(1), alloc, vec![]);
    for i in 0..OPS {
        let f = if i % 2 == 0 { take } else { release };
        tracker
            .on_call(&sm, DescId(1), f)
            .expect("valid transition");
        log.record(DescId(1), f, vec![]);
    }
    let _ = writeln!(
        out,
        "  after {OPS} operations on one descriptor:\n\
         \x20   state-machine tracker footprint: {:>10} bytes (bounded)\n\
         \x20   operation-log footprint:         {:>10} bytes (unbounded growth)",
        tracker.footprint(),
        log.footprint()
    );

    let _ = writeln!(
        out,
        "\n== Ablation 3: shortest recovery walk vs full-history replay =="
    );
    let expected = tracker.get(DescId(1)).expect("tracked").state;
    let walk = sm.recovery_walk(expected).expect("reachable");
    let _ = writeln!(
        out,
        "  expected state {:?}: shortest walk replays {} calls; a log replay\n\
         \x20 would re-execute {} calls ({}x more recovery work)",
        expected,
        walk.len(),
        log.replay_for(DescId(1)).len(),
        log.replay_for(DescId(1)).len() / walk.len().max(1)
    );
    let _ = State::Init;
    (out, Vec::new(), Vec::new())
}

/// Ablation 4: G1 redundant storage on vs off — RamFS data survival.
fn ablation_g1(opts: &AblationOpts) -> AblationOutput {
    let mut out = String::new();
    let mut shards = Vec::new();
    let mut series = Vec::new();
    let _ = writeln!(out, "\n== Ablation 4: G1 redundant storage on vs off ==");
    for persist in [true, false] {
        let mut k = Kernel::with_costs(CostModel::free());
        if opts.trace {
            k.enable_tracing(DEFAULT_TRACE_CAPACITY);
        }
        if opts.series_window > 0 {
            k.enable_telemetry(SimTime(opts.series_window));
        }
        let app = k.add_client_component("app");
        let st = k.add_component(
            "storage",
            Box::new(sg_services::storage::StorageService::new()),
        );
        let cb = k.add_component("cbuf", Box::new(sg_services::cbuf::CbufService::new()));
        let fs_svc: Box<dyn composite::Service> = if persist {
            Box::new(sg_services::ramfs::RamFs::new(st, cb))
        } else {
            Box::new(sg_services::ramfs::RamFs::without_persistence(st, cb))
        };
        let fs = k.add_component("fs", fs_svc);
        k.grant(app, fs);
        k.grant(fs, st);
        k.grant(fs, cb);
        let t = k.create_thread(app, Priority(5));
        let fd = k
            .invoke(
                app,
                t,
                fs,
                "tsplit",
                &[Value::Int(1), Value::Int(0), Value::from("data")],
            )
            .expect("split")
            .int()
            .expect("fd");
        k.invoke(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![7; 64])],
        )
        .expect("write");
        k.fault(fs);
        k.micro_reboot(fs).expect("reboot");
        let fd2 = k
            .invoke(
                app,
                t,
                fs,
                "tsplit",
                &[Value::Int(1), Value::Int(0), Value::from("data")],
            )
            .expect("split")
            .int()
            .expect("fd");
        let read = k
            .invoke(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd2), Value::Int(64)],
            )
            .expect("read");
        let survived = matches!(&read, Value::Bytes(b) if b.len() == 64);
        if opts.series_window > 0 {
            series.push((
                format!("ablations/g1/{}", if persist { "on" } else { "off" }),
                SeriesSnapshot::from_kernel(&k),
            ));
        }
        if opts.trace {
            let mut shard = TraceShard::labeled(&format!(
                "ablations/g1/{}",
                if persist { "on" } else { "off" }
            ));
            let label = shard.label.clone();
            shard.absorb(k.take_trace(&label));
            shards.push(shard);
        }
        let _ = writeln!(
            out,
            "  persistence {}: 64-byte file {} the micro-reboot",
            if persist { "ON (G1) " } else { "OFF      " },
            if survived {
                "SURVIVED"
            } else {
                "was LOST across"
            }
        );
    }
    let _ = writeln!(
        out,
        "  -> without the storage component, interface-driven recovery alone\n\
         \x20    cannot restore resource *data* — the reason G1 exists (SIII-C)."
    );
    (out, shards, series)
}

/// What the harness asked each ablation to capture.
#[derive(Clone, Copy)]
struct AblationOpts {
    trace: bool,
    /// Telemetry window width in simulated ns (0 = off).
    series_window: u64,
}

/// An ablation's report plus any flight-recorder shards and windowed
/// telemetry sections it captured.
type AblationOutput = (String, Vec<TraceShard>, Vec<(String, SeriesSnapshot)>);

/// One ablation: takes the capture options, returns its output.
type Ablation = fn(&AblationOpts) -> AblationOutput;

fn main() {
    let mut jobs = default_jobs();
    let mut trace_path: Option<String> = None;
    let mut series_path: Option<String> = None;
    let mut series_window = DEFAULT_SERIES_WINDOW.0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
            }
            "--trace" => trace_path = Some(args.next().expect("--trace PATH")),
            "--series" => series_path = Some(args.next().expect("--series PATH")),
            "--series-window" => {
                series_window = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--series-window NS");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let opts = AblationOpts {
        trace: trace_path.is_some(),
        series_window: if series_path.is_some() {
            series_window
        } else {
            0
        },
    };
    let ablations: [Ablation; 3] = [ablation_policy, ablation_tracker, ablation_g1];
    let mut shards = Vec::new();
    let mut series = Vec::new();
    for (report, mut s, mut t) in
        parallel_map_indexed(ablations.len(), jobs, |i| ablations[i](&opts))
    {
        print!("{report}");
        shards.append(&mut s);
        series.append(&mut t);
    }
    if let Some(path) = trace_path {
        sg_bench::write_trace(&path, &shards);
    }
    if let Some(path) = series_path {
        let sections: Vec<(String, &SeriesSnapshot)> =
            series.iter().map(|(c, s)| (c.clone(), s)).collect();
        sg_bench::write_series(&path, opts.series_window, &sections);
    }
}
