//! `sgtrace`: the flight-recorder trace analyzer.
//!
//! Consumes the JSON-lines dumps written by the harnesses' `--trace`
//! flag (`table2`, `fig7`, `fig6`, `ablations`) and answers the
//! questions the raw event stream encodes:
//!
//! * `sgtrace timeline TRACE` — per-episode recovery timelines with
//!   per-mechanism latency attribution. Independently re-sums every
//!   timed span of each episode and checks **conservation**: the
//!   attributed spans must account for 100% of the episode's recorded
//!   latency (exit 1 on any mismatch).
//! * `sgtrace tree TRACE` — the causal fault-propagation tree of every
//!   recovery episode, rooted at the fault event.
//! * `sgtrace diff A B` — episode-by-episode comparison of two traces
//!   (e.g. C³ vs SuperGlue, or two seeds): mechanism counts and
//!   attributed latency per episode, plus whole-trace totals.
//! * `sgtrace verify TRACE` — recovery-soundness conformance: every
//!   observed σ-walk replay sequence must be explainable by a replay
//!   plan computable from the shipped IDL (shortest walks after
//!   `sm_recover_via`, `sm_recover_block` substitutions at blocking
//!   steps, and the `*_restore` creation substitution for global
//!   descriptors) — the dynamic counterpart of `sglint`'s static
//!   conformance checks (exit 1 on any unexplained walk).
//! * `sgtrace replay ARTIFACT [--to SPAN]` — time travel through a
//!   `modelcheck` core counterexample: replays the recorded event
//!   sequence through the pure kernel transition function
//!   (`composite_core::step`), snapshotting the `KernelState` after
//!   every event (O(1) each — the tables are `Arc`-shared), and prints
//!   the state as of event `SPAN` (default: the final, violating
//!   state). Because the core is pure, the replay is exact: the state
//!   printed is byte-for-byte the state the checker saw.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use composite::{step, Json, KernelWalk, Model as _, ThreadState};
use sg_bench::modelck::event_from_json;
use superglue_compiler::CompiledStubSpec;
use superglue_sm::{FnId, State};

// ---------------------------------------------------------------------
// Parsed trace model
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct Shard {
    label: String,
    names: Vec<String>,
    dropped: u64,
    /// Recovery-class events lost to ring overflow; when zero, latency
    /// attribution is complete even if ambient `dropped > 0`.
    dropped_recovery: u64,
    events: Vec<Ev>,
}

#[derive(Debug, Clone, Default)]
struct Ev {
    span: u64,
    parent: Option<u64>,
    ts: u64,
    dur: u64,
    comp: u64,
    epoch: u64,
    kind: String,
    function: Option<String>,
    mech: Option<String>,
    n: Option<u64>,
    desc: Option<i64>,
    outcome: Option<String>,
    attributed: Option<u64>,
    /// Nesting depth of a correlated fault (present only when > 0).
    depth: Option<u64>,
    until: Option<u64>,
}

impl Ev {
    fn from_json(j: &Json) -> Result<Ev, String> {
        Ok(Ev {
            span: j.get("span").and_then(Json::as_u64).ok_or("missing span")?,
            parent: j.get("parent").and_then(Json::as_u64),
            ts: j.get("ts").and_then(Json::as_u64).ok_or("missing ts")?,
            dur: j.get("dur").and_then(Json::as_u64).unwrap_or(0),
            comp: j.get("comp").and_then(Json::as_u64).unwrap_or(0),
            epoch: j.get("epoch").and_then(Json::as_u64).unwrap_or(0),
            kind: j
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("missing kind")?
                .to_owned(),
            function: j.get("function").and_then(Json::as_str).map(str::to_owned),
            mech: j.get("mech").and_then(Json::as_str).map(str::to_owned),
            n: j.get("n").and_then(Json::as_u64),
            desc: j.get("desc").and_then(Json::as_i64),
            outcome: j.get("outcome").and_then(Json::as_str).map(str::to_owned),
            attributed: j.get("attributed").and_then(Json::as_u64),
            depth: j.get("depth").and_then(Json::as_u64),
            until: j.get("until").and_then(Json::as_u64),
        })
    }
}

fn parse_trace(path: &str) -> Result<Vec<Shard>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut shards: Vec<Shard> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if let Some(label) = j.get("shard").and_then(Json::as_str) {
            shards.push(Shard {
                label: label.to_owned(),
                names: j
                    .get("names")
                    .and_then(Json::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Json::as_str)
                            .map(str::to_owned)
                            .collect()
                    })
                    .unwrap_or_default(),
                dropped: j.get("dropped").and_then(Json::as_u64).unwrap_or(0),
                dropped_recovery: j
                    .get("dropped_recovery")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                events: Vec::new(),
            });
        } else {
            let ev = Ev::from_json(&j).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
            shards
                .last_mut()
                .ok_or_else(|| format!("{path}:{}: event before any shard header", lineno + 1))?
                .events
                .push(ev);
        }
    }
    Ok(shards)
}

fn comp_name(shard: &Shard, comp: u64) -> &str {
    shard.names.get(comp as usize).map_or("?", String::as_str)
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

// ---------------------------------------------------------------------
// Episode reconstruction
// ---------------------------------------------------------------------

/// One reconstructed recovery episode: fault → (reboot + walks + storage
/// + upcalls) → episode end.
#[derive(Debug, Clone, Default)]
struct Episode {
    component: String,
    start: u64,
    end: u64,
    /// Latency the kernel attributed (from the `episode_end` event).
    attributed: u64,
    /// Latency this analyzer independently re-summed from timed spans.
    resummed: u64,
    /// Timed-span buckets: label -> (count, total ns).
    buckets: BTreeMap<String, (u64, u64)>,
    /// σ-walk replays in order: (descriptor, mechanism, function).
    walk_steps: Vec<(Option<i64>, String, String)>,
    /// Mechanism firings inside the episode: mech -> total n.
    mech_counts: BTreeMap<String, u64>,
    /// Nesting depth at open time: 0 for a top-level fault, >0 for a
    /// correlated fault raised while this component's recovery was
    /// already in flight (a child in the episode tree).
    depth: usize,
    closed: bool,
}

/// The attribution bucket of one timed event.
fn bucket_of(ev: &Ev) -> String {
    match ev.kind.as_str() {
        "reboot" => "reboot".to_owned(),
        "walk_step" => format!("{}-walk", ev.mech.as_deref().unwrap_or("?")),
        "mechanism" => ev.mech.clone().unwrap_or_else(|| "?".to_owned()),
        other => other.to_owned(),
    }
}

/// Linear scan mirroring the kernel-side recorder: a `fault` on
/// component `c` pushes an episode on `c`'s stack (a correlated fault
/// mid-recovery pushes a *child*), each `episode_end` on `c` pops the
/// innermost, and timed events on `c` accumulate into the innermost open
/// episode alone — so attribution conservation holds independently for
/// every node of the episode tree.
fn episodes_of(shard: &Shard) -> Vec<Episode> {
    let mut open: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut eps: Vec<Episode> = Vec::new();
    for ev in &shard.events {
        match ev.kind.as_str() {
            "fault" => {
                let stack = open.entry(ev.comp).or_default();
                let idx = eps.len();
                eps.push(Episode {
                    component: comp_name(shard, ev.comp).to_owned(),
                    start: ev.ts,
                    end: ev.ts,
                    depth: stack.len(),
                    ..Episode::default()
                });
                stack.push(idx);
            }
            "episode_end" => {
                if let Some(idx) = open.get_mut(&ev.comp).and_then(Vec::pop) {
                    eps[idx].attributed = ev.attributed.unwrap_or(0);
                    eps[idx].end = ev.ts;
                    eps[idx].closed = true;
                }
            }
            _ => {
                if let Some(&idx) = open.get(&ev.comp).and_then(|s| s.last()) {
                    let ep = &mut eps[idx];
                    if ev.dur > 0 {
                        ep.resummed += ev.dur;
                        let b = ep.buckets.entry(bucket_of(ev)).or_insert((0, 0));
                        b.0 += 1;
                        b.1 += ev.dur;
                    }
                    if ev.kind == "walk_step" {
                        ep.walk_steps.push((
                            ev.desc,
                            ev.mech.clone().unwrap_or_default(),
                            ev.function.clone().unwrap_or_default(),
                        ));
                    }
                    if ev.kind == "mechanism" {
                        *ep.mech_counts
                            .entry(ev.mech.clone().unwrap_or_default())
                            .or_insert(0) += ev.n.unwrap_or(0);
                    }
                }
            }
        }
    }
    eps
}

fn buckets_line(ep: &Episode) -> String {
    ep.buckets
        .iter()
        .map(|(k, (n, ns))| format!("{k} {n}x{:.1}us", us(*ns)))
        .collect::<Vec<_>>()
        .join("  ")
}

// ---------------------------------------------------------------------
// timeline
// ---------------------------------------------------------------------

fn cmd_timeline(path: &str) -> Result<ExitCode, String> {
    let shards = parse_trace(path)?;
    let mut episodes = 0u64;
    let mut mismatches = 0u64;
    let mut unchecked = 0u64;
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut mech_totals: BTreeMap<String, u64> = BTreeMap::new();

    for shard in &shards {
        for ev in &shard.events {
            if ev.kind == "mechanism" {
                *mech_totals
                    .entry(ev.mech.clone().unwrap_or_default())
                    .or_insert(0) += ev.n.unwrap_or(0);
            }
        }
        let eps = episodes_of(shard);
        if eps.is_empty() {
            continue;
        }
        println!(
            "== {} ({} events, {} ambient + {} recovery-class dropped) ==",
            shard.label,
            shard.events.len(),
            shard.dropped,
            shard.dropped_recovery
        );
        for (i, ep) in eps.iter().enumerate() {
            episodes += 1;
            for (k, (n, ns)) in &ep.buckets {
                let t = totals.entry(k.clone()).or_insert((0, 0));
                t.0 += n;
                t.1 += ns;
            }
            let check = if shard.dropped_recovery > 0 {
                unchecked += 1;
                "SKIP (ring dropped recovery events)"
            } else if ep.resummed == ep.attributed {
                "OK"
            } else {
                mismatches += 1;
                "MISMATCH"
            };
            // Children of the episode tree print indented under their
            // parent fault (the preceding shallower episode).
            let tag = if ep.depth > 0 { " nested" } else { "" };
            println!(
                "  {:indent$}#{i:<3} {:<8}{tag} fault@{:>12.1}us  attributed {:>10.1}us  | {} | {check}",
                "",
                ep.component,
                us(ep.start),
                us(ep.attributed),
                buckets_line(ep),
                indent = ep.depth * 2,
            );
            if check == "MISMATCH" {
                println!(
                    "       re-summed spans total {:.1}us != recorded {:.1}us",
                    us(ep.resummed),
                    us(ep.attributed)
                );
            }
        }
    }

    println!();
    println!("mechanism firings (whole trace):");
    for (m, n) in &mech_totals {
        println!("  {m:<4} {n}");
    }
    println!("attributed latency by bucket (all episodes):");
    for (k, (n, ns)) in &totals {
        println!("  {k:<10} {n:>8}x  {:>14.1}us", us(*ns));
    }
    println!();
    if mismatches == 0 {
        println!(
            "{episodes} episodes: latency attribution conserved in all checked episodes \
             ({unchecked} skipped for ring overflow)"
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!("{mismatches}/{episodes} episodes FAILED attribution conservation");
        Ok(ExitCode::FAILURE)
    }
}

// ---------------------------------------------------------------------
// tree
// ---------------------------------------------------------------------

fn describe(shard: &Shard, ev: &Ev) -> String {
    let comp = comp_name(shard, ev.comp);
    let f = || ev.function.as_deref().unwrap_or("?");
    match ev.kind.as_str() {
        "fault" => match ev.depth {
            Some(d) if d > 0 => format!("FAULT {comp} (nested x{d})"),
            _ => format!("FAULT {comp}"),
        },
        "watchdog" => format!("WATCHDOG {comp} (hang detected)"),
        "degraded" => format!(
            "{comp} marked degraded until {:.1}us",
            us(ev.until.unwrap_or(0))
        ),
        "cold_restart" => format!(
            "cold restart {comp} -> epoch {} ({:.1}us)",
            ev.epoch,
            us(ev.dur)
        ),
        "reboot" => format!("reboot {comp} -> epoch {} ({:.1}us)", ev.epoch, us(ev.dur)),
        "walk_step" => format!(
            "{} replay {comp}.{}{} ({:.1}us)",
            ev.mech.as_deref().unwrap_or("?"),
            f(),
            ev.desc.map(|d| format!(" desc={d}")).unwrap_or_default(),
            us(ev.dur)
        ),
        "mechanism" => {
            let base = format!(
                "{} x{}",
                ev.mech.as_deref().unwrap_or("?"),
                ev.n.unwrap_or(0)
            );
            if ev.dur > 0 {
                format!("{base} ({:.1}us)", us(ev.dur))
            } else {
                base
            }
        }
        "invoke_enter" => format!("call {comp}.{}", f()),
        "invoke_exit" => format!("ret {}", ev.outcome.as_deref().unwrap_or("?")),
        "upcall" => format!("upcall {comp}.{} ", f()),
        "wake" => format!("wake ({comp})"),
        "block" => format!("block in {comp}"),
        "sleep" => "sleep".to_owned(),
        "desc_created" => format!("{comp} tracks desc {}", ev.desc.unwrap_or(0)),
        "desc_closed" => format!(
            "{comp} drops desc {} (+{} in subtree)",
            ev.desc.unwrap_or(0),
            ev.n.unwrap_or(0)
        ),
        "episode_end" => format!(
            "episode end: {:.1}us attributed",
            us(ev.attributed.unwrap_or(0))
        ),
        other => other.to_owned(),
    }
}

fn print_subtree(
    shard: &Shard,
    by_span: &BTreeMap<u64, usize>,
    children: &BTreeMap<u64, Vec<u64>>,
    span: u64,
    depth: usize,
) {
    if depth > 64 {
        return;
    }
    let Some(&idx) = by_span.get(&span) else {
        return;
    };
    let ev = &shard.events[idx];
    println!(
        "{:indent$}{} @{:.1}us",
        "",
        describe(shard, ev),
        us(ev.ts),
        indent = depth * 2
    );
    if let Some(kids) = children.get(&span) {
        for &k in kids {
            print_subtree(shard, by_span, children, k, depth + 1);
        }
    }
}

fn cmd_tree(path: &str) -> Result<ExitCode, String> {
    let shards = parse_trace(path)?;
    for shard in &shards {
        let mut by_span: BTreeMap<u64, usize> = BTreeMap::new();
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (i, ev) in shard.events.iter().enumerate() {
            by_span.insert(ev.span, i);
            if let Some(p) = ev.parent {
                children.entry(p).or_default().push(ev.span);
            }
        }
        // Children in event-time order (span allocation order tracks it).
        for kids in children.values_mut() {
            kids.sort_by_key(|&s| {
                let ev = &shard.events[by_span[&s]];
                (ev.ts, ev.span)
            });
        }
        // Only parentless faults root a tree: a nested (correlated)
        // fault carries a causal parent and prints indented inside the
        // episode it interrupted.
        let faults: Vec<u64> = shard
            .events
            .iter()
            .filter(|e| e.kind == "fault" && e.parent.is_none())
            .map(|e| e.span)
            .collect();
        if faults.is_empty() {
            continue;
        }
        println!("== {} ==", shard.label);
        for root in faults {
            print_subtree(shard, &by_span, &children, root, 1);
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------

fn mech_summary(eps: &[Episode]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for ep in eps {
        for (m, n) in &ep.mech_counts {
            *out.entry(m.clone()).or_insert(0) += n;
        }
    }
    out
}

fn cmd_diff(a_path: &str, b_path: &str) -> Result<ExitCode, String> {
    let a = parse_trace(a_path)?;
    let b = parse_trace(b_path)?;
    let mut differing = 0u64;
    let mut compared = 0u64;
    if a.len() != b.len() {
        println!("shard count differs: {} vs {}", a.len(), b.len());
        differing += 1;
    }
    for (i, (sa, sb)) in a.iter().zip(&b).enumerate() {
        if sa.label != sb.label {
            println!("shard {i}: label {:?} vs {:?}", sa.label, sb.label);
        }
        let ea = episodes_of(sa);
        let eb = episodes_of(sb);
        if ea.is_empty() && eb.is_empty() {
            continue;
        }
        let mut header_shown = false;
        let show_header = |shown: &mut bool| {
            if !*shown {
                println!("== {} vs {} ==", sa.label, sb.label);
                *shown = true;
            }
        };
        if ea.len() != eb.len() {
            show_header(&mut header_shown);
            println!("  episode count: {} vs {}", ea.len(), eb.len());
            differing += 1;
        }
        for (k, (pa, pb)) in ea.iter().zip(&eb).enumerate() {
            compared += 1;
            let same = pa.component == pb.component
                && pa.attributed == pb.attributed
                && pa.buckets == pb.buckets
                && pa.mech_counts == pb.mech_counts;
            if same {
                continue;
            }
            differing += 1;
            show_header(&mut header_shown);
            println!(
                "  #{k} {}: attributed {:.1}us vs {:.1}us",
                pa.component,
                us(pa.attributed),
                us(pb.attributed)
            );
            let keys: BTreeSet<&String> = pa.buckets.keys().chain(pb.buckets.keys()).collect();
            for key in keys {
                let (na, da) = pa.buckets.get(key).copied().unwrap_or((0, 0));
                let (nb, db) = pb.buckets.get(key).copied().unwrap_or((0, 0));
                if (na, da) != (nb, db) {
                    println!("      {key}: {na}x{:.1}us vs {nb}x{:.1}us", us(da), us(db));
                }
            }
        }
        // Whole-shard mechanism totals, when they differ.
        let (ma, mb) = (mech_summary(&ea), mech_summary(&eb));
        if ma != mb {
            show_header(&mut header_shown);
            let keys: BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
            let line: Vec<String> = keys
                .into_iter()
                .filter(|k| ma.get(*k) != mb.get(*k))
                .map(|k| {
                    format!(
                        "{k} {}vs{}",
                        ma.get(k).copied().unwrap_or(0),
                        mb.get(k).copied().unwrap_or(0)
                    )
                })
                .collect();
            println!("  mechanism totals differ: {}", line.join(", "));
        }
    }
    println!();
    if differing == 0 {
        println!("traces are episode-equivalent ({compared} episodes compared)");
    } else {
        println!("{differing} differences across {compared} compared episodes");
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------
// verify
// ---------------------------------------------------------------------

/// Expand one walk into every concrete replay plan the runtime may
/// legally emit for it: verbatim function names, with the
/// `sm_recover_block` substitution allowed at blocking steps, and — when
/// the interface declares a `*_restore` upcall — the restore function in
/// place of the creation step.
fn expand_walk(spec: &CompiledStubSpec, walk: &[FnId], plans: &mut BTreeSet<Vec<String>>) {
    let opts: Vec<Vec<String>> = walk
        .iter()
        .map(|&fid| {
            let mut o = vec![spec.machine.function_name(fid).to_owned()];
            if spec.machine.roles(fid).blocks {
                if let Some(&g) = spec.recover_block.get(&fid) {
                    o.push(spec.machine.function_name(g).to_owned());
                }
            }
            o
        })
        .collect();
    let mut acc: Vec<Vec<String>> = vec![Vec::new()];
    for o in &opts {
        let mut next = Vec::new();
        for prefix in &acc {
            for choice in o {
                let mut p = prefix.clone();
                p.push(choice.clone());
                next.push(p);
            }
        }
        acc = next;
    }
    for p in acc {
        if let Some((rf, _)) = &spec.restore {
            // Global creator recovery replaces the creation step (walk
            // position 0) with the restore upcall.
            let mut sub = vec![rf.clone()];
            sub.extend(p.iter().skip(1).cloned());
            plans.insert(sub);
        }
        if !p.is_empty() {
            plans.insert(p);
        }
    }
}

/// Every replay plan computable from one interface's compiled spec.
fn plans_for(spec: &CompiledStubSpec) -> Vec<Vec<String>> {
    let mut plans: BTreeSet<Vec<String>> = BTreeSet::new();
    let nf = spec.machine.functions().len();
    let mut walks: BTreeSet<Vec<FnId>> = BTreeSet::new();
    for i in 0..nf {
        let f = FnId(i as u32);
        let target = spec.recover_via.get(&f).copied().unwrap_or(f);
        if let Ok(w) = spec.machine.recovery_walk(State::After(target)) {
            walks.insert(w);
        }
    }
    walks.insert(Vec::new());
    for w in &walks {
        expand_walk(spec, w, &mut plans);
    }
    plans.into_iter().collect()
}

/// Whether `seq` appears as a contiguous slice of `plan`.
fn is_slice_of(seq: &[String], plan: &[String]) -> bool {
    seq.len() <= plan.len() && plan.windows(seq.len()).any(|w| w == seq)
}

/// Longest prefix of `seq` that is a contiguous slice of some plan.
fn longest_explained_prefix(seq: &[String], plans: &[Vec<String>]) -> usize {
    for k in (1..=seq.len()).rev() {
        if plans.iter().any(|p| is_slice_of(&seq[..k], p)) {
            return k;
        }
    }
    0
}

/// An observed replay sequence conforms when it decomposes into
/// contiguous slices of valid plans (a walk may be entered mid-way after
/// a T1 deferral and may stop early at one, so any slice is legal).
fn conforms(seq: &[String], plans: &[Vec<String>]) -> bool {
    let mut rest = seq;
    while !rest.is_empty() {
        let k = longest_explained_prefix(rest, plans);
        if k == 0 {
            return false;
        }
        rest = &rest[k..];
    }
    true
}

fn cmd_verify(path: &str) -> Result<ExitCode, String> {
    let shards = parse_trace(path)?;
    let compiled = superglue::compile_all().map_err(|e| format!("shipped IDL: {e}"))?;
    let mut plans: BTreeMap<String, Vec<Vec<String>>> = compiled
        .iter()
        .map(|(iface, c)| (iface.to_owned(), plans_for(&c.stub_spec)))
        .collect();
    // The pipeline macro-benchmark's two channel components both speak
    // the chan interface under their own kernel component names.
    let chan_plans = plans_for(&sg_pipeline::compile_chan().stub_spec);
    plans.insert("chan_ab".to_owned(), chan_plans.clone());
    plans.insert("chan_bc".to_owned(), chan_plans);

    let mut checked = 0u64;
    let mut skipped_untagged = 0u64;
    let mut skipped_foreign = 0u64;
    let mut violations = 0u64;
    for shard in &shards {
        for (ei, ep) in episodes_of(shard).iter().enumerate() {
            // Group the episode's walk steps by descriptor, preserving
            // replay order. C³'s hand-written stubs do not expose
            // descriptor ids on walk steps (desc null) — those are
            // counted but cannot be checked against a per-descriptor
            // plan.
            let mut groups: BTreeMap<i64, Vec<String>> = BTreeMap::new();
            for (desc, _mech, function) in &ep.walk_steps {
                match desc {
                    Some(d) => groups.entry(*d).or_default().push(function.clone()),
                    None => skipped_untagged += 1,
                }
            }
            for (desc, seq) in &groups {
                let Some(iface_plans) = plans.get(&ep.component) else {
                    skipped_foreign += 1;
                    continue;
                };
                checked += 1;
                if !conforms(seq, iface_plans) {
                    violations += 1;
                    println!(
                        "VIOLATION {}: episode #{ei} ({}) desc {desc}: observed replay {:?} \
                         is not explainable by any IDL-computable plan",
                        shard.label, ep.component, seq
                    );
                    for p in iface_plans {
                        println!("    valid plan: {p:?}");
                    }
                }
            }
        }
    }
    println!();
    println!(
        "{checked} per-descriptor replay sequences checked against IDL plans \
         ({skipped_untagged} untagged C3 steps and {skipped_foreign} foreign-interface \
         groups skipped)"
    );
    if violations == 0 {
        println!("all observed recovery walks conform to the IDL replay plans");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("{violations} non-conforming replay sequences");
        Ok(ExitCode::FAILURE)
    }
}

// ---------------------------------------------------------------------
// replay
// ---------------------------------------------------------------------

/// Load the core-event sequence of a `modelcheck` artifact (an object
/// with an `"events"` array) or a bare JSON-lines event log.
fn load_events(path: &str) -> Result<Vec<composite::Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let decode = |j: &Json, at: String| event_from_json(j).map_err(|e| format!("{at}: {e}"));
    if let Ok(j) = Json::parse(&text) {
        if let Some(evs) = j.get("events").and_then(Json::as_array) {
            if j.get("model").and_then(Json::as_str) == Some("system") {
                return Err(
                    "this is a system-layer counterexample (testbed operations, not core \
                     events); replay applies to core-layer artifacts"
                        .to_owned(),
                );
            }
            return evs
                .iter()
                .enumerate()
                .map(|(i, e)| decode(e, format!("{path}: events[{i}]")))
                .collect();
        }
    }
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(n, l)| {
            let j = Json::parse(l).map_err(|e| format!("{path}:{}: {e}", n + 1))?;
            decode(&j, format!("{path}:{}", n + 1))
        })
        .collect()
}

fn print_state(state: &composite::KernelState) {
    println!("  time {}ns", state.time.0);
    for (i, m) in state.components.iter().enumerate() {
        let mut flags = Vec::new();
        if m.state != composite::kernel::ComponentState::Active {
            flags.push("FAULTY".to_owned());
        }
        if let Some(until) = state.degraded_until(composite::ComponentId(i as u32)) {
            flags.push(format!(
                "degraded until {}ns{}",
                until.0,
                if state.time < until { "" } else { " (elapsed)" }
            ));
        }
        if let Some(hist) = state.reboot_history.get(&(i as u32)) {
            if !hist.is_empty() {
                flags.push(format!("{} reboots in window", hist.len()));
            }
        }
        println!(
            "  comp {i}: epoch {} {}{}",
            m.epoch.0,
            if m.has_service { "service" } else { "client" },
            flags.iter().map(|f| format!("  [{f}]")).collect::<String>()
        );
    }
    for t in state.threads.iter() {
        let st = match t.state {
            ThreadState::Runnable => "runnable".to_owned(),
            ThreadState::Blocked { in_component } => {
                format!("BLOCKED in comp {}", in_component.0)
            }
            ThreadState::SleepingUntil(d) => format!("sleeping until {}ns", d.0),
            other => format!("{other:?}"),
        };
        let stack: Vec<u32> = t.invocation_stack.iter().map(|c| c.0).collect();
        println!(
            "  thread {}: {st}, home comp {}, stack {stack:?}",
            t.id.0, t.home.0
        );
    }
    if !state.active_recoveries.is_empty() {
        let stack: Vec<u32> = state.active_recoveries.iter().map(|c| c.0).collect();
        println!("  open recovery actions (innermost last): {stack:?}");
    }
    if let Some(v) = state.armed_recovery_fault {
        println!("  armed during-recovery fault on comp {}", v.0);
    }
}

fn cmd_replay(path: &str, to: Option<u64>) -> Result<ExitCode, String> {
    let events = load_events(path)?;
    if events.is_empty() {
        return Err(format!("{path}: no events to replay"));
    }
    // The artifact records the walk's generated events; the fixed model
    // topology they ran against comes from a fresh KernelWalk.
    let mut walk = KernelWalk::new();
    walk.reset();
    // One O(1) snapshot per event: `KernelState` tables are Arc-shared,
    // so keeping every intermediate state costs refcount bumps plus only
    // the copy-on-write deltas each step actually touched.
    let mut snapshots = vec![walk.state.clone()];
    let mut replies = Vec::new();
    for ev in &events {
        let (next, fx) = step(snapshots.last().expect("seeded"), ev);
        snapshots.push(next);
        replies.push(fx.reply);
    }
    let last = events.len() as u64 - 1;
    let target = to.unwrap_or(last);
    if target > last {
        return Err(format!("--to {target}: artifact has spans 0..={last}"));
    }
    let idx = target as usize;
    println!(
        "replayed {} events through the pure core ({} snapshots retained)",
        events.len(),
        snapshots.len()
    );
    println!();
    for (i, ev) in events.iter().enumerate().take(idx + 1) {
        let marker = if i == idx { ">" } else { " " };
        println!("{marker} [{i:>3}] {:?} -> {:?}", ev, replies[i]);
    }
    println!();
    println!("state after span {target}:");
    print_state(&snapshots[idx + 1]);
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------

const USAGE: &str = "usage: sgtrace <timeline|tree|verify> TRACE.jsonl \
                     | sgtrace diff A.jsonl B.jsonl \
                     | sgtrace replay ARTIFACT.json [--to SPAN]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("timeline") if args.len() == 2 => cmd_timeline(&args[1]),
        Some("tree") if args.len() == 2 => cmd_tree(&args[1]),
        Some("diff") if args.len() == 3 => cmd_diff(&args[1], &args[2]),
        Some("verify") if args.len() == 2 => cmd_verify(&args[1]),
        Some("replay") if args.len() == 2 => cmd_replay(&args[1], None),
        Some("replay") if args.len() == 4 && args[2] == "--to" => match args[3].parse() {
            Ok(n) => cmd_replay(&args[1], Some(n)),
            Err(e) => Err(format!("--to {:?}: {e}", args[3])),
        },
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("sgtrace: {e}");
            ExitCode::FAILURE
        }
    }
}
