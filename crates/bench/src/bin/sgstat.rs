//! `sgstat`: recovery-SLO analytics over the harnesses' JSON-lines
//! artifacts (`--trace`, `--series`, `--metrics`).
//!
//! Where `sgtrace` answers *what happened* inside individual recovery
//! episodes, `sgstat` answers *how well the system kept its promises*:
//!
//! * `sgstat series SERIES.jsonl` — per-component summary of the
//!   windowed telemetry a harness wrote with `--series`: invocation /
//!   fault / mechanism totals plus the worst window by fault count and
//!   by recovery-latency p99.
//! * `sgstat avail TRACE.jsonl` — availability, MTTR, and MTBF per
//!   component from fault → `episode_end` spans (nested episodes,
//!   watchdog fires, degraded windows, and cold restarts included),
//!   with a conservation audit: independently re-summed timed spans
//!   must equal the kernel-attributed downtime (exit 1 on mismatch,
//!   SKIP when the ring dropped recovery-class events).
//! * `sgstat critpath TRACE.jsonl [--collapse]` — the dominant
//!   mechanism chain of every episode and whole-trace bucket ranking;
//!   `--collapse` emits flamegraph collapsed stacks instead.
//! * `sgstat export METRICS.jsonl` — the `--metrics` dump re-rendered
//!   as an OpenMetrics text exposition (quantiles recomputed from the
//!   shipped log₂ histograms).
//! * `sgstat slo TRACE.jsonl [--max-p99-ns N] [--min-availability X]`
//!   — gate a trace against an SLO policy; any violation (including a
//!   failed conservation audit) exits nonzero, so CI can enforce
//!   recovery-latency and availability budgets.

use std::process::ExitCode;

use sg_bench::stat::{
    avail_report, collapsed_stacks, critpath_report, evaluate_slo, openmetrics_from_metrics,
    parse_series, parse_trace, series_report, Conservation, SloPolicy,
};

fn cmd_series(path: &str) -> Result<ExitCode, String> {
    let file = parse_series(path)?;
    print!("{}", series_report(&file));
    Ok(ExitCode::SUCCESS)
}

fn cmd_avail(path: &str) -> Result<ExitCode, String> {
    let shards = parse_trace(path)?;
    let report = avail_report(&shards);
    print!("{}", report.render());
    Ok(match report.conservation() {
        Conservation::Mismatch(_) => ExitCode::FAILURE,
        Conservation::Ok | Conservation::Skip => ExitCode::SUCCESS,
    })
}

fn cmd_critpath(path: &str, collapse: bool) -> Result<ExitCode, String> {
    let shards = parse_trace(path)?;
    if collapse {
        print!("{}", collapsed_stacks(&shards));
    } else {
        print!("{}", critpath_report(&shards));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_export(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let om = openmetrics_from_metrics(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{om}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_slo(path: &str, policy: &SloPolicy) -> Result<ExitCode, String> {
    let shards = parse_trace(path)?;
    let report = avail_report(&shards);
    let slo = evaluate_slo(&report, policy);
    println!(
        "observed: availability {:.6}%, p99 recovery {:.1}us over {} episode(s)",
        slo.availability * 100.0,
        slo.p99_ns as f64 / 1000.0,
        slo.episodes
    );
    if slo.conservation_skipped {
        println!("conservation: SKIP (ring dropped recovery-class events)");
    }
    if slo.violations.is_empty() {
        println!("SLO: PASS");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("SLO: FAIL");
        for v in &slo.violations {
            println!("  {v}");
        }
        Ok(ExitCode::FAILURE)
    }
}

const USAGE: &str = "usage: sgstat series SERIES.jsonl \
                     | sgstat avail TRACE.jsonl \
                     | sgstat critpath TRACE.jsonl [--collapse] \
                     | sgstat export METRICS.jsonl \
                     | sgstat slo TRACE.jsonl [--max-p99-ns N] [--min-availability X]";

fn parse_slo_args(args: &[String]) -> Result<SloPolicy, String> {
    let mut policy = SloPolicy::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--max-p99-ns" => {
                policy.max_p99_ns = Some(value.parse().map_err(|e| format!("--max-p99-ns: {e}"))?);
            }
            "--min-availability" => {
                let x: f64 = value
                    .parse()
                    .map_err(|e| format!("--min-availability: {e}"))?;
                if !(0.0..=1.0).contains(&x) {
                    return Err("--min-availability must be in 0.0..=1.0".to_owned());
                }
                policy.min_availability = Some(x);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(policy)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("series") if args.len() == 2 => cmd_series(&args[1]),
        Some("avail") if args.len() == 2 => cmd_avail(&args[1]),
        Some("critpath") if args.len() == 2 => cmd_critpath(&args[1], false),
        Some("critpath") if args.len() == 3 && args[2] == "--collapse" => {
            cmd_critpath(&args[1], true)
        }
        Some("export") if args.len() == 2 => cmd_export(&args[1]),
        Some("slo") if args.len() >= 2 => match parse_slo_args(&args[2..]) {
            Ok(policy) => cmd_slo(&args[1], &policy),
            Err(e) => Err(e),
        },
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("sgstat: {e}");
            ExitCode::FAILURE
        }
    }
}
