//! Recovery-SLO analytics shared by the `sgstat` binary and the test
//! suite.
//!
//! Everything here is a pure function from the JSON-lines artifacts the
//! harnesses emit (`--trace`, `--series`, `--metrics`) to deterministic
//! reports — no clocks, no randomness, no ordering dependence beyond
//! the (already deterministic) order of the input files. That is what
//! lets `tests/determinism.rs` assert that `sgstat avail` summaries are
//! byte-identical for any `--jobs` value.
//!
//! * [`parse_trace_text`] / [`episodes_of`] — minimal flight-recorder
//!   reader mirroring the kernel-side episode stacks (innermost-open
//!   attribution, so nested episodes never double count).
//! * [`avail_report`] — availability / MTTR / MTBF accounting from
//!   fault → `episode_end` spans, plus the degraded-time split and a
//!   conservation audit (re-summed timed spans must equal the recorded
//!   attributed latency for every component).
//! * [`critpath_report`] / [`collapsed_stacks`] — dominant mechanism
//!   chain per episode and a flamegraph-ready collapsed-stack export.
//! * [`parse_series_text`] / [`series_report`] — windowed-telemetry
//!   summaries from `--series` dumps.
//! * [`openmetrics_from_metrics`] — `--metrics` rows re-rendered as an
//!   OpenMetrics text exposition (quantiles recomputed from the shipped
//!   log₂ histograms via [`LatencyStat::quantile_ns`]).
//! * [`evaluate_slo`] — gate a trace against `--max-p99-ns` /
//!   `--min-availability` thresholds; violations make `sgstat slo`
//!   exit nonzero.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use composite::{Json, LatencyStat};

// ---------------------------------------------------------------------
// Trace model
// ---------------------------------------------------------------------

/// One parsed flight-recorder shard: the header line plus its events.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    pub label: String,
    pub names: Vec<String>,
    pub dropped: u64,
    /// Recovery-class events lost to ring overflow; when zero, latency
    /// attribution is complete even if ambient `dropped > 0`.
    pub dropped_recovery: u64,
    pub events: Vec<Ev>,
}

/// One parsed trace event — only the fields the analytics need.
#[derive(Debug, Clone, Default)]
pub struct Ev {
    pub ts: u64,
    pub dur: u64,
    pub comp: u64,
    pub kind: String,
    pub mech: Option<String>,
    pub n: Option<u64>,
    pub attributed: Option<u64>,
    /// Nesting depth of a correlated fault (present only when > 0).
    pub depth: Option<u64>,
    pub until: Option<u64>,
}

impl Ev {
    fn from_json(j: &Json) -> Result<Ev, String> {
        Ok(Ev {
            ts: j.get("ts").and_then(Json::as_u64).ok_or("missing ts")?,
            dur: j.get("dur").and_then(Json::as_u64).unwrap_or(0),
            comp: j.get("comp").and_then(Json::as_u64).unwrap_or(0),
            kind: j
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("missing kind")?
                .to_owned(),
            mech: j.get("mech").and_then(Json::as_str).map(str::to_owned),
            n: j.get("n").and_then(Json::as_u64),
            attributed: j.get("attributed").and_then(Json::as_u64),
            depth: j.get("depth").and_then(Json::as_u64),
            until: j.get("until").and_then(Json::as_u64),
        })
    }
}

/// Parse a `--trace` JSON-lines dump (possibly many shards) from text.
pub fn parse_trace_text(text: &str) -> Result<Vec<Shard>, String> {
    let mut shards: Vec<Shard> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some(label) = j.get("shard").and_then(Json::as_str) {
            shards.push(Shard {
                label: label.to_owned(),
                names: j
                    .get("names")
                    .and_then(Json::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Json::as_str)
                            .map(str::to_owned)
                            .collect()
                    })
                    .unwrap_or_default(),
                dropped: j.get("dropped").and_then(Json::as_u64).unwrap_or(0),
                dropped_recovery: j
                    .get("dropped_recovery")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                events: Vec::new(),
            });
        } else {
            let ev = Ev::from_json(&j).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            shards
                .last_mut()
                .ok_or_else(|| format!("line {}: event before any shard header", lineno + 1))?
                .events
                .push(ev);
        }
    }
    Ok(shards)
}

/// Parse a `--trace` dump from a file path.
pub fn parse_trace(path: &str) -> Result<Vec<Shard>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_trace_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn comp_name(shard: &Shard, comp: u64) -> &str {
    shard.names.get(comp as usize).map_or("?", String::as_str)
}

fn us(ns: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        ns as f64 / 1000.0
    }
}

// ---------------------------------------------------------------------
// Episode reconstruction
// ---------------------------------------------------------------------

/// One reconstructed recovery episode (fault → `episode_end`).
#[derive(Debug, Clone, Default)]
pub struct Episode {
    pub component: String,
    pub start: u64,
    pub end: u64,
    /// Latency the kernel attributed (from the `episode_end` event).
    pub attributed: u64,
    /// Latency independently re-summed from this episode's timed spans.
    pub resummed: u64,
    /// Timed-span buckets: label -> (count, total ns).
    pub buckets: BTreeMap<String, (u64, u64)>,
    /// 0 for a top-level fault, >0 for a correlated fault raised while
    /// this component's recovery was already in flight.
    pub depth: usize,
    pub closed: bool,
}

/// The attribution bucket of one timed event.
fn bucket_of(ev: &Ev) -> String {
    match ev.kind.as_str() {
        "reboot" => "reboot".to_owned(),
        "walk_step" => format!("{}-walk", ev.mech.as_deref().unwrap_or("?")),
        "mechanism" => ev.mech.clone().unwrap_or_else(|| "?".to_owned()),
        other => other.to_owned(),
    }
}

/// Linear scan mirroring the kernel-side recorder: a `fault` on
/// component `c` pushes an episode on `c`'s stack, each `episode_end`
/// pops the innermost, and timed events accumulate into the innermost
/// open episode alone — so durations are never double counted between a
/// parent episode and its nested children.
pub fn episodes_of(shard: &Shard) -> Vec<Episode> {
    let mut open: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut eps: Vec<Episode> = Vec::new();
    for ev in &shard.events {
        match ev.kind.as_str() {
            "fault" => {
                let stack = open.entry(ev.comp).or_default();
                let idx = eps.len();
                eps.push(Episode {
                    component: comp_name(shard, ev.comp).to_owned(),
                    start: ev.ts,
                    end: ev.ts,
                    depth: stack.len(),
                    ..Episode::default()
                });
                stack.push(idx);
            }
            "episode_end" => {
                if let Some(idx) = open.get_mut(&ev.comp).and_then(Vec::pop) {
                    eps[idx].attributed = ev.attributed.unwrap_or(0);
                    eps[idx].end = ev.ts;
                    eps[idx].closed = true;
                }
            }
            _ => {
                if let Some(&idx) = open.get(&ev.comp).and_then(|s| s.last()) {
                    let ep = &mut eps[idx];
                    if ev.dur > 0 {
                        ep.resummed += ev.dur;
                        let b = ep.buckets.entry(bucket_of(ev)).or_insert((0, 0));
                        b.0 += 1;
                        b.1 += ev.dur;
                    }
                }
            }
        }
    }
    eps
}

// ---------------------------------------------------------------------
// Availability / MTTR / MTBF
// ---------------------------------------------------------------------

/// Per-component availability accounting over every shard it appears in.
#[derive(Debug, Clone, Default)]
pub struct ComponentAvail {
    /// Simulated time observed: the sum of the wall lengths of every
    /// shard in which this component logged recovery-class activity.
    pub observed_ns: u64,
    /// Total attributed recovery latency (top-level + nested episodes;
    /// innermost attribution keeps the spans disjoint).
    pub downtime_ns: u64,
    /// Independently re-summed timed spans — must equal `downtime_ns`
    /// for conservation to hold.
    pub resummed_ns: u64,
    /// Time spent in a degraded window (`degraded` mark → `until`,
    /// clamped to the shard horizon). Degraded time is availability at
    /// reduced service, reported separately from downtime.
    pub degraded_ns: u64,
    /// Top-level (depth 0) recovery episodes.
    pub episodes: u64,
    /// Nested (correlated-fault) episodes.
    pub nested_episodes: u64,
    pub watchdog_fires: u64,
    pub cold_restarts: u64,
    pub reboots: u64,
    /// Attributed latencies of top-level episodes, sorted ascending.
    pub latencies_ns: Vec<u64>,
}

impl ComponentAvail {
    /// Availability as a fraction of observed simulated time.
    #[must_use]
    pub fn availability(&self) -> f64 {
        if self.observed_ns == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            1.0 - self.downtime_ns as f64 / self.observed_ns as f64
        }
    }

    /// Mean time to recover: downtime per top-level episode.
    #[must_use]
    pub fn mttr_ns(&self) -> u64 {
        self.downtime_ns.checked_div(self.episodes).unwrap_or(0)
    }

    /// Mean time between failures: uptime per top-level episode.
    #[must_use]
    pub fn mtbf_ns(&self) -> u64 {
        self.observed_ns
            .saturating_sub(self.downtime_ns)
            .checked_div(self.episodes)
            .unwrap_or(0)
    }
}

/// Exact nearest-rank quantile over a sorted latency list.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Outcome of the attribution-conservation audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conservation {
    /// Every component's re-summed spans equal its attributed latency.
    Ok,
    /// The ring dropped recovery-class events; the audit is unsound and
    /// was skipped.
    Skip,
    /// At least one component's books don't balance (messages inside).
    Mismatch(Vec<String>),
}

/// Whole-trace availability report.
#[derive(Debug, Clone, Default)]
pub struct AvailReport {
    pub components: BTreeMap<String, ComponentAvail>,
    /// Sum of shard wall lengths across the whole trace.
    pub horizon_ns: u64,
    pub shards: usize,
    pub dropped_recovery: u64,
}

impl AvailReport {
    /// Totals across every component row.
    #[must_use]
    pub fn total(&self) -> ComponentAvail {
        let mut t = ComponentAvail::default();
        for c in self.components.values() {
            t.observed_ns += c.observed_ns;
            t.downtime_ns += c.downtime_ns;
            t.resummed_ns += c.resummed_ns;
            t.degraded_ns += c.degraded_ns;
            t.episodes += c.episodes;
            t.nested_episodes += c.nested_episodes;
            t.watchdog_fires += c.watchdog_fires;
            t.cold_restarts += c.cold_restarts;
            t.reboots += c.reboots;
            t.latencies_ns.extend_from_slice(&c.latencies_ns);
        }
        t.latencies_ns.sort_unstable();
        t
    }

    /// p99 of top-level episode recovery latency across all components
    /// (exact nearest-rank, not a histogram estimate).
    #[must_use]
    pub fn p99_recovery_ns(&self) -> u64 {
        exact_quantile(&self.total().latencies_ns, 0.99)
    }

    /// Run the conservation audit: per component, re-summed timed spans
    /// must equal the kernel-attributed episode latency.
    #[must_use]
    pub fn conservation(&self) -> Conservation {
        if self.dropped_recovery > 0 {
            return Conservation::Skip;
        }
        let mut bad = Vec::new();
        for (name, c) in &self.components {
            if c.resummed_ns != c.downtime_ns {
                bad.push(format!(
                    "{name}: re-summed spans {:.1}us != attributed {:.1}us",
                    us(c.resummed_ns),
                    us(c.downtime_ns)
                ));
            }
        }
        if bad.is_empty() {
            Conservation::Ok
        } else {
            Conservation::Mismatch(bad)
        }
    }

    /// Deterministic text rendering (what `sgstat avail` prints).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "availability over {} shard(s), {:.1}us simulated",
            self.shards,
            us(self.horizon_ns)
        );
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "component",
            "avail",
            "eps",
            "downtime_us",
            "degraded_us",
            "mttr_us",
            "mtbf_us",
            "p99_us"
        );
        for (name, c) in &self.components {
            let p99 = exact_quantile(&c.latencies_ns, 0.99);
            let _ = writeln!(
                out,
                "{:<10} {:>11.6}% {:>7} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                name,
                c.availability() * 100.0,
                c.episodes,
                us(c.downtime_ns),
                us(c.degraded_ns),
                us(c.mttr_ns()),
                us(c.mtbf_ns()),
                us(p99)
            );
        }
        let t = self.total();
        let _ = writeln!(
            out,
            "{:<10} {:>11.6}% {:>7} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            "TOTAL",
            t.availability() * 100.0,
            t.episodes,
            us(t.downtime_ns),
            us(t.degraded_ns),
            us(t.mttr_ns()),
            us(t.mtbf_ns()),
            us(exact_quantile(&t.latencies_ns, 0.99))
        );
        let _ = writeln!(
            out,
            "episodes: {} top-level, {} nested; {} watchdog fire(s), {} cold restart(s), {} reboot(s)",
            t.episodes, t.nested_episodes, t.watchdog_fires, t.cold_restarts, t.reboots
        );
        match self.conservation() {
            Conservation::Ok => {
                let _ = writeln!(out, "conservation: OK (spans account for 100% of downtime)");
            }
            Conservation::Skip => {
                let _ = writeln!(
                    out,
                    "conservation: SKIP ({} recovery-class event(s) dropped)",
                    self.dropped_recovery
                );
            }
            Conservation::Mismatch(bad) => {
                let _ = writeln!(out, "conservation: MISMATCH");
                for b in &bad {
                    let _ = writeln!(out, "  {b}");
                }
            }
        }
        out
    }
}

/// Build the availability report from parsed shards.
#[must_use]
pub fn avail_report(shards: &[Shard]) -> AvailReport {
    let mut report = AvailReport {
        shards: shards.len(),
        ..AvailReport::default()
    };
    for shard in shards {
        report.dropped_recovery += shard.dropped_recovery;
        let horizon = shard
            .events
            .iter()
            .map(|e| e.ts.saturating_add(e.dur))
            .max()
            .unwrap_or(0);
        report.horizon_ns += horizon;
        // Components with recovery-class activity in this shard: their
        // observed time grows by the shard's wall length.
        let mut active: BTreeMap<u64, ()> = BTreeMap::new();
        for ev in &shard.events {
            match ev.kind.as_str() {
                "fault" | "episode_end" | "watchdog" | "degraded" | "cold_restart" => {
                    active.insert(ev.comp, ());
                }
                _ => {}
            }
        }
        for &comp in active.keys() {
            report
                .components
                .entry(comp_name(shard, comp).to_owned())
                .or_default()
                .observed_ns += horizon;
        }
        for ev in &shard.events {
            let slot = || comp_name(shard, ev.comp).to_owned();
            match ev.kind.as_str() {
                "watchdog" => {
                    report.components.entry(slot()).or_default().watchdog_fires += 1;
                }
                "cold_restart" => {
                    report.components.entry(slot()).or_default().cold_restarts += 1;
                }
                "reboot" => {
                    if let Some(c) = report.components.get_mut(&slot()) {
                        c.reboots += 1;
                    }
                }
                "degraded" => {
                    // A degraded window may be declared to end past the
                    // last recorded event; report the full declared span.
                    let until = ev.until.unwrap_or(ev.ts);
                    report.components.entry(slot()).or_default().degraded_ns +=
                        until.saturating_sub(ev.ts);
                }
                _ => {}
            }
        }
        for ep in episodes_of(shard) {
            let c = report.components.entry(ep.component.clone()).or_default();
            c.downtime_ns += ep.attributed;
            c.resummed_ns += ep.resummed;
            if ep.depth == 0 {
                c.episodes += 1;
                c.latencies_ns.push(ep.attributed);
            } else {
                c.nested_episodes += 1;
            }
        }
    }
    for c in report.components.values_mut() {
        c.latencies_ns.sort_unstable();
    }
    report
}

// ---------------------------------------------------------------------
// Critical-path profiling
// ---------------------------------------------------------------------

/// Dominant-chain report: per episode, the attribution buckets ranked
/// by time; plus whole-trace bucket totals with percentages.
#[must_use]
pub fn critpath_report(shards: &[Shard]) -> String {
    let mut out = String::new();
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut grand = 0u64;
    for shard in shards {
        let eps = episodes_of(shard);
        if eps.is_empty() {
            continue;
        }
        let _ = writeln!(out, "== {} ==", shard.label);
        for (i, ep) in eps.iter().enumerate() {
            let mut ranked: Vec<(&String, &(u64, u64))> = ep.buckets.iter().collect();
            // Sort by time descending; bucket name breaks ties so the
            // ordering is total.
            ranked.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
            let chain = ranked
                .iter()
                .map(|(k, (n, ns))| format!("{k} {n}x{:.1}us", us(*ns)))
                .collect::<Vec<_>>()
                .join(" -> ");
            let tag = if ep.depth > 0 { " nested" } else { "" };
            let _ = writeln!(
                out,
                "  #{i:<3} {:<8}{tag} {:>10.1}us | {chain}",
                ep.component,
                us(ep.attributed)
            );
            for (k, (n, ns)) in &ep.buckets {
                let t = totals.entry(k.clone()).or_insert((0, 0));
                t.0 += n;
                t.1 += ns;
                grand += ns;
            }
        }
    }
    let _ = writeln!(out, "critical-path buckets (whole trace):");
    let mut ranked: Vec<(&String, &(u64, u64))> = totals.iter().collect();
    ranked.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
    for (k, (n, ns)) in ranked {
        #[allow(clippy::cast_precision_loss)]
        let pct = if grand == 0 {
            0.0
        } else {
            *ns as f64 * 100.0 / grand as f64
        };
        let _ = writeln!(out, "  {k:<10} {n:>8}x {:>14.1}us {pct:>6.1}%", us(*ns));
    }
    out
}

/// Flamegraph-ready collapsed stacks: one `component;bucket value`
/// line per (component, attribution bucket), aggregated over every
/// episode, value in nanoseconds. Feed to `flamegraph.pl` or any
/// collapsed-stack viewer.
#[must_use]
pub fn collapsed_stacks(shards: &[Shard]) -> String {
    let mut agg: BTreeMap<(String, String), u64> = BTreeMap::new();
    for shard in shards {
        for ep in episodes_of(shard) {
            for (bucket, (_, ns)) in &ep.buckets {
                *agg.entry((ep.component.clone(), bucket.clone()))
                    .or_insert(0) += ns;
            }
        }
    }
    let mut out = String::new();
    for ((comp, bucket), ns) in &agg {
        let _ = writeln!(out, "{comp};{bucket} {ns}");
    }
    out
}

// ---------------------------------------------------------------------
// Series (windowed telemetry)
// ---------------------------------------------------------------------

/// One parsed `--series` row.
#[derive(Debug, Clone, Default)]
pub struct SeriesRow {
    pub context: String,
    pub component: String,
    pub window: u64,
    pub t_start_ns: u64,
    pub invocations: u64,
    pub faults: u64,
    pub mechanisms: BTreeMap<String, u64>,
    pub latency_count: u64,
    pub latency_total_ns: u64,
    pub p99_ns: u64,
}

/// A parsed `--series` file: header plus rows in file order.
#[derive(Debug, Clone, Default)]
pub struct SeriesFile {
    pub version: u64,
    pub window_ns: u64,
    pub rows: Vec<SeriesRow>,
}

/// Parse a `--series` JSON-lines dump from text.
pub fn parse_series_text(text: &str) -> Result<SeriesFile, String> {
    let mut file = SeriesFile::default();
    let mut saw_header = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if j.get("kind").and_then(Json::as_str) == Some("series") {
            file.version = j.get("v").and_then(Json::as_u64).unwrap_or(0);
            file.window_ns = j
                .get("window_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: header missing window_ns", lineno + 1))?;
            saw_header = true;
            continue;
        }
        if !saw_header {
            return Err(format!("line {}: row before series header", lineno + 1));
        }
        let mut row = SeriesRow {
            context: j
                .get("context")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            component: j
                .get("component")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing component", lineno + 1))?
                .to_owned(),
            window: j.get("window").and_then(Json::as_u64).unwrap_or(0),
            t_start_ns: j.get("t_start_ns").and_then(Json::as_u64).unwrap_or(0),
            invocations: j.get("invocations").and_then(Json::as_u64).unwrap_or(0),
            faults: j.get("faults").and_then(Json::as_u64).unwrap_or(0),
            ..SeriesRow::default()
        };
        if let Some(Json::Object(pairs)) = j.get("mechanisms") {
            for (k, v) in pairs {
                if let Some(n) = v.as_u64() {
                    if n > 0 {
                        row.mechanisms.insert(k.clone(), n);
                    }
                }
            }
        }
        if let Some(l) = j.get("recovery_latency") {
            row.latency_count = l.get("count").and_then(Json::as_u64).unwrap_or(0);
            row.latency_total_ns = l.get("total_ns").and_then(Json::as_u64).unwrap_or(0);
            row.p99_ns = l.get("p99_ns").and_then(Json::as_u64).unwrap_or(0);
        }
        file.rows.push(row);
    }
    if !saw_header {
        return Err("no series header found".to_owned());
    }
    Ok(file)
}

/// Parse a `--series` dump from a file path.
pub fn parse_series(path: &str) -> Result<SeriesFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_series_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// Deterministic per-component summary of a series file (what
/// `sgstat series` prints): totals plus the worst window by faults and
/// by recovery-latency p99.
#[must_use]
pub fn series_report(file: &SeriesFile) -> String {
    #[derive(Default)]
    struct Agg {
        windows: u64,
        invocations: u64,
        faults: u64,
        mech: u64,
        worst_fault_window: u64,
        worst_faults: u64,
        worst_p99_window: u64,
        worst_p99: u64,
    }
    let mut per: BTreeMap<String, Agg> = BTreeMap::new();
    for row in &file.rows {
        let a = per.entry(row.component.clone()).or_default();
        a.windows += 1;
        a.invocations += row.invocations;
        a.faults += row.faults;
        a.mech += row.mechanisms.values().sum::<u64>();
        if row.faults > a.worst_faults {
            a.worst_faults = row.faults;
            a.worst_fault_window = row.window;
        }
        if row.p99_ns > a.worst_p99 {
            a.worst_p99 = row.p99_ns;
            a.worst_p99_window = row.window;
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "series: window {:.1}us, {} row(s), v{}",
        us(file.window_ns),
        file.rows.len(),
        file.version
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>12} {:>8} {:>8} {:>18} {:>20}",
        "component",
        "windows",
        "invocations",
        "faults",
        "mechs",
        "worst-faults@win",
        "worst-p99us@win"
    );
    for (name, a) in &per {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>12} {:>8} {:>8} {:>12}@{:<5} {:>13.1}@{:<6}",
            name,
            a.windows,
            a.invocations,
            a.faults,
            a.mech,
            a.worst_faults,
            a.worst_fault_window,
            us(a.worst_p99),
            a.worst_p99_window
        );
    }
    out
}

// ---------------------------------------------------------------------
// OpenMetrics export
// ---------------------------------------------------------------------

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Re-render a `--metrics` JSON-lines dump as an OpenMetrics text
/// exposition. Quantiles are recomputed from the shipped log₂
/// histograms, so the export carries p50/p90/p99 even though the JSON
/// rows only store buckets.
pub fn openmetrics_from_metrics(text: &str) -> Result<String, String> {
    struct Row {
        context: String,
        component: String,
        counters: Vec<(&'static str, u64)>,
        mechanisms: BTreeMap<String, u64>,
        latency: LatencyStat,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let get = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let mut row = Row {
            context: j
                .get("context")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            component: j
                .get("component")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            counters: vec![
                ("invocations", get("invocations")),
                ("faulted_invocations", get("faulted_invocations")),
                ("faults", get("faults")),
                ("reboots", get("reboots")),
                ("watchdog_fires", get("watchdog_fires")),
                ("degraded_rejections", get("degraded_rejections")),
                ("nested_faults", get("nested_faults")),
                ("cold_restarts", get("cold_restarts")),
            ],
            mechanisms: BTreeMap::new(),
            latency: LatencyStat::default(),
        };
        if let Some(Json::Object(pairs)) = j.get("mechanisms") {
            for (k, v) in pairs {
                if let Some(n) = v.as_u64() {
                    row.mechanisms.insert(k.clone(), n);
                }
            }
        }
        if let Some(l) = j.get("recovery_latency") {
            row.latency.count = l.get("count").and_then(Json::as_u64).unwrap_or(0);
            row.latency.total_ns = l.get("total_ns").and_then(Json::as_u64).unwrap_or(0);
            row.latency.min_ns = l.get("min_ns").and_then(Json::as_u64).unwrap_or(0);
            row.latency.max_ns = l.get("max_ns").and_then(Json::as_u64).unwrap_or(0);
            if let Some(Json::Object(hist)) = l.get("log2_hist") {
                for (k, v) in hist {
                    if let (Ok(i), Some(n)) = (k.parse::<usize>(), v.as_u64()) {
                        if i < 64 {
                            row.latency.log2_buckets[i] = n;
                        }
                    }
                }
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("no metrics rows found".to_owned());
    }

    let mut out = String::new();
    for (name, help) in [
        ("invocations", "Component invocations"),
        ("faulted_invocations", "Invocations that returned a fault"),
        ("faults", "Faults injected"),
        ("reboots", "Micro-reboots"),
        ("watchdog_fires", "Watchdog firings"),
        ("degraded_rejections", "Calls rejected while degraded"),
        ("nested_faults", "Correlated faults during recovery"),
        ("cold_restarts", "Cold restarts"),
    ] {
        let _ = writeln!(out, "# TYPE sg_{name} counter");
        let _ = writeln!(out, "# HELP sg_{name} {help}");
        for row in &rows {
            let v = row
                .counters
                .iter()
                .find(|(k, _)| *k == name)
                .map_or(0, |(_, v)| *v);
            let _ = writeln!(
                out,
                "sg_{name}_total{{context=\"{}\",component=\"{}\"}} {v}",
                escape_label(&row.context),
                escape_label(&row.component)
            );
        }
    }
    let _ = writeln!(out, "# TYPE sg_mechanism counter");
    let _ = writeln!(out, "# HELP sg_mechanism Recovery mechanism firings");
    for row in &rows {
        for (mech, n) in &row.mechanisms {
            let _ = writeln!(
                out,
                "sg_mechanism_total{{context=\"{}\",component=\"{}\",mech=\"{}\"}} {n}",
                escape_label(&row.context),
                escape_label(&row.component),
                escape_label(mech)
            );
        }
    }
    let _ = writeln!(out, "# TYPE sg_recovery_latency_ns summary");
    let _ = writeln!(
        out,
        "# HELP sg_recovery_latency_ns Recovery latency per episode"
    );
    for row in &rows {
        if row.latency.count == 0 {
            continue;
        }
        let labels = format!(
            "context=\"{}\",component=\"{}\"",
            escape_label(&row.context),
            escape_label(&row.component)
        );
        for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "sg_recovery_latency_ns{{{labels},quantile=\"{qs}\"}} {}",
                row.latency.quantile_ns(q)
            );
        }
        let _ = writeln!(
            out,
            "sg_recovery_latency_ns_count{{{labels}}} {}",
            row.latency.count
        );
        let _ = writeln!(
            out,
            "sg_recovery_latency_ns_sum{{{labels}}} {}",
            row.latency.total_ns
        );
    }
    out.push_str("# EOF\n");
    Ok(out)
}

// ---------------------------------------------------------------------
// SLO evaluation
// ---------------------------------------------------------------------

/// Thresholds for `sgstat slo`. `None` disables a check.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloPolicy {
    /// Maximum tolerated p99 top-level recovery latency.
    pub max_p99_ns: Option<u64>,
    /// Minimum tolerated whole-system availability (fraction, e.g.
    /// 0.999).
    pub min_availability: Option<f64>,
}

/// What `sgstat slo` observed against the policy.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    pub p99_ns: u64,
    pub availability: f64,
    pub episodes: u64,
    /// Human-readable violation lines; empty means the SLO holds.
    pub violations: Vec<String>,
    /// The conservation audit could not run (ring overflow).
    pub conservation_skipped: bool,
    /// The conservation audit ran and failed — the analytics are
    /// untrustworthy, reported as a violation too.
    pub conservation_failed: bool,
}

/// Evaluate the SLO policy against an availability report. The
/// conservation audit runs first: a trace whose books don't balance
/// fails the SLO outright, because none of its numbers can be trusted.
#[must_use]
pub fn evaluate_slo(report: &AvailReport, policy: &SloPolicy) -> SloReport {
    let total = report.total();
    let mut slo = SloReport {
        p99_ns: exact_quantile(&total.latencies_ns, 0.99),
        availability: total.availability(),
        episodes: total.episodes,
        ..SloReport::default()
    };
    match report.conservation() {
        Conservation::Ok => {}
        Conservation::Skip => slo.conservation_skipped = true,
        Conservation::Mismatch(bad) => {
            slo.conservation_failed = true;
            for b in bad {
                slo.violations.push(format!("conservation: {b}"));
            }
        }
    }
    if let Some(max) = policy.max_p99_ns {
        if slo.p99_ns > max {
            slo.violations.push(format!(
                "p99 recovery latency {:.1}us exceeds budget {:.1}us",
                us(slo.p99_ns),
                us(max)
            ));
        }
    }
    if let Some(min) = policy.min_availability {
        if slo.availability < min {
            slo.violations.push(format!(
                "availability {:.6}% below floor {:.6}%",
                slo.availability * 100.0,
                min * 100.0
            ));
        }
    }
    slo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_trace() -> Vec<Shard> {
        // One shard, one component ("srv"), one top-level episode of
        // 300ns (reboot 200 + walk 100) and a degraded window of 150ns.
        let text = concat!(
            r#"{"v":1,"shard":"t","names":["boot","srv"],"events":5,"dropped":0,"dropped_recovery":0,"span_count":5}"#,
            "\n",
            r#"{"span":0,"parent":null,"ts":1000,"dur":0,"tid":1,"comp":1,"name":"srv","epoch":0,"kind":"fault"}"#,
            "\n",
            r#"{"span":1,"parent":0,"ts":1000,"dur":200,"tid":1,"comp":1,"name":"srv","epoch":1,"kind":"reboot"}"#,
            "\n",
            r#"{"span":2,"parent":0,"ts":1200,"dur":100,"tid":1,"comp":1,"name":"srv","epoch":1,"kind":"walk_step","function":"f","desc":null,"mech":"T0"}"#,
            "\n",
            r#"{"span":3,"parent":0,"ts":1300,"dur":0,"tid":1,"comp":1,"name":"srv","epoch":1,"kind":"degraded","until":1450}"#,
            "\n",
            r#"{"span":4,"parent":0,"ts":1300,"dur":0,"tid":1,"comp":1,"name":"srv","epoch":1,"kind":"episode_end","attributed":300}"#,
            "\n",
        );
        parse_trace_text(text).expect("parse")
    }

    #[test]
    fn avail_accounts_downtime_and_degraded() {
        let shards = synth_trace();
        let report = avail_report(&shards);
        let srv = report.components.get("srv").expect("srv row");
        assert_eq!(srv.downtime_ns, 300);
        assert_eq!(srv.resummed_ns, 300);
        assert_eq!(srv.degraded_ns, 150);
        assert_eq!(srv.episodes, 1);
        assert_eq!(srv.reboots, 1);
        assert_eq!(report.conservation(), Conservation::Ok);
        // Horizon is max(ts+dur) = 1300; availability = 1 - 300/1300.
        assert_eq!(report.horizon_ns, 1300);
        assert!((srv.availability() - (1.0 - 300.0 / 1300.0)).abs() < 1e-12);
        assert_eq!(srv.mttr_ns(), 300);
    }

    #[test]
    fn conservation_flags_unbalanced_books() {
        let mut shards = synth_trace();
        // Tamper: claim more attributed latency than the spans carry.
        for ev in &mut shards[0].events {
            if ev.kind == "episode_end" {
                ev.attributed = Some(999);
            }
        }
        let report = avail_report(&shards);
        assert!(matches!(report.conservation(), Conservation::Mismatch(_)));
        let slo = evaluate_slo(&report, &SloPolicy::default());
        assert!(slo.conservation_failed);
        assert!(!slo.violations.is_empty());
    }

    #[test]
    fn conservation_skips_on_ring_overflow() {
        let mut shards = synth_trace();
        shards[0].dropped_recovery = 3;
        let report = avail_report(&shards);
        assert_eq!(report.conservation(), Conservation::Skip);
        let slo = evaluate_slo(&report, &SloPolicy::default());
        assert!(slo.conservation_skipped && !slo.conservation_failed);
    }

    #[test]
    fn slo_thresholds_gate() {
        let shards = synth_trace();
        let report = avail_report(&shards);
        let ok = evaluate_slo(
            &report,
            &SloPolicy {
                max_p99_ns: Some(1_000),
                min_availability: Some(0.5),
            },
        );
        assert!(ok.violations.is_empty());
        let bad = evaluate_slo(
            &report,
            &SloPolicy {
                max_p99_ns: Some(10),
                min_availability: Some(0.9999),
            },
        );
        assert_eq!(bad.violations.len(), 2);
    }

    #[test]
    fn critpath_ranks_reboot_first() {
        let shards = synth_trace();
        let report = critpath_report(&shards);
        assert!(report.contains("reboot 1x0.2us -> T0-walk 1x0.1us"));
        let stacks = collapsed_stacks(&shards);
        assert_eq!(stacks, "srv;T0-walk 100\nsrv;reboot 200\n");
    }

    #[test]
    fn series_roundtrip_and_report() {
        let text = concat!(
            r#"{"v":1,"kind":"series","window_ns":1000}"#,
            "\n",
            r#"{"v":1,"context":"t/a","component":"srv","window":3,"t_start_ns":3000,"invocations":10,"faults":2,"mechanisms":{"R0":1,"T0":0,"T1":0,"D0":0,"D1":0,"G0":0,"G1":0,"U0":0},"recovery_latency":{"count":2,"total_ns":600,"min_ns":200,"max_ns":400,"p50_ns":200,"p90_ns":400,"p99_ns":400}}"#,
            "\n",
        );
        let file = parse_series_text(text).expect("parse");
        assert_eq!(file.window_ns, 1000);
        assert_eq!(file.rows.len(), 1);
        assert_eq!(file.rows[0].mechanisms.get("R0"), Some(&1));
        assert_eq!(file.rows[0].p99_ns, 400);
        let report = series_report(&file);
        assert!(report.contains("srv"));
        assert!(report.contains("window 1.0us"));
    }

    #[test]
    fn openmetrics_renders_quantiles_and_eof() {
        let text = concat!(
            r#"{"v":1,"context":"t","component":"srv","invocations":5,"faulted_invocations":1,"faults":1,"reboots":1,"watchdog_fires":0,"degraded_rejections":0,"nested_faults":0,"cold_restarts":0,"mechanisms":{"R0":1,"T0":0,"T1":0,"D0":0,"D1":0,"G0":0,"G1":0,"U0":0},"recovery_latency":{"count":1,"total_ns":300,"min_ns":300,"max_ns":300,"mean_ns":300,"log2_hist":{"8":1}}}"#,
            "\n",
        );
        let om = openmetrics_from_metrics(text).expect("render");
        assert!(om.contains(r#"sg_invocations_total{context="t",component="srv"} 5"#));
        assert!(om.contains(r#"sg_mechanism_total{context="t",component="srv",mech="R0"} 1"#));
        assert!(om.contains(r#"quantile="0.99"} 300"#));
        assert!(om.ends_with("# EOF\n"));
    }
}
