//! System-level random-walk model checking over a full [`Rig`].
//!
//! The pure-core model checker ([`composite::KernelWalk`]) verifies the
//! kernel transition function in isolation; this module closes the loop
//! at the *system* level: a [`SystemWalk`] drives a complete SuperGlue
//! testbed — IDL-generated stubs, storage components, the booter's
//! recovery runtime — through a random interleaving of workload
//! iterations, fault injections, during-recovery (correlated) fault
//! arms, and time advances, checking the recovery invariants the paper
//! relies on after every operation:
//!
//! 1. **No lost wakeups** — every worker thread is runnable again once
//!    an operation completes (T0 eager wakeup did its job).
//! 2. **Bounded episode depth** — nested recovery never exceeds
//!    [`MAX_EPISODE_DEPTH`] (checked live on the recovery stack and
//!    post-hoc on every `fault` trace event).
//! 3. **Descriptor-leak freedom at quiescence** — after each complete
//!    operation the stubs track exactly the baseline descriptor set:
//!    recovery rebuilt what it had to and leaked nothing.
//! 4. **σ-table/trace-counter agreement** — mechanism counts summed
//!    from the drained flight-recorder shard equal the
//!    [`MetricsRegistry`](composite::MetricsRegistry) totals.
//! 5. **Episode-latency conservation** — re-summing the timed spans of
//!    every closed recovery episode reproduces its attributed latency
//!    exactly (the same check `sgtrace timeline` performs offline).
//!
//! Invariants 1–3 are cheap and run after every step inside
//! [`Model::apply`]; 4–5 need the drained trace and run once at the end
//! via [`SystemWalk::finish`]. Both phases feed the same
//! [`Violation`]/counterexample machinery as the core checker, so a
//! failing system walk shrinks to a minimal operation sequence too.
//!
//! This module also provides the JSON (de)serialization for core
//! [`Event`]s that the `modelcheck` binary uses to write counterexample
//! artifacts and `sgtrace replay` uses to time-travel through them.

use composite::{
    ComponentId, CostModel, EscalationPolicy, Event, Json, KernelAccess as _, MetricsSnapshot,
    Model, Priority, SimTime, SplitMix64, ThreadId, TraceEventKind, TraceShard, Violation,
    DEFAULT_TRACE_CAPACITY, MAX_EPISODE_DEPTH, MECHANISMS,
};
use superglue::testbed::Variant;

use crate::{rig, rig_elided, Rig, SERVICES};

// ---------------------------------------------------------------------
// The system-level operation alphabet
// ---------------------------------------------------------------------

/// One system-level operation of a [`SystemWalk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysOp {
    /// Run one complete §V-B micro-workload iteration against a service
    /// (triggers transparent recovery first when the service is faulty).
    Iteration {
        /// Index into [`SERVICES`].
        iface: usize,
        /// Workload sequence number (keeps mm/fs arguments fresh).
        seq: u64,
    },
    /// Inject a fail-stop fault into a service (SWIFI).
    Fault {
        /// Index into [`SERVICES`].
        iface: usize,
    },
    /// Arm a one-shot fault that fires the moment the next recovery
    /// action begins — the correlated-fault (nested episode) case.
    ArmNestedFault {
        /// Index into [`SERVICES`] naming the victim.
        iface: usize,
    },
    /// Advance virtual time (ages escalation windows and degraded
    /// cooldowns).
    Advance {
        /// Nanoseconds to advance by.
        dt: u64,
    },
}

// ---------------------------------------------------------------------
// SystemWalk
// ---------------------------------------------------------------------

/// A random walk over a full SuperGlue testbed. See the
/// [module docs](self) for the invariants checked.
#[derive(Debug)]
pub struct SystemWalk {
    /// The system under test (rebuilt on every [`Model::reset`]).
    pub rig: Rig,
    baseline_tracked: usize,
    seq: u64,
}

/// The storm policy the walk arms: tight enough that repeated fault
/// injections actually trip escalation, short enough that degraded
/// cooldowns elapse within a walk's time advances.
fn walk_escalation() -> EscalationPolicy {
    EscalationPolicy {
        reboot_window: SimTime(2_000_000),
        max_reboots_in_window: 4,
        degraded_cooldown: SimTime(20_000_000),
        reboot_backoff: SimTime(10_000),
    }
}

impl SystemWalk {
    /// A fresh walk (builds the testbed once; [`Model::reset`] rebuilds
    /// it for every check run).
    #[must_use]
    pub fn new() -> Self {
        let mut w = Self {
            rig: rig(Variant::SuperGlue),
            baseline_tracked: 0,
            seq: 0,
        };
        w.arm();
        w
    }

    fn arm(&mut self) {
        let k = self.rig.tb.runtime.kernel_mut();
        k.set_escalation(walk_escalation());
        k.enable_tracing(DEFAULT_TRACE_CAPACITY);
        self.baseline_tracked = self.rig.tb.total_tracked();
    }

    fn service_of(&self, iface: usize) -> ComponentId {
        self.rig.component_of(SERVICES[iface])
    }

    /// The worker threads whose runnability invariant 1 asserts.
    fn workers(&self) -> [ThreadId; 2] {
        [self.rig.thread, self.rig.thread2]
    }

    /// Invariants 1–3, checked after every operation.
    fn check_step_invariants(&self) -> Result<(), Violation> {
        let k = self.rig.tb.runtime.kernel();
        // 1. No lost wakeups: the workload never leaves a thread parked;
        // any block a fault interrupted must have been T0-woken.
        for t in self.workers() {
            let state = k.thread(t).map_err(|e| Violation {
                invariant: "no-lost-wakeups",
                detail: format!("worker {t:?} vanished: {e}"),
            })?;
            if !state.state.is_runnable() {
                return Err(Violation {
                    invariant: "no-lost-wakeups",
                    detail: format!("worker {t:?} left non-runnable: {:?}", state.state),
                });
            }
        }
        // 2. Bounded episode depth, live view: every recovery action
        // opened during the operation must have closed again, and the
        // stack never wedges open.
        let depth = k.recovery_depth();
        if depth != 0 {
            return Err(Violation {
                invariant: "bounded-episode-depth",
                detail: format!("recovery stack not balanced at quiescence: depth {depth}"),
            });
        }
        // 3. Descriptor-leak freedom: each iteration frees what it
        // created, and recovery rebuilds tracked descriptors without
        // duplicating them.
        let tracked = self.rig.tb.total_tracked();
        if tracked != self.baseline_tracked {
            return Err(Violation {
                invariant: "descriptor-leak-freedom",
                detail: format!(
                    "stubs track {tracked} descriptors at quiescence, baseline {}",
                    self.baseline_tracked
                ),
            });
        }
        Ok(())
    }

    /// Invariants 4–5 (trace-level), checked once after the walk by
    /// draining the flight recorder. Also re-verifies the episode-depth
    /// bound against the recorded `fault` events.
    pub fn finish(&mut self) -> Vec<Violation> {
        let mut out = Vec::new();
        // A leftover armed fault (no recovery followed the arm) must not
        // leak into the drained trace accounting.
        self.rig.tb.runtime.kernel_mut().disarm_recovery_fault();
        let snapshot = MetricsSnapshot::from_kernel(self.rig.tb.runtime.kernel());
        let shard = self.rig.tb.runtime.kernel_mut().take_trace("system-walk");

        // 2 (post-hoc). Bounded episode depth as recorded.
        for ev in &shard.events {
            if let TraceEventKind::FaultInjected { depth } = ev.kind {
                if depth > MAX_EPISODE_DEPTH {
                    out.push(Violation {
                        invariant: "bounded-episode-depth",
                        detail: format!(
                            "fault event at {:?} carries depth {depth} > {MAX_EPISODE_DEPTH}",
                            ev.time
                        ),
                    });
                }
            }
        }

        if shard.dropped_recovery > 0 {
            // The recovery tier overflowed: counter agreement and latency
            // conservation are unverifiable on an incomplete record (the
            // same SKIP rule `sgtrace timeline` applies).
            return out;
        }

        // 4. σ-table/trace-counter agreement.
        let mut trace_counts = [0u64; MECHANISMS.len()];
        for ev in &shard.events {
            if let TraceEventKind::MechanismFired { mech, n } = ev.kind {
                trace_counts[mech.index()] += n;
            }
        }
        for m in MECHANISMS {
            let metric = snapshot.mechanism_total(m);
            let traced = trace_counts[m.index()];
            if metric != traced {
                out.push(Violation {
                    invariant: "state-effect-agreement",
                    detail: format!(
                        "{m:?}: metrics registry counted {metric}, trace recorded {traced}"
                    ),
                });
            }
        }

        // 5. Episode-latency conservation.
        out.extend(check_latency_conservation(&shard));
        out
    }
}

impl Default for SystemWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl Model for SystemWalk {
    type Event = SysOp;

    fn reset(&mut self) {
        self.rig = rig(Variant::SuperGlue);
        self.seq = 0;
        self.arm();
    }

    fn generate(&mut self, rng: &mut SplitMix64) -> SysOp {
        random_sysop(rng, &mut self.seq)
    }

    fn apply(&mut self, op: &SysOp) -> Result<(), Violation> {
        match *op {
            SysOp::Iteration { iface, seq } => {
                let svc = self.service_of(iface);
                let k = self.rig.tb.runtime.kernel();
                if k.is_degraded(svc) {
                    // Degraded fail-fast window: the workload cannot run;
                    // assert the rejection is what clients actually see.
                    let app = self.rig.tb.ids.app1;
                    let t = self.rig.thread;
                    let compid = composite::Value::from(app.0);
                    let err = composite::InterfaceCall::interface_call(
                        &mut self.rig.tb.runtime,
                        app,
                        t,
                        svc,
                        probe_fn(iface),
                        &[compid],
                    );
                    if !matches!(err, Err(composite::CallError::Degraded { .. })) {
                        return Err(Violation {
                            invariant: "state-effect-agreement",
                            detail: format!(
                                "{} is degraded but a call returned {err:?}",
                                SERVICES[iface]
                            ),
                        });
                    }
                } else {
                    self.rig.run_iteration(SERVICES[iface], seq);
                }
            }
            SysOp::Fault { iface } => {
                let svc = self.service_of(iface);
                self.rig.tb.runtime.inject_fault(svc);
            }
            SysOp::ArmNestedFault { iface } => {
                let svc = self.service_of(iface);
                self.rig
                    .tb
                    .runtime
                    .kernel_mut()
                    .arm_fault_during_recovery(svc);
            }
            SysOp::Advance { dt } => {
                let now = self.rig.tb.runtime.kernel().now();
                self.rig
                    .tb
                    .runtime
                    .kernel_mut()
                    .advance_to(now + SimTime(dt));
            }
        }
        self.check_step_invariants()
    }
}

/// The shared operation distribution of [`SystemWalk`] and
/// [`ElideDiffWalk`]: mostly workload iterations, a healthy dose of
/// fault injections, occasional nested-fault arms and time advances.
fn random_sysop(rng: &mut SplitMix64, seq: &mut u64) -> SysOp {
    let roll = rng.gen_range(100);
    match roll {
        0..=54 => {
            *seq += 1;
            SysOp::Iteration {
                iface: rng.gen_index(SERVICES.len()),
                seq: *seq,
            }
        }
        55..=74 => SysOp::Fault {
            iface: rng.gen_index(SERVICES.len()),
        },
        75..=84 => SysOp::ArmNestedFault {
            iface: rng.gen_index(SERVICES.len()),
        },
        _ => SysOp::Advance {
            dt: 100_000 * (1 + rng.gen_range(30)),
        },
    }
}

// ---------------------------------------------------------------------
// ElideDiffWalk: certified elision vs full tracking, lock-step
// ---------------------------------------------------------------------

/// A random walk that drives **two** SuperGlue testbeds through the
/// identical operation sequence — one interpreting the fully tracked
/// stub specs, one the certified tracking-elision fast paths — and
/// asserts after every operation that they are observationally
/// indistinguishable: same simulated time, same runtime statistics
/// (including invalid-transition detections and recovery counts), same
/// per-edge tracked/faulty descriptor sets, same degraded windows. At
/// [`ElideDiffWalk::finish`] the two flight-recorder traces must render
/// to byte-identical JSON-lines.
///
/// This is the dynamic half of the SG060–SG065 elision certificate: the
/// lint proves each skipped write is never read; this walk checks the
/// proof against the running system under randomized SWIFI schedules.
#[derive(Debug)]
pub struct ElideDiffWalk {
    /// The fully tracked reference system.
    pub tracked: Rig,
    /// The certified-elision system under test.
    pub elided: Rig,
    seq: u64,
}

impl ElideDiffWalk {
    /// A fresh differential walk (both testbeds built; [`Model::reset`]
    /// rebuilds them per check run).
    #[must_use]
    pub fn new() -> Self {
        let mut w = Self {
            tracked: rig(Variant::SuperGlue),
            elided: rig_elided(Variant::SuperGlue, true),
            seq: 0,
        };
        w.arm();
        w
    }

    fn arm(&mut self) {
        for r in [&mut self.tracked, &mut self.elided] {
            let k = r.tb.runtime.kernel_mut();
            k.set_escalation(walk_escalation());
            k.enable_tracing(DEFAULT_TRACE_CAPACITY);
        }
    }

    /// Apply one operation to a single rig (the same op goes to both).
    fn apply_one(r: &mut Rig, op: &SysOp) -> Result<(), String> {
        match *op {
            SysOp::Iteration { iface, seq } => {
                let svc = r.component_of(SERVICES[iface]);
                if r.tb.runtime.kernel().is_degraded(svc) {
                    let app = r.tb.ids.app1;
                    let t = r.thread;
                    let compid = composite::Value::from(app.0);
                    let err = composite::InterfaceCall::interface_call(
                        &mut r.tb.runtime,
                        app,
                        t,
                        svc,
                        probe_fn(iface),
                        &[compid],
                    );
                    if !matches!(err, Err(composite::CallError::Degraded { .. })) {
                        return Err(format!(
                            "{} degraded but call returned {err:?}",
                            SERVICES[iface]
                        ));
                    }
                } else {
                    r.run_iteration(SERVICES[iface], seq);
                }
            }
            SysOp::Fault { iface } => {
                let svc = r.component_of(SERVICES[iface]);
                r.tb.runtime.inject_fault(svc);
            }
            SysOp::ArmNestedFault { iface } => {
                let svc = r.component_of(SERVICES[iface]);
                r.tb.runtime.kernel_mut().arm_fault_during_recovery(svc);
            }
            SysOp::Advance { dt } => {
                let now = r.tb.runtime.kernel().now();
                r.tb.runtime.kernel_mut().advance_to(now + SimTime(dt));
            }
        }
        Ok(())
    }

    /// The first observable difference between the two systems, if any.
    fn divergence(&self) -> Option<String> {
        let (kt, ke) = (
            self.tracked.tb.runtime.kernel(),
            self.elided.tb.runtime.kernel(),
        );
        if kt.now() != ke.now() {
            return Some(format!(
                "simulated time diverged: tracked {:?}, elided {:?}",
                kt.now(),
                ke.now()
            ));
        }
        let (st, se) = (
            format!("{:?}", self.tracked.tb.runtime.stats()),
            format!("{:?}", self.elided.tb.runtime.stats()),
        );
        if st != se {
            return Some(format!(
                "runtime statistics diverged:\n  tracked: {st}\n  elided:  {se}"
            ));
        }
        for iface in SERVICES {
            let svc_t = self.tracked.component_of(iface);
            let svc_e = self.elided.component_of(iface);
            if kt.is_degraded(svc_t) != ke.is_degraded(svc_e) {
                return Some(format!("{iface}: degraded windows diverged"));
            }
            for (app_t, app_e) in [
                (self.tracked.tb.ids.app1, self.elided.tb.ids.app1),
                (self.tracked.tb.ids.app2, self.elided.tb.ids.app2),
            ] {
                let t = self.tracked.tb.runtime.stub(app_t, svc_t);
                let e = self.elided.tb.runtime.stub(app_e, svc_e);
                let (tc, tf) = t.map_or((0, 0), |s| (s.tracked_count(), s.faulty_count()));
                let (ec, ef) = e.map_or((0, 0), |s| (s.tracked_count(), s.faulty_count()));
                if (tc, tf) != (ec, ef) {
                    return Some(format!(
                        "{iface}: tracked/faulty sets diverged: tracked run \
                         ({tc}, {tf}), elided run ({ec}, {ef})"
                    ));
                }
            }
        }
        None
    }

    /// Drain both flight recorders and require byte-identical renderings
    /// (the in-process twin of the CI `--elide` trace differential).
    pub fn finish(&mut self) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut shards = Vec::new();
        for r in [&mut self.tracked, &mut self.elided] {
            r.tb.runtime.kernel_mut().disarm_recovery_fault();
            shards.push(r.tb.runtime.kernel_mut().take_trace("elide-diff"));
        }
        let full = composite::shards_to_jsonl(&shards[..1]);
        let elided = composite::shards_to_jsonl(&shards[1..]);
        if full != elided {
            let first = full
                .lines()
                .zip(elided.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b);
            out.push(Violation {
                invariant: "elide-trace-identity",
                detail: match first {
                    Some((i, (a, b))) => {
                        format!("traces diverge at line {i}:\n  tracked: {a}\n  elided:  {b}")
                    }
                    None => format!(
                        "traces differ in length: tracked {} lines, elided {} lines",
                        full.lines().count(),
                        elided.lines().count()
                    ),
                },
            });
        }
        out
    }
}

impl Default for ElideDiffWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl Model for ElideDiffWalk {
    type Event = SysOp;

    fn reset(&mut self) {
        self.tracked = rig(Variant::SuperGlue);
        self.elided = rig_elided(Variant::SuperGlue, true);
        self.seq = 0;
        self.arm();
    }

    fn generate(&mut self, rng: &mut SplitMix64) -> SysOp {
        random_sysop(rng, &mut self.seq)
    }

    fn apply(&mut self, op: &SysOp) -> Result<(), Violation> {
        for (name, r) in [("tracked", &mut self.tracked), ("elided", &mut self.elided)] {
            Self::apply_one(r, op).map_err(|detail| Violation {
                invariant: "elide-equivalence",
                detail: format!("{name} run: {detail}"),
            })?;
        }
        if let Some(detail) = self.divergence() {
            return Err(Violation {
                invariant: "elide-equivalence",
                detail,
            });
        }
        Ok(())
    }
}

/// A cheap probe function per interface: used only to observe the
/// degraded fail-fast rejection, never expected to execute.
fn probe_fn(iface: usize) -> &'static str {
    match SERVICES[iface] {
        "sched" => "sched_wakeup",
        "mm" => "mman_get_page",
        "fs" => "tsplit",
        "lock" => "lock_alloc",
        "evt" => "evt_split",
        "tmr" => "tmr_create",
        _ => unreachable!("SERVICES is fixed"),
    }
}

// ---------------------------------------------------------------------
// Episode-latency conservation over in-memory shards
// ---------------------------------------------------------------------

/// Re-sum the timed spans of every closed recovery episode in `shard`
/// and compare against the attributed latency its `episode_end`
/// recorded — the in-process twin of `sgtrace timeline`'s conservation
/// check. Nested episodes attribute to the innermost open episode of
/// their component, exactly mirroring the kernel-side recorder.
#[must_use]
pub fn check_latency_conservation(shard: &TraceShard) -> Vec<Violation> {
    use std::collections::BTreeMap;
    // Per-component stack of open episodes: (start time, resummed).
    let mut open: BTreeMap<u32, Vec<(SimTime, u64)>> = BTreeMap::new();
    let mut out = Vec::new();
    for ev in &shard.events {
        match ev.kind {
            TraceEventKind::FaultInjected { .. } => {
                open.entry(ev.component.0).or_default().push((ev.time, 0));
            }
            TraceEventKind::EpisodeEnd { attributed } => {
                if let Some((start, resummed)) = open.get_mut(&ev.component.0).and_then(Vec::pop) {
                    if resummed != attributed.0 {
                        out.push(Violation {
                            invariant: "episode-latency-conservation",
                            detail: format!(
                                "episode on comp {} starting at {start:?}: re-summed spans \
                                 total {resummed}ns but episode_end attributes {}ns",
                                ev.component.0, attributed.0
                            ),
                        });
                    }
                }
            }
            _ => {
                if ev.dur > SimTime::ZERO {
                    if let Some((_, resummed)) =
                        open.get_mut(&ev.component.0).and_then(|s| s.last_mut())
                    {
                        *resummed += ev.dur.0;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Core-event JSON (de)serialization
// ---------------------------------------------------------------------

/// Serialize one core [`Event`] as a JSON object (stable tag names,
/// consumed by [`event_from_json`] and `sgtrace replay`).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn event_to_json(ev: &Event) -> Json {
    let mut j = Json::object();
    match *ev {
        Event::AddComponent { has_service } => {
            j.push("ev", "add_component")
                .push("has_service", has_service);
        }
        Event::AddThread { home, priority } => {
            j.push("ev", "add_thread")
                .push("home", home.0)
                .push("priority", u64::from(priority.0));
        }
        Event::Grant { client, server } => {
            j.push("ev", "grant")
                .push("client", client.0)
                .push("server", server.0);
        }
        Event::SetCosts(c) => {
            j.push("ev", "set_costs")
                .push("invocation", c.invocation.0)
                .push("tracking", c.tracking.0)
                .push("micro_reboot", c.micro_reboot.0)
                .push("recovery_step", c.recovery_step.0)
                .push("storage_round_trip", c.storage_round_trip.0)
                .push("upcall", c.upcall.0);
        }
        Event::SetEscalation(p) => {
            j.push("ev", "set_escalation")
                .push("reboot_window", p.reboot_window.0)
                .push("max_reboots_in_window", p.max_reboots_in_window)
                .push("degraded_cooldown", p.degraded_cooldown.0)
                .push("reboot_backoff", p.reboot_backoff.0);
        }
        Event::SetWatchdogBudget(b) => {
            j.push("ev", "set_watchdog_budget").push("budget", b);
        }
        Event::Charge(t) => {
            j.push("ev", "charge").push("cost", t.0);
        }
        Event::AdvanceTo(t) => {
            j.push("ev", "advance_to").push("t", t.0);
        }
        Event::BlockThread {
            thread,
            in_component,
        } => {
            j.push("ev", "block_thread")
                .push("thread", thread.0)
                .push("in_component", in_component.0);
        }
        Event::SleepThread { thread, until } => {
            j.push("ev", "sleep_thread")
                .push("thread", thread.0)
                .push("until", until.0);
        }
        Event::WakeThread { thread } => {
            j.push("ev", "wake_thread").push("thread", thread.0);
        }
        Event::BeginRecovery { component } => {
            j.push("ev", "begin_recovery")
                .push("component", component.0);
        }
        Event::EndRecovery { component } => {
            j.push("ev", "end_recovery").push("component", component.0);
        }
        Event::ArmRecoveryFault { victim } => {
            j.push("ev", "arm_recovery_fault").push("victim", victim.0);
        }
        Event::DisarmRecoveryFault => {
            j.push("ev", "disarm_recovery_fault");
        }
        Event::Fault { component } => {
            j.push("ev", "fault").push("component", component.0);
        }
        Event::WatchdogExpire { component, thread } => {
            j.push("ev", "watchdog_expire")
                .push("component", component.0)
                .push("thread", thread.0);
        }
        Event::InvokeAdmit {
            client,
            thread,
            target,
            bypass_caps,
        } => {
            j.push("ev", "invoke_admit")
                .push("client", client.0)
                .push("thread", thread.0)
                .push("target", target.0)
                .push("bypass_caps", bypass_caps);
        }
        Event::InvokeAbort { thread, target } => {
            j.push("ev", "invoke_abort")
                .push("thread", thread.0)
                .push("target", target.0);
        }
        Event::InvokeFinish { thread, target, ok } => {
            j.push("ev", "invoke_finish")
                .push("thread", thread.0)
                .push("target", target.0)
                .push("ok", ok);
        }
        Event::ChargeUpcall { server, thread } => {
            j.push("ev", "charge_upcall")
                .push("server", server.0)
                .push("thread", thread.0);
        }
        Event::NoteUpcall => {
            j.push("ev", "note_upcall");
        }
        Event::MicroReboot { component } => {
            j.push("ev", "micro_reboot").push("component", component.0);
        }
        Event::ColdRestart { component } => {
            j.push("ev", "cold_restart").push("component", component.0);
        }
        Event::MarkDegraded { component, until } => {
            j.push("ev", "mark_degraded")
                .push("component", component.0)
                .push("until", until.0);
        }
    }
    j
}

fn ju64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn jcomp(j: &Json, key: &str) -> Result<ComponentId, String> {
    Ok(ComponentId(
        u32::try_from(ju64(j, key)?).map_err(|e| e.to_string())?,
    ))
}

fn jthread(j: &Json, key: &str) -> Result<ThreadId, String> {
    Ok(ThreadId(
        u32::try_from(ju64(j, key)?).map_err(|e| e.to_string())?,
    ))
}

fn jbool(j: &Json, key: &str) -> bool {
    matches!(j.get(key), Some(Json::Bool(true)))
}

/// Deserialize one core [`Event`] written by [`event_to_json`].
///
/// # Errors
///
/// Returns a message naming the unknown tag or missing field.
pub fn event_from_json(j: &Json) -> Result<Event, String> {
    let tag = j
        .get("ev")
        .and_then(Json::as_str)
        .ok_or("missing \"ev\" tag")?;
    Ok(match tag {
        "add_component" => Event::AddComponent {
            has_service: jbool(j, "has_service"),
        },
        "add_thread" => Event::AddThread {
            home: jcomp(j, "home")?,
            priority: Priority(u8::try_from(ju64(j, "priority")?).map_err(|e| e.to_string())?),
        },
        "grant" => Event::Grant {
            client: jcomp(j, "client")?,
            server: jcomp(j, "server")?,
        },
        "set_costs" => Event::SetCosts(CostModel {
            invocation: SimTime(ju64(j, "invocation")?),
            tracking: SimTime(ju64(j, "tracking")?),
            micro_reboot: SimTime(ju64(j, "micro_reboot")?),
            recovery_step: SimTime(ju64(j, "recovery_step")?),
            storage_round_trip: SimTime(ju64(j, "storage_round_trip")?),
            upcall: SimTime(ju64(j, "upcall")?),
        }),
        "set_escalation" => Event::SetEscalation(EscalationPolicy {
            reboot_window: SimTime(ju64(j, "reboot_window")?),
            max_reboots_in_window: u32::try_from(ju64(j, "max_reboots_in_window")?)
                .map_err(|e| e.to_string())?,
            degraded_cooldown: SimTime(ju64(j, "degraded_cooldown")?),
            reboot_backoff: SimTime(ju64(j, "reboot_backoff")?),
        }),
        "set_watchdog_budget" => Event::SetWatchdogBudget(ju64(j, "budget")?),
        "charge" => Event::Charge(SimTime(ju64(j, "cost")?)),
        "advance_to" => Event::AdvanceTo(SimTime(ju64(j, "t")?)),
        "block_thread" => Event::BlockThread {
            thread: jthread(j, "thread")?,
            in_component: jcomp(j, "in_component")?,
        },
        "sleep_thread" => Event::SleepThread {
            thread: jthread(j, "thread")?,
            until: SimTime(ju64(j, "until")?),
        },
        "wake_thread" => Event::WakeThread {
            thread: jthread(j, "thread")?,
        },
        "begin_recovery" => Event::BeginRecovery {
            component: jcomp(j, "component")?,
        },
        "end_recovery" => Event::EndRecovery {
            component: jcomp(j, "component")?,
        },
        "arm_recovery_fault" => Event::ArmRecoveryFault {
            victim: jcomp(j, "victim")?,
        },
        "disarm_recovery_fault" => Event::DisarmRecoveryFault,
        "fault" => Event::Fault {
            component: jcomp(j, "component")?,
        },
        "watchdog_expire" => Event::WatchdogExpire {
            component: jcomp(j, "component")?,
            thread: jthread(j, "thread")?,
        },
        "invoke_admit" => Event::InvokeAdmit {
            client: jcomp(j, "client")?,
            thread: jthread(j, "thread")?,
            target: jcomp(j, "target")?,
            bypass_caps: jbool(j, "bypass_caps"),
        },
        "invoke_abort" => Event::InvokeAbort {
            thread: jthread(j, "thread")?,
            target: jcomp(j, "target")?,
        },
        "invoke_finish" => Event::InvokeFinish {
            thread: jthread(j, "thread")?,
            target: jcomp(j, "target")?,
            ok: jbool(j, "ok"),
        },
        "charge_upcall" => Event::ChargeUpcall {
            server: jcomp(j, "server")?,
            thread: jthread(j, "thread")?,
        },
        "note_upcall" => Event::NoteUpcall,
        "micro_reboot" => Event::MicroReboot {
            component: jcomp(j, "component")?,
        },
        "cold_restart" => Event::ColdRestart {
            component: jcomp(j, "component")?,
        },
        "mark_degraded" => Event::MarkDegraded {
            component: jcomp(j, "component")?,
            until: SimTime(ju64(j, "until")?),
        },
        other => return Err(format!("unknown event tag {other:?}")),
    })
}

/// Serialize a [`SysOp`] (system-walk counterexample artifacts).
#[must_use]
pub fn sysop_to_json(op: &SysOp) -> Json {
    let mut j = Json::object();
    match *op {
        SysOp::Iteration { iface, seq } => {
            j.push("op", "iteration")
                .push("iface", SERVICES[iface])
                .push("seq", seq);
        }
        SysOp::Fault { iface } => {
            j.push("op", "fault").push("iface", SERVICES[iface]);
        }
        SysOp::ArmNestedFault { iface } => {
            j.push("op", "arm_nested_fault")
                .push("iface", SERVICES[iface]);
        }
        SysOp::Advance { dt } => {
            j.push("op", "advance").push("dt", dt);
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{run_check, CheckConfig};

    #[test]
    fn event_json_round_trips() {
        let events = [
            Event::AddComponent { has_service: true },
            Event::AddThread {
                home: ComponentId(1),
                priority: Priority(5),
            },
            Event::Grant {
                client: ComponentId(1),
                server: ComponentId(2),
            },
            Event::SetCosts(CostModel::paper_defaults()),
            Event::SetEscalation(EscalationPolicy::storm_defaults()),
            Event::SetWatchdogBudget(16),
            Event::Charge(SimTime(123)),
            Event::AdvanceTo(SimTime(9_999)),
            Event::BlockThread {
                thread: ThreadId(2),
                in_component: ComponentId(3),
            },
            Event::SleepThread {
                thread: ThreadId(2),
                until: SimTime(77),
            },
            Event::WakeThread {
                thread: ThreadId(2),
            },
            Event::BeginRecovery {
                component: ComponentId(4),
            },
            Event::EndRecovery {
                component: ComponentId(4),
            },
            Event::ArmRecoveryFault {
                victim: ComponentId(5),
            },
            Event::DisarmRecoveryFault,
            Event::Fault {
                component: ComponentId(2),
            },
            Event::WatchdogExpire {
                component: ComponentId(2),
                thread: ThreadId(1),
            },
            Event::InvokeAdmit {
                client: ComponentId(1),
                thread: ThreadId(1),
                target: ComponentId(2),
                bypass_caps: true,
            },
            Event::InvokeAbort {
                thread: ThreadId(1),
                target: ComponentId(2),
            },
            Event::InvokeFinish {
                thread: ThreadId(1),
                target: ComponentId(2),
                ok: false,
            },
            Event::ChargeUpcall {
                server: ComponentId(2),
                thread: ThreadId(1),
            },
            Event::NoteUpcall,
            Event::MicroReboot {
                component: ComponentId(2),
            },
            Event::ColdRestart {
                component: ComponentId(2),
            },
            Event::MarkDegraded {
                component: ComponentId(2),
                until: SimTime(1_000_000),
            },
        ];
        for ev in &events {
            let line = event_to_json(ev).to_line();
            let parsed = Json::parse(&line).expect("parses");
            assert_eq!(&event_from_json(&parsed).expect("decodes"), ev, "{line}");
        }
    }

    #[test]
    fn short_system_walk_holds_all_invariants() {
        let mut walk = SystemWalk::new();
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed: 0xC3_5EED,
                steps: 120,
                max_shrink_iters: 200,
            },
        );
        assert!(
            report.passed(),
            "system walk violated an invariant: {:?}",
            report.counterexample.map(|c| (c.violation, c.events))
        );
        let trace_violations = walk.finish();
        assert!(trace_violations.is_empty(), "{trace_violations:?}");
    }

    #[test]
    fn short_elide_diff_walk_is_observationally_identical() {
        let mut walk = ElideDiffWalk::new();
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed: 0xE11D_E5EED,
                steps: 100,
                max_shrink_iters: 200,
            },
        );
        assert!(
            report.passed(),
            "elided run diverged from fully tracked run: {:?}",
            report.counterexample.map(|c| (c.violation, c.events))
        );
        let trace_violations = walk.finish();
        assert!(trace_violations.is_empty(), "{trace_violations:?}");
    }

    #[test]
    fn elide_diff_walk_traces_match_after_a_faulty_sweep() {
        // Deterministic fault-heavy sweep: every service faults, then
        // runs an iteration; the elided interpreter must shadow the
        // tracked one event for event.
        let mut walk = ElideDiffWalk::new();
        Model::reset(&mut walk);
        for iface in 0..SERVICES.len() {
            walk.apply(&SysOp::Fault { iface }).unwrap();
            walk.apply(&SysOp::Iteration {
                iface,
                seq: iface as u64 + 1,
            })
            .unwrap();
        }
        let violations = walk.finish();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn mechanism_counts_agree_after_a_faulty_walk() {
        // Deterministic, fault-heavy mini-walk: agreement must hold with
        // real recovery traffic in the trace, not just on the empty walk.
        let mut walk = SystemWalk::new();
        Model::reset(&mut walk);
        for iface in 0..SERVICES.len() {
            walk.apply(&SysOp::Fault { iface }).unwrap();
            walk.apply(&SysOp::Iteration {
                iface,
                seq: iface as u64 + 1,
            })
            .unwrap();
        }
        let violations = walk.finish();
        assert!(violations.is_empty(), "{violations:?}");
    }
}
