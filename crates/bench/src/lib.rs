//! Shared machinery for the benchmark harnesses that regenerate every
//! table and figure of the paper's evaluation (§V).
//!
//! | Artifact | Harness | What it reports |
//! |---|---|---|
//! | Fig 6(a) | `cargo run -p sg-bench --release --bin fig6` (+ `cargo bench -p sg-bench --bench fig6a_tracking`) | per-service descriptor-tracking overhead, SuperGlue vs C³ |
//! | Fig 6(b) | same binary (+ `--bench fig6b_recovery`) | per-descriptor recovery overhead |
//! | Fig 6(c) | same binary | LOC: SuperGlue IDL vs generated vs hand-written C³ |
//! | Table II | `cargo run -p sg-bench --release --bin table2` | the SWIFI campaign |
//! | Fig 7 | `cargo run -p sg-bench --release --bin fig7` | web-server throughput, 4 systems ± faults |
//! | Ablations | `cargo run -p sg-bench --release --bin ablations` | design-choice deltas (DESIGN.md §5) |

pub mod modelck;
pub mod stat;

use composite::{ComponentId, InterfaceCall as _, Priority, ThreadId, Value};
use sg_c3::FtRuntime;
use superglue::testbed::{Testbed, Variant};

/// The hand-written C³ stub sources, embedded so Fig 6(c) counts the
/// exact committed code.
pub const C3_STUB_SOURCES: [(&str, &str); 6] = [
    ("sched", include_str!("../../c3/src/stubs/sched.rs")),
    ("mm", include_str!("../../c3/src/stubs/mm.rs")),
    ("fs", include_str!("../../c3/src/stubs/fs.rs")),
    ("lock", include_str!("../../c3/src/stubs/lock.rs")),
    ("evt", include_str!("../../c3/src/stubs/evt.rs")),
    ("tmr", include_str!("../../c3/src/stubs/tmr.rs")),
];

/// Count the non-test, non-comment lines of a hand-written stub source
/// (everything above the `#[cfg(test)]` marker).
#[must_use]
pub fn handwritten_loc(source: &str) -> usize {
    let body = source.split("#[cfg(test)]").next().unwrap_or(source);
    superglue_compiler::count_loc(body)
}

/// A per-service micro-rig: a built system plus one worker thread.
#[derive(Debug)]
pub struct Rig {
    /// The system under test.
    pub tb: Testbed,
    /// A runnable worker thread in `app1`.
    pub thread: ThreadId,
    /// A second worker (cross-component cases).
    pub thread2: ThreadId,
}

/// Build a rig for a protection variant.
///
/// # Panics
///
/// Panics if the shipped IDL fails to compile (covered by tests).
#[must_use]
pub fn rig(variant: Variant) -> Rig {
    rig_elided(variant, false)
}

/// [`rig`] with certified tracking elision toggled (the `--elide`
/// fast-path stubs; no-op for non-SuperGlue variants).
///
/// # Panics
///
/// Panics if the shipped IDL fails to compile or an `sm_elide` request
/// cannot be proven (covered by tests).
#[must_use]
pub fn rig_elided(variant: Variant, elide: bool) -> Rig {
    let mut tb = Testbed::build_elided(variant, elide).expect("testbed builds");
    let thread = tb.spawn_thread(tb.ids.app1, Priority(5));
    let thread2 = tb.spawn_thread(tb.ids.app2, Priority(5));
    Rig {
        tb,
        thread,
        thread2,
    }
}

impl Rig {
    /// The target component for a paper row label.
    #[must_use]
    pub fn component_of(&self, iface: &str) -> ComponentId {
        match iface {
            "sched" => self.tb.ids.sched,
            "mm" => self.tb.ids.mm,
            "fs" => self.tb.ids.fs,
            "lock" => self.tb.ids.lock,
            "evt" => self.tb.ids.evt,
            "tmr" => self.tb.ids.tmr,
            other => panic!("unknown interface {other:?}"),
        }
    }

    /// Run one non-blocking iteration of the §V-B micro-workload for a
    /// service, returning the number of interface calls made. Used by
    /// the Fig 6(a) tracking-overhead measurements (real wall-clock
    /// timing wraps this).
    ///
    /// # Panics
    ///
    /// Panics when the system under test rejects the workload (covered
    /// by tests for every variant).
    pub fn run_iteration(&mut self, iface: &str, seq: u64) -> u32 {
        let rt: &mut FtRuntime = &mut self.tb.runtime;
        let app = self.tb.ids.app1;
        let t = self.thread;
        let compid = Value::from(app.0);
        match iface {
            "sched" => {
                let svc = self.tb.ids.sched;
                let d = Value::from(t.0);
                rt.interface_call(app, t, svc, "sched_setup", &[compid.clone(), d.clone()])
                    .expect("setup");
                rt.interface_call(app, t, svc, "sched_wakeup", &[compid.clone(), d.clone()])
                    .expect("wakeup");
                // The pending wakeup makes this blk non-blocking.
                rt.interface_call(app, t, svc, "sched_blk", &[compid.clone(), d.clone()])
                    .expect("blk");
                rt.interface_call(app, t, svc, "sched_exit", &[compid, d])
                    .expect("exit");
                4
            }
            "lock" => {
                let svc = self.tb.ids.lock;
                let id = rt
                    .interface_call(app, t, svc, "lock_alloc", std::slice::from_ref(&compid))
                    .expect("alloc")
                    .int()
                    .expect("id");
                rt.interface_call(app, t, svc, "lock_take", &[compid.clone(), Value::Int(id)])
                    .expect("take");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "lock_release",
                    &[compid.clone(), Value::Int(id)],
                )
                .expect("release");
                rt.interface_call(app, t, svc, "lock_free", &[compid, Value::Int(id)])
                    .expect("free");
                4
            }
            "evt" => {
                let svc = self.tb.ids.evt;
                let id = rt
                    .interface_call(
                        app,
                        t,
                        svc,
                        "evt_split",
                        &[compid.clone(), Value::Int(0), Value::Int(1)],
                    )
                    .expect("split")
                    .int()
                    .expect("id");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "evt_trigger",
                    &[compid.clone(), Value::Int(id)],
                )
                .expect("trigger");
                // Pending trigger: the wait returns immediately.
                rt.interface_call(app, t, svc, "evt_wait", &[compid.clone(), Value::Int(id)])
                    .expect("wait");
                rt.interface_call(app, t, svc, "evt_free", &[compid, Value::Int(id)])
                    .expect("free");
                4
            }
            "tmr" => {
                let svc = self.tb.ids.tmr;
                let id = rt
                    .interface_call(
                        app,
                        t,
                        svc,
                        "tmr_create",
                        &[compid.clone(), Value::Int(1_000_000)],
                    )
                    .expect("create")
                    .int()
                    .expect("id");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "tmr_period",
                    &[compid.clone(), Value::Int(id), Value::Int(2_000_000)],
                )
                .expect("period");
                rt.interface_call(app, t, svc, "tmr_free", &[compid, Value::Int(id)])
                    .expect("free");
                3
            }
            "mm" => {
                let svc = self.tb.ids.mm;
                let vaddr = 0x1000 + (seq % 512) * 0x1000;
                let root = rt
                    .interface_call(
                        app,
                        t,
                        svc,
                        "mman_get_page",
                        &[compid.clone(), Value::Int(vaddr as i64)],
                    )
                    .expect("get")
                    .int()
                    .expect("key");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "mman_alias_page",
                    &[
                        compid.clone(),
                        Value::Int(root),
                        Value::from(self.tb.ids.app2.0),
                        Value::Int(0x8_0000_0000u64 as i64 + vaddr as i64),
                    ],
                )
                .expect("alias");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "mman_release_page",
                    &[compid, Value::Int(root)],
                )
                .expect("release");
                3
            }
            "fs" => {
                let svc = self.tb.ids.fs;
                let path = format!("bench-{}.dat", seq % 8);
                let fd = rt
                    .interface_call(
                        app,
                        t,
                        svc,
                        "tsplit",
                        &[compid.clone(), Value::Int(0), Value::from(path.as_str())],
                    )
                    .expect("split")
                    .int()
                    .expect("fd");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "twrite",
                    &[compid.clone(), Value::Int(fd), Value::from(vec![0x42])],
                )
                .expect("write");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "tseek",
                    &[compid.clone(), Value::Int(fd), Value::Int(0)],
                )
                .expect("seek");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "tread",
                    &[compid.clone(), Value::Int(fd), Value::Int(1)],
                )
                .expect("read");
                rt.interface_call(app, t, svc, "trelease", &[compid, Value::Int(fd)])
                    .expect("release");
                5
            }
            other => panic!("unknown interface {other:?}"),
        }
    }

    /// Create one descriptor in a recoverable state and return the call
    /// that triggers on-demand recovery: (client, thread, component,
    /// function, args). For the event manager the recovering caller is
    /// the *foreign* client, so the measured path includes the G0
    /// storage lookup and the U0 upcall into the creator's edge — the
    /// reason Fig 6(b) shows events as the most expensive descriptors.
    ///
    /// # Panics
    ///
    /// Panics when setup calls fail.
    pub fn setup_recovery_victim(
        &mut self,
        iface: &str,
    ) -> (ComponentId, ThreadId, ComponentId, &'static str, Vec<Value>) {
        let rt = &mut self.tb.runtime;
        let app = self.tb.ids.app1;
        let t = self.thread;
        let compid = Value::from(app.0);
        match iface {
            "sched" => {
                let svc = self.tb.ids.sched;
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "sched_setup",
                    &[compid.clone(), Value::from(t.0)],
                )
                .expect("setup");
                (app, t, svc, "sched_wakeup", vec![compid, Value::from(t.0)])
            }
            "lock" => {
                let svc = self.tb.ids.lock;
                let id = rt
                    .interface_call(app, t, svc, "lock_alloc", std::slice::from_ref(&compid))
                    .expect("alloc")
                    .int()
                    .expect("id");
                rt.interface_call(app, t, svc, "lock_take", &[compid.clone(), Value::Int(id)])
                    .expect("take");
                // lock_take is idempotent for the owner, so the victim
                // call is repeatable across fault/recover cycles.
                (app, t, svc, "lock_take", vec![compid, Value::Int(id)])
            }
            "evt" => {
                let svc = self.tb.ids.evt;
                let id = rt
                    .interface_call(
                        app,
                        t,
                        svc,
                        "evt_split",
                        &[compid.clone(), Value::Int(0), Value::Int(1)],
                    )
                    .expect("split")
                    .int()
                    .expect("id");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "evt_trigger",
                    &[compid.clone(), Value::Int(id)],
                )
                .expect("trigger");
                // Recover from the foreign client: G0 lookup + U0 upcall.
                let app2 = self.tb.ids.app2;
                (
                    app2,
                    self.thread2,
                    svc,
                    "evt_trigger",
                    vec![Value::from(app2.0), Value::Int(id)],
                )
            }
            "tmr" => {
                let svc = self.tb.ids.tmr;
                let id = rt
                    .interface_call(
                        app,
                        t,
                        svc,
                        "tmr_create",
                        &[compid.clone(), Value::Int(1_000_000)],
                    )
                    .expect("create")
                    .int()
                    .expect("id");
                (
                    app,
                    t,
                    svc,
                    "tmr_period",
                    vec![compid, Value::Int(id), Value::Int(1_000_000)],
                )
            }
            "mm" => {
                let svc = self.tb.ids.mm;
                let root = rt
                    .interface_call(
                        app,
                        t,
                        svc,
                        "mman_get_page",
                        &[compid.clone(), Value::Int(0x4000)],
                    )
                    .expect("get")
                    .int()
                    .expect("key");
                // Re-aliasing the same destination is idempotent, and the
                // call exercises the D1 parent-first recovery of the root
                // mapping on every cycle.
                (
                    app,
                    t,
                    svc,
                    "mman_alias_page",
                    vec![
                        compid,
                        Value::Int(root),
                        Value::from(self.tb.ids.app2.0),
                        Value::Int(0x9000),
                    ],
                )
            }
            "fs" => {
                let svc = self.tb.ids.fs;
                let fd = rt
                    .interface_call(
                        app,
                        t,
                        svc,
                        "tsplit",
                        &[compid.clone(), Value::Int(0), Value::from("victim.dat")],
                    )
                    .expect("split")
                    .int()
                    .expect("fd");
                rt.interface_call(
                    app,
                    t,
                    svc,
                    "twrite",
                    &[compid.clone(), Value::Int(fd), Value::from(vec![1, 2, 3])],
                )
                .expect("write");
                (
                    app,
                    t,
                    svc,
                    "tseek",
                    vec![compid, Value::Int(fd), Value::Int(0)],
                )
            }
            other => panic!("unknown interface {other:?}"),
        }
    }
}

/// The six services in the paper's presentation order.
pub const SERVICES: [&str; 6] = ["sched", "mm", "fs", "lock", "evt", "tmr"];

/// Write flight-recorder shards to `path` as the JSON-lines format
/// `sgtrace` consumes, plus a Chrome `trace_event` rendering at
/// `path.chrome.json` (load in Perfetto / `chrome://tracing`).
///
/// # Panics
///
/// Panics when either file cannot be written.
pub fn write_trace(path: &str, shards: &[composite::TraceShard]) {
    std::fs::write(path, composite::shards_to_jsonl(shards)).expect("write trace");
    let chrome = format!("{path}.chrome.json");
    std::fs::write(&chrome, composite::shards_to_chrome(shards)).expect("write chrome trace");
    println!("trace written to {path} (+ {chrome} for Perfetto)");
}

/// The toolchain identifier recorded in `--bench-json` dumps.
#[must_use]
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Render windowed-telemetry sections as the `--series` JSON-lines
/// format `sgstat` consumes: one header line carrying the window width,
/// then each section's rows under its context label. Deterministic for
/// deterministic inputs — sections in caller order, rows in snapshot
/// (component, window) order.
#[must_use]
pub fn series_to_jsonl(
    window_ns: u64,
    sections: &[(String, &composite::SeriesSnapshot)],
) -> String {
    let mut out = composite::series_header(window_ns);
    for (context, snapshot) in sections {
        out.push_str(&snapshot.to_json_lines(context));
    }
    out
}

/// Write windowed-telemetry sections to `path` via [`series_to_jsonl`].
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn write_series(path: &str, window_ns: u64, sections: &[(String, &composite::SeriesSnapshot)]) {
    std::fs::write(path, series_to_jsonl(window_ns, sections)).expect("write series");
    println!("series written to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_run_under_all_variants() {
        for variant in [Variant::Bare, Variant::C3, Variant::SuperGlue] {
            let mut r = rig(variant);
            for iface in SERVICES {
                for seq in 0..3 {
                    r.run_iteration(iface, seq);
                }
            }
        }
    }

    #[test]
    fn recovery_victims_recover_under_both_ft_variants() {
        for variant in [Variant::C3, Variant::SuperGlue] {
            for iface in SERVICES {
                let mut r = rig(variant);
                let (client, thread, svc, fname, args) = r.setup_recovery_victim(iface);
                r.tb.runtime.inject_fault(svc);
                r.tb.runtime
                    .interface_call(client, thread, svc, fname, &args)
                    .unwrap_or_else(|e| panic!("{variant:?}/{iface}: {e}"));
                assert!(
                    r.tb.runtime.stats().faults_handled >= 1,
                    "{variant:?}/{iface}"
                );
            }
        }
    }

    #[test]
    fn handwritten_loc_counts_code_not_tests() {
        for (iface, src) in C3_STUB_SOURCES {
            let loc = handwritten_loc(src);
            assert!(loc > 50, "{iface}: {loc}");
            assert!(
                loc < superglue_compiler::count_loc(src),
                "{iface}: tests excluded"
            );
        }
    }
}
