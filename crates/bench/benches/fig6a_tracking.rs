//! Fig 6(a): per-iteration cost of the §V-B micro-workloads under no
//! FT, C³ stubs, and SuperGlue stubs. The difference between a variant
//! and the bare baseline is the descriptor-tracking infrastructure
//! overhead.
//!
//! Self-timed harness (`harness = false`): warms up, then reports the
//! mean wall-clock per iteration over a fixed batch. The simulation is
//! deterministic, so batch means are already tight.

use std::time::Instant;

use sg_bench::{rig, SERVICES};
use superglue::testbed::Variant;

const WARMUP: u64 = 200;
const ITERS: u64 = 2_000;

fn main() {
    println!("fig6a_tracking: ns/iteration (wall clock, {ITERS} iterations)");
    println!(
        "{:<6} {:>12} {:>12} {:>12}",
        "iface", "bare", "c3", "superglue"
    );
    for iface in SERVICES {
        let mut cols = Vec::new();
        for variant in [Variant::Bare, Variant::C3, Variant::SuperGlue] {
            let mut r = rig(variant);
            let mut seq = 0u64;
            for _ in 0..WARMUP {
                seq += 1;
                r.run_iteration(iface, seq);
            }
            let start = Instant::now();
            for _ in 0..ITERS {
                seq += 1;
                r.run_iteration(iface, seq);
            }
            cols.push((start.elapsed().as_nanos() / u128::from(ITERS)) as u64);
        }
        println!(
            "{:<6} {:>12} {:>12} {:>12}",
            iface, cols[0], cols[1], cols[2]
        );
    }
}
