//! Criterion version of Fig 6(a): per-iteration cost of the §V-B
//! micro-workloads under no FT, C³ stubs, and SuperGlue stubs. The
//! difference between a variant and the bare baseline is the
//! descriptor-tracking infrastructure overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::{rig, SERVICES};
use superglue::testbed::Variant;

fn bench_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_tracking");
    for iface in SERVICES {
        for (name, variant) in
            [("bare", Variant::Bare), ("c3", Variant::C3), ("superglue", Variant::SuperGlue)]
        {
            group.bench_with_input(
                BenchmarkId::new(iface, name),
                &variant,
                |b, &variant| {
                    let mut r = rig(variant);
                    let mut seq = 0u64;
                    b.iter(|| {
                        seq += 1;
                        r.run_iteration(iface, seq)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Compact sampling: the simulation is deterministic, so small sample
    // counts already give tight intervals, and the full suite stays fast
    // on one core.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_tracking
}
criterion_main!(benches);
