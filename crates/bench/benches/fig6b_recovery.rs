//! Criterion version of Fig 6(b): per-descriptor recovery cost — each
//! iteration injects a fail-stop fault and performs the call that drives
//! micro-reboot plus the on-demand recovery walk.

use composite::InterfaceCall as _;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::{rig, SERVICES};
use superglue::testbed::Variant;

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_recovery");
    for iface in SERVICES {
        for (name, variant) in [("c3", Variant::C3), ("superglue", Variant::SuperGlue)] {
            group.bench_with_input(BenchmarkId::new(iface, name), &variant, |b, &variant| {
                let mut r = rig(variant);
                let (client, thread, svc, fname, args) = r.setup_recovery_victim(iface);
                b.iter(|| {
                    r.tb.runtime.inject_fault(svc);
                    r.tb.runtime
                        .interface_call(client, thread, svc, fname, &args)
                        .expect("recovery succeeds")
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Compact sampling: the simulation is deterministic, so small sample
    // counts already give tight intervals, and the full suite stays fast
    // on one core.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_recovery
}
criterion_main!(benches);
