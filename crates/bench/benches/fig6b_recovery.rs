//! Fig 6(b): per-descriptor recovery cost — each iteration injects a
//! fail-stop fault and performs the call that drives micro-reboot plus
//! the on-demand recovery walk.
//!
//! Self-timed harness (`harness = false`): warms up, then reports the
//! mean wall-clock per fault-recover cycle over a fixed batch.

use std::time::Instant;

use composite::InterfaceCall as _;
use sg_bench::{rig, SERVICES};
use superglue::testbed::Variant;

const WARMUP: u64 = 50;
const ITERS: u64 = 500;

fn main() {
    println!("fig6b_recovery: ns/fault-recover cycle (wall clock, {ITERS} iterations)");
    println!("{:<6} {:>12} {:>12}", "iface", "c3", "superglue");
    for iface in SERVICES {
        let mut cols = Vec::new();
        for variant in [Variant::C3, Variant::SuperGlue] {
            let mut r = rig(variant);
            let (client, thread, svc, fname, args) = r.setup_recovery_victim(iface);
            let cycle = |r: &mut sg_bench::Rig| {
                r.tb.runtime.inject_fault(svc);
                r.tb.runtime
                    .interface_call(client, thread, svc, fname, &args)
                    .expect("recovery succeeds");
            };
            for _ in 0..WARMUP {
                cycle(&mut r);
            }
            let start = Instant::now();
            for _ in 0..ITERS {
                cycle(&mut r);
            }
            cols.push((start.elapsed().as_nanos() / u128::from(ITERS)) as u64);
        }
        println!("{:<6} {:>12} {:>12}", iface, cols[0], cols[1]);
    }
}
