//! Edge cases of the recovery environment: storage helpers without a
//! storage component, upcalls to unknown edges, recovery-time
//! accounting, and retry bookkeeping.

use composite::{CostModel, InterfaceCall as _, Kernel, Priority, ServiceError, SimTime, Value};
use sg_c3::stubs::C3LockStub;
use sg_c3::{FtRuntime, RuntimeConfig};
use sg_services::lock::LockService;
use sg_services::storage::StorageService;

fn runtime(
    with_storage: bool,
) -> (
    FtRuntime,
    composite::ComponentId,
    composite::ComponentId,
    composite::ThreadId,
) {
    let mut k = Kernel::with_costs(CostModel::paper_defaults());
    let app = k.add_client_component("app");
    let storage = k.add_component("storage", Box::new(StorageService::new()));
    let lock = k.add_component("lock", Box::new(LockService::new()));
    let t = k.create_thread(app, Priority(5));
    let cfg = RuntimeConfig {
        storage: with_storage.then_some(storage),
        ..RuntimeConfig::default()
    };
    let mut rt = FtRuntime::new(k, cfg);
    rt.install_stub(app, lock, Box::new(C3LockStub::new()));
    (rt, app, lock, t)
}

#[test]
fn recovery_time_is_attributed_to_the_faulted_server() {
    let (mut rt, app, lock, t) = runtime(true);
    let id = rt
        .interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
        .unwrap()
        .int()
        .unwrap();
    assert_eq!(rt.stats().recovery_time_of(lock), SimTime::ZERO);
    rt.inject_fault(lock);
    rt.interface_call(app, t, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
        .unwrap();
    let spent = rt.stats().recovery_time_of(lock);
    // At least the micro-reboot plus one replayed walk step.
    let costs = CostModel::paper_defaults();
    assert!(
        spent >= costs.micro_reboot + costs.recovery_step,
        "spent {spent}"
    );
}

#[test]
fn handle_fault_now_is_idempotent_on_healthy_components() {
    let (mut rt, _app, lock, t) = runtime(true);
    // No fault pending: a no-op, no reboot counted.
    rt.handle_fault_now(lock, t).unwrap();
    assert_eq!(rt.stats().faults_handled, 0);
}

#[test]
fn stats_expose_walk_and_descriptor_counters() {
    let (mut rt, app, lock, t) = runtime(true);
    let id = rt
        .interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
        .unwrap()
        .int()
        .unwrap();
    rt.interface_call(app, t, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
        .unwrap();
    rt.inject_fault(lock);
    rt.interface_call(
        app,
        t,
        lock,
        "lock_release",
        &[Value::Int(1), Value::Int(id)],
    )
    .unwrap();
    let s = rt.stats();
    assert_eq!(s.descriptors_recovered, 1);
    // Taken lock by the same thread: alloc + take replayed.
    assert_eq!(s.walk_steps_replayed, 2);
    assert_eq!(s.unrecovered, 0);
}

#[test]
fn config_is_inspectable() {
    let (rt, _, _, _) = runtime(false);
    assert!(rt.config().storage.is_none());
    assert_eq!(rt.config().max_retries, 3);
}

#[test]
fn eager_wakeups_are_counted_for_blocked_threads() {
    let (mut rt, app, lock, t) = runtime(true);
    let t2 = {
        use composite::KernelAccess as _;
        rt.kernel_mut().create_thread(app, Priority(6))
    };
    let id = rt
        .interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
        .unwrap()
        .int()
        .unwrap();
    rt.interface_call(app, t, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
        .unwrap();
    // t2 blocks contending the lock.
    let err = rt
        .interface_call(app, t2, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
        .unwrap_err();
    assert_eq!(err, composite::CallError::WouldBlock);
    rt.inject_fault(lock);
    // The owner's next call handles the fault; kernel released t2 when
    // the fault was raised — T0 accounting happens during the reboot.
    rt.interface_call(
        app,
        t,
        lock,
        "lock_release",
        &[Value::Int(1), Value::Int(id)],
    )
    .unwrap();
    assert_eq!(rt.stats().faults_handled, 1);
}

#[test]
fn service_errors_pass_through_untouched() {
    let (mut rt, app, lock, t) = runtime(true);
    // Freeing an unknown id: the service's NotFound is not translated.
    let err = rt
        .interface_call(app, t, lock, "lock_free", &[Value::Int(1), Value::Int(999)])
        .unwrap_err();
    assert!(matches!(
        err,
        composite::CallError::Service(ServiceError::NotFound)
    ));
}
