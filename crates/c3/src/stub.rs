//! The [`InterfaceStub`] trait: one object per (client component, server
//! interface) edge, interposing on every invocation.
//!
//! A stub is the code of Fig 4: it looks up/translates descriptors on
//! the way in, invokes the server, handles the inter-component fault
//! exception (micro-reboot + `goto redo`), and tracks descriptor state on
//! the way out. C³ stubs are hand-written ([`crate::stubs`]); SuperGlue
//! stubs are compiler-generated interpretations of the same contract.

use composite::{CallError, Value};

use crate::env::StubEnv;

/// What a stub decided about one call attempt (used internally by stub
/// implementations; exposed for reuse by the SuperGlue runtime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StubVerdict {
    /// The call completed with this value.
    Done(Value),
    /// The server faulted; the caller should run fault handling and redo.
    Redo,
}

/// A client-side interface stub for one (client, server) edge.
pub trait InterfaceStub: std::fmt::Debug {
    /// The interface this stub interposes on (e.g. `"lock"`).
    fn interface(&self) -> &'static str;

    /// Handle one invocation end-to-end: descriptor bookkeeping, the
    /// server call, fault handling with recovery and redo.
    ///
    /// # Errors
    ///
    /// [`CallError::WouldBlock`] propagates (the thread retries after
    /// wakeup); [`CallError::Fault`] surfaces only when recovery failed
    /// (retry budget exhausted or unrecoverable state); service errors
    /// pass through.
    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError>;

    /// Rebuild one descriptor in the (already rebooted) server — the R0
    /// walk, honoring D1 parent ordering. Invoked on-demand (T1), from
    /// eager recovery (T0 policy), or through an upcall (U0).
    ///
    /// # Errors
    ///
    /// [`CallError`] when replay fails.
    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc: i64) -> Result<(), CallError>;

    /// The server faulted: mark every tracked descriptor as needing
    /// recovery (the implicit transition to `s_f`).
    fn mark_faulty(&mut self);

    /// Recover every faulty descriptor now (the eager policy).
    ///
    /// # Errors
    ///
    /// The first replay failure.
    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError>;

    /// Number of descriptors currently tracked (tests/benches).
    fn tracked_count(&self) -> usize;

    /// Number of descriptors currently marked faulty (tests/benches).
    fn faulty_count(&self) -> usize;
}

/// Decide whether a call error is the server-fault exception for this
/// edge's server.
#[must_use]
pub fn is_server_fault(err: &CallError, server: composite::ComponentId) -> bool {
    matches!(err, CallError::Fault { component } if *component == server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::ComponentId;

    #[test]
    fn fault_detection_matches_server_only() {
        let e = CallError::Fault {
            component: ComponentId(3),
        };
        assert!(is_server_fault(&e, ComponentId(3)));
        assert!(!is_server_fault(&e, ComponentId(4)));
        assert!(!is_server_fault(&CallError::WouldBlock, ComponentId(3)));
    }
}
