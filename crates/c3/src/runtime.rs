//! The fault-tolerant runtime: kernel + per-edge stubs + recovery
//! orchestration (§III-D steps 1–9).
//!
//! [`FtRuntime`] implements [`composite::InterfaceCall`], so workloads
//! written against that trait transparently gain interface-driven
//! recovery. C³ populates the edge map with hand-written stubs; SuperGlue
//! populates it with compiler-generated ones — everything else is shared,
//! mirroring the paper ("SuperGlue, an infrastructure built on top of the
//! predictable recovery mechanisms of C³").

use composite::{
    CallError, ComponentId, EdgeMap, EscalationPolicy, InterfaceCall, Kernel, KernelAccess,
    ThreadId, Value,
};

use crate::env::{RecoveryStats, StubEnv};
use crate::stub::InterfaceStub;

/// When descriptor recovery work is performed (§III-C, T0/T1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Recover each descriptor lazily when a thread touches it, at that
    /// thread's priority (**T1**) — the paper's preferred policy.
    #[default]
    OnDemand,
    /// Recover every descriptor of every client edge immediately at
    /// fault-handling time (**T0**-style eager recovery, used by the
    /// ablation benchmarks).
    Eager,
}

/// Runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Eager vs on-demand recovery.
    pub policy: RecoveryPolicy,
    /// The storage component for G0/G1, if present.
    pub storage: Option<ComponentId>,
    /// Fault-handling retry budget per call.
    pub max_retries: u32,
    /// Reboot-storm escalation policy, installed into the kernel at
    /// construction. Disabled by default (classic C³ behaviour).
    pub escalation: EscalationPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            policy: RecoveryPolicy::OnDemand,
            storage: None,
            max_retries: 3,
            escalation: EscalationPolicy::disabled(),
        }
    }
}

/// Depth bound for re-entrant eager recovery: a correlated fault during
/// an eager sweep opens at most this many child recovery episodes before
/// the fault is surfaced to the caller.
pub const MAX_NESTED_RECOVERY: u32 = 4;

/// The fault-tolerant system: a kernel plus interface stubs on every
/// protected (client, server) edge.
#[derive(Debug)]
pub struct FtRuntime {
    kernel: Kernel,
    stubs: EdgeMap<Box<dyn InterfaceStub>>,
    config: RuntimeConfig,
    stats: RecoveryStats,
}

impl FtRuntime {
    /// Wrap a kernel with an empty edge map.
    #[must_use]
    pub fn new(mut kernel: Kernel, config: RuntimeConfig) -> Self {
        kernel.set_escalation(config.escalation);
        Self {
            kernel,
            stubs: EdgeMap::new(),
            config,
            stats: RecoveryStats::new(),
        }
    }

    /// Install a stub on the (client, server) edge, replacing any
    /// previous stub. Also grants the client the invocation capability
    /// and, when storage is configured, a capability to reach it for
    /// G0/G1 round trips.
    pub fn install_stub(
        &mut self,
        client: ComponentId,
        server: ComponentId,
        stub: Box<dyn InterfaceStub>,
    ) {
        self.kernel.grant(client, server);
        if let Some(storage) = self.config.storage {
            self.kernel.grant(client, storage);
        }
        self.stubs.insert(client, server, stub);
    }

    /// The recovery statistics.
    #[must_use]
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// The runtime configuration.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Immutable access to a stub (tests/benches).
    #[must_use]
    pub fn stub(&self, client: ComponentId, server: ComponentId) -> Option<&dyn InterfaceStub> {
        self.stubs.get(client, server).map(AsRef::as_ref)
    }

    /// Inject a fail-stop fault into a component (test/campaign entry
    /// point). The fault is handled lazily: the next invocation of the
    /// component triggers micro-reboot and recovery.
    pub fn inject_fault(&mut self, server: ComponentId) {
        self.stats.eager_wakeups += self.kernel.fault(server);
    }

    /// Handle a pending fault in `server` immediately (reboot + fault
    /// marking + eager recovery when configured), without waiting for
    /// the next client call. Used by eager-policy tests and benches.
    ///
    /// # Errors
    ///
    /// [`CallError::Fault`] when recovery is impossible.
    pub fn handle_fault_now(
        &mut self,
        server: ComponentId,
        thread: ThreadId,
    ) -> Result<(), CallError> {
        if !self.kernel.is_faulty(server) {
            return Ok(());
        }
        // Reboot via a detached env (no active edge); use the booter as
        // the "client".
        let mut env = StubEnv {
            kernel: &mut self.kernel,
            stubs: &mut self.stubs,
            stats: &mut self.stats,
            client: composite::BOOTER,
            thread,
            server,
            storage: self.config.storage,
            retries_left: self.config.max_retries,
        };
        env.ensure_rebooted()?;
        if self.config.policy == RecoveryPolicy::Eager {
            self.eager_recover(server, thread)?;
        }
        Ok(())
    }

    /// Eagerly sweep every still-faulty descriptor on every edge of
    /// `server`, regardless of the configured recovery policy. On-demand
    /// recovery is lazy per touched descriptor; this quiesces the rest —
    /// harnesses use it before comparing descriptor-table shapes.
    ///
    /// # Errors
    ///
    /// [`CallError::Fault`] when recovery is impossible.
    pub fn recover_now(&mut self, server: ComponentId, thread: ThreadId) -> Result<(), CallError> {
        self.eager_recover(server, thread)
    }

    /// Recover every descriptor of every edge of `server` right now.
    fn eager_recover(&mut self, server: ComponentId, thread: ThreadId) -> Result<(), CallError> {
        self.eager_recover_depth(server, thread, 0)
    }

    /// Re-entrant eager sweep: a fault raised *while the sweep is in
    /// flight* (a correlated fault) opens a child recovery episode — the
    /// culprit is rebooted and the sweep restarted — instead of aborting
    /// the parent recovery. Depth is bounded by
    /// [`MAX_NESTED_RECOVERY`]; past that the fault surfaces.
    fn eager_recover_depth(
        &mut self,
        server: ComponentId,
        thread: ThreadId,
        depth: u32,
    ) -> Result<(), CallError> {
        let mut restarts = 0u32;
        'sweep: loop {
            // clients_of is ascending by client id, matching the former
            // BTreeMap key order (recovery order is observable in traces).
            for client in self.stubs.clients_of(server) {
                let Some(mut stub) = self.stubs.take(client, server) else {
                    continue;
                };
                self.kernel.begin_recovery(server);
                let mut env = StubEnv {
                    kernel: &mut self.kernel,
                    stubs: &mut self.stubs,
                    stats: &mut self.stats,
                    client,
                    thread,
                    server,
                    storage: self.config.storage,
                    retries_left: self.config.max_retries,
                };
                let r = stub.recover_all(&mut env);
                self.kernel.end_recovery(server);
                self.stubs.insert(client, server, stub);
                if let Err(CallError::Fault { component }) = r {
                    if depth >= MAX_NESTED_RECOVERY || restarts >= MAX_NESTED_RECOVERY {
                        return r;
                    }
                    restarts += 1;
                    self.stats.nested_recoveries += 1;
                    // Child episode: reboot the culprit (which may be a
                    // *different* component — the cascade case), recover
                    // its edges one level deeper, then restart this sweep.
                    self.reboot_detached(component, thread)?;
                    if component != server {
                        self.eager_recover_depth(component, thread, depth + 1)?;
                    }
                    continue 'sweep;
                }
                r?;
            }
            return Ok(());
        }
    }

    /// Reboot `server` through a detached env (no active edge).
    fn reboot_detached(&mut self, server: ComponentId, thread: ThreadId) -> Result<(), CallError> {
        let mut env = StubEnv {
            kernel: &mut self.kernel,
            stubs: &mut self.stubs,
            stats: &mut self.stats,
            client: composite::BOOTER,
            thread,
            server,
            storage: self.config.storage,
            retries_left: self.config.max_retries,
        };
        env.ensure_rebooted().map(|_| ())
    }
}

impl KernelAccess for FtRuntime {
    fn kernel(&self) -> &Kernel {
        &self.kernel
    }
    fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }
}

impl InterfaceCall for FtRuntime {
    fn interface_call(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        server: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        // take/insert is two O(1) row indexes — the edge map is dense in
        // (client, server), so checkout does not search or allocate.
        let Some(mut stub) = self.stubs.take(client, server) else {
            // Unprotected edge: raw invocation (and raw fault exposure).
            return self.kernel.invoke(client, thread, server, fname, args);
        };
        // The per-invocation price of descriptor-state tracking — the
        // infrastructure overhead Fig 6(a) measures.
        let tracking = self.kernel.costs().tracking;
        self.kernel.charge(tracking);
        let mut env = StubEnv {
            kernel: &mut self.kernel,
            stubs: &mut self.stubs,
            stats: &mut self.stats,
            client,
            thread,
            server,
            storage: self.config.storage,
            retries_left: self.config.max_retries,
        };
        let mut result = stub.call(&mut env, fname, args);

        // Eager policy: a fault handled inside the call also recovers
        // every other edge of the server immediately.
        if self.config.policy == RecoveryPolicy::Eager {
            let rebooted_mid_call = env.retries_left < self.config.max_retries;
            let _ = env;
            self.stubs.insert(client, server, stub);
            if rebooted_mid_call {
                self.eager_recover(server, thread)?;
            }
            return result;
        }
        let _ = env;

        // On-demand: if the stub gave up (fault surfaced), record it.
        if matches!(result, Err(CallError::Fault { .. })) {
            self.stats.unrecovered += 1;
            result = Err(CallError::Fault { component: server });
        }
        self.stubs.insert(client, server, stub);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CostModel, Priority, ServiceError};

    /// A pass-through stub used to test the runtime plumbing.
    #[derive(Debug, Default)]
    struct NullStub {
        faulted: bool,
        calls: u64,
    }

    impl InterfaceStub for NullStub {
        fn interface(&self) -> &'static str {
            "null"
        }
        fn call(
            &mut self,
            env: &mut StubEnv<'_>,
            fname: &str,
            args: &[Value],
        ) -> Result<Value, CallError> {
            self.calls += 1;
            loop {
                match env.invoke(fname, args) {
                    Err(CallError::Fault { .. }) => {
                        env.ensure_rebooted()?;
                        self.faulted = false;
                    }
                    other => return other,
                }
            }
        }
        fn recover_descriptor(
            &mut self,
            _env: &mut StubEnv<'_>,
            _desc: i64,
        ) -> Result<(), CallError> {
            Ok(())
        }
        fn mark_faulty(&mut self) {
            self.faulted = true;
        }
        fn recover_all(&mut self, _env: &mut StubEnv<'_>) -> Result<(), CallError> {
            self.faulted = false;
            Ok(())
        }
        fn tracked_count(&self) -> usize {
            0
        }
        fn faulty_count(&self) -> usize {
            usize::from(self.faulted)
        }
    }

    #[derive(Debug, Default)]
    struct Counter {
        n: i64,
    }
    impl composite::Service for Counter {
        fn interface(&self) -> &'static str {
            "counter"
        }
        fn call(
            &mut self,
            _ctx: &mut composite::ServiceCtx<'_>,
            fname: &str,
            _args: &[Value],
        ) -> Result<Value, ServiceError> {
            match fname {
                "add" => {
                    self.n += 1;
                    Ok(Value::Int(self.n))
                }
                _ => Err(ServiceError::NoSuchFunction(fname.into())),
            }
        }
        fn reset(&mut self) {
            self.n = 0;
        }
    }

    fn setup() -> (FtRuntime, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let svc = k.add_component("counter", Box::new(Counter::default()));
        let t = k.create_thread(app, Priority(5));
        let mut rt = FtRuntime::new(k, RuntimeConfig::default());
        rt.install_stub(app, svc, Box::new(NullStub::default()));
        (rt, app, svc, t)
    }

    #[test]
    fn calls_route_through_stub() {
        let (mut rt, app, svc, t) = setup();
        let r = rt.interface_call(app, t, svc, "add", &[]).unwrap();
        assert_eq!(r, Value::Int(1));
    }

    #[test]
    fn fault_triggers_reboot_and_redo() {
        let (mut rt, app, svc, t) = setup();
        rt.interface_call(app, t, svc, "add", &[]).unwrap();
        rt.inject_fault(svc);
        // The stub's redo loop reboots the server and retries; the reset
        // counter restarts from zero.
        let r = rt.interface_call(app, t, svc, "add", &[]).unwrap();
        assert_eq!(r, Value::Int(1));
        assert_eq!(rt.stats().faults_handled, 1);
        assert!(!rt.kernel().is_faulty(svc));
    }

    #[test]
    fn unprotected_edges_pass_through_raw() {
        let (mut rt, app, _svc, t) = setup();
        let other = rt
            .kernel_mut()
            .add_component("counter2", Box::new(Counter::default()));
        rt.kernel_mut().grant(app, other);
        rt.interface_call(app, t, other, "add", &[]).unwrap();
        rt.inject_fault(other);
        // No stub: the fault surfaces raw.
        let err = rt.interface_call(app, t, other, "add", &[]).unwrap_err();
        assert!(matches!(err, CallError::Fault { .. }));
    }

    #[test]
    fn handle_fault_now_reboots_without_a_call() {
        let (mut rt, _app, svc, t) = setup();
        rt.inject_fault(svc);
        rt.handle_fault_now(svc, t).unwrap();
        assert!(!rt.kernel().is_faulty(svc));
        assert_eq!(rt.stats().faults_handled, 1);
    }

    #[test]
    fn repeated_faults_exhaust_retry_budget() {
        // A service that re-faults itself on every call.
        #[derive(Debug)]
        struct Refaulter {
            me: ComponentId,
        }
        impl composite::Service for Refaulter {
            fn interface(&self) -> &'static str {
                "refaulter"
            }
            fn call(
                &mut self,
                ctx: &mut composite::ServiceCtx<'_>,
                _f: &str,
                _a: &[Value],
            ) -> Result<Value, ServiceError> {
                ctx.raise_fault(self.me);
                Ok(Value::Unit)
            }
            fn reset(&mut self) {}
        }
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let svc = k.add_component("refaulter", Box::new(Refaulter { me: ComponentId(2) }));
        let t = k.create_thread(app, Priority(5));
        let mut rt = FtRuntime::new(k, RuntimeConfig::default());
        rt.install_stub(app, svc, Box::new(NullStub::default()));
        let err = rt.interface_call(app, t, svc, "x", &[]).unwrap_err();
        assert!(matches!(err, CallError::Fault { .. }));
        assert!(rt.stats().unrecovered >= 1);
    }

    #[test]
    fn eager_policy_recovers_all_edges_on_handle() {
        let mut k = Kernel::with_costs(CostModel::free());
        let app1 = k.add_client_component("a1");
        let app2 = k.add_client_component("a2");
        let svc = k.add_component("counter", Box::new(Counter::default()));
        let t = k.create_thread(app1, Priority(5));
        let mut rt = FtRuntime::new(
            k,
            RuntimeConfig {
                policy: RecoveryPolicy::Eager,
                ..RuntimeConfig::default()
            },
        );
        rt.install_stub(app1, svc, Box::new(NullStub::default()));
        rt.install_stub(app2, svc, Box::new(NullStub::default()));
        rt.inject_fault(svc);
        rt.handle_fault_now(svc, t).unwrap();
        // Both edges were recovered eagerly.
        assert_eq!(rt.stub(app1, svc).unwrap().faulty_count(), 0);
        assert_eq!(rt.stub(app2, svc).unwrap().faulty_count(), 0);
    }
}
