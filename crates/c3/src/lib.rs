//! C³ — interface-driven recovery for the simulated COMPOSITE OS.
//!
//! C³ (Song et al., RTSS 2013; §II-C of the SuperGlue paper) contributes
//! the *mechanisms* of system-level fault recovery:
//!
//! 1. fail-stop fault detection at the invocation boundary;
//! 2. booter-driven **micro-reboot** of the failed component;
//! 3. client-side **interface stubs** that track descriptor state and
//!    replay interface functions to rebuild the server (the `redo:` loop
//!    of Fig 4);
//! 4. **eager** (fault-time) versus **on-demand** (access-time,
//!    priority-inheriting) recovery policies;
//! 5. **reflection** on kernel state and **upcalls** into client
//!    components;
//! 6. the **storage component** round trips for global descriptors and
//!    resource data.
//!
//! This crate implements all of those mechanisms in [`runtime::FtRuntime`]
//! — shared by SuperGlue, which *generates* its stubs — plus the
//! hand-written per-service stubs ([`stubs`]) that are the paper's C³
//! baseline: verbose, service-specific recovery code whose line counts
//! Fig 6(c) compares against the SuperGlue IDL.

pub mod env;
pub mod runtime;
pub mod stub;
pub mod stubs;

pub use env::{RecoveryStats, StubEnv};
pub use runtime::{FtRuntime, RecoveryPolicy, RuntimeConfig, MAX_NESTED_RECOVERY};
pub use stub::{InterfaceStub, StubVerdict};
