//! Hand-written C³ stub for the `sched` interface.
//!
//! The scheduler's descriptors are thread records keyed by kernel thread
//! id, so recovered descriptors keep their ids (no translation). The
//! replay is `sched_setup` only: a thread's *blocked-ness* is
//! re-established by its own retried `sched_blk` (the paper's "re-blocks
//! the thread to match the client's expectations"), and wakeups that were
//! pending at fault time are conservatively re-pended so no wakeup is
//! ever lost across a micro-reboot.

use std::collections::BTreeMap;

use composite::{CallError, Value};

use crate::env::StubEnv;
use crate::stub::{is_server_fault, InterfaceStub};

/// Pass-through invocation that still honors the fault exception: the
/// server is micro-rebooted (and this stub's descriptors marked faulty)
/// before the call is redone, so untracked-descriptor calls observe
/// post-reboot semantics (e.g. NotFound) rather than the raw fault.
macro_rules! passthrough {
    ($self:ident, $env:ident, $fname:ident, $args:ident) => {
        loop {
            match $env.invoke($fname, $args) {
                Err(e) if is_server_fault(&e, $env.server) => {
                    $env.ensure_rebooted()?;
                    $self.mark_faulty();
                }
                other => return other,
            }
        }
    };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedState {
    /// Registered; last observed running.
    Ready,
    /// A wakeup was sent and may not have been consumed yet.
    WakeupPending,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SchedDesc {
    state: SchedState,
    faulty: bool,
}

/// Hand-written C³ client stub for the scheduler.
#[derive(Debug, Default)]
pub struct C3SchedStub {
    descs: BTreeMap<i64, SchedDesc>,
}

impl C3SchedStub {
    /// An empty stub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl InterfaceStub for C3SchedStub {
    fn interface(&self) -> &'static str {
        "sched"
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        if fname == "sched_setup" {
            loop {
                match env.invoke(fname, args) {
                    Ok(v) => {
                        let id = v.int().map_err(|e| CallError::Service(e.into()))?;
                        self.descs.insert(
                            id,
                            SchedDesc {
                                state: SchedState::Ready,
                                faulty: false,
                            },
                        );
                        return Ok(v);
                    }
                    Err(e) if is_server_fault(&e, env.server) => {
                        env.ensure_rebooted()?;
                        self.mark_faulty();
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        let desc = args.get(1).and_then(|v| v.int().ok()).unwrap_or(-1);
        if !self.descs.contains_key(&desc) {
            passthrough!(self, env, fname, args);
        }

        loop {
            if self.descs.get(&desc).is_some_and(|d| d.faulty) {
                self.recover_descriptor(env, desc)?;
            }
            match env.invoke(fname, args) {
                Ok(v) => {
                    let d = self.descs.get_mut(&desc).expect("tracked above");
                    match fname {
                        "sched_blk" => d.state = SchedState::Ready,
                        "sched_wakeup" => d.state = SchedState::WakeupPending,
                        "sched_exit" => {
                            self.descs.remove(&desc);
                            env.note_teardown(1);
                        }
                        _ => {}
                    }
                    return Ok(v);
                }
                Err(CallError::WouldBlock) => return Err(CallError::WouldBlock),
                Err(e) if is_server_fault(&e, env.server) => {
                    env.ensure_rebooted()?;
                    self.mark_faulty();
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&desc) else {
            return Ok(());
        };
        if !d.faulty {
            return Ok(());
        }
        let state = d.state;
        let compid = Value::from(env.client.0);
        // Replay the registration (ids are stable: the thread id).
        env.replay("sched_setup", &[compid.clone(), Value::Int(desc)])?;
        // Re-pend a possibly unconsumed wakeup so it is not lost across
        // the reboot; a spurious extra wakeup only costs one non-blocking
        // sched_blk.
        if state == SchedState::WakeupPending {
            env.replay("sched_wakeup", &[compid, Value::Int(desc)])?;
        }
        let d = self.descs.get_mut(&desc).expect("still tracked");
        d.faulty = false;
        env.note_descriptor_recovered();
        Ok(())
    }

    fn mark_faulty(&mut self) {
        for d in self.descs.values_mut() {
            d.faulty = true;
        }
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        let ids: Vec<i64> = self
            .descs
            .iter()
            .filter(|(_, d)| d.faulty)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            match self.recover_descriptor(env, id) {
                Ok(()) => {}
                // Freed elsewhere before the fault: drop the stale record.
                Err(CallError::Service(composite::ServiceError::NotFound)) => {
                    self.descs.remove(&id);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn tracked_count(&self) -> usize {
        self.descs.len()
    }

    fn faulty_count(&self) -> usize {
        self.descs.values().filter(|d| d.faulty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{
        ComponentId, CostModel, Executor, InterfaceCall as _, Kernel, Priority, RunExit, ThreadId,
    };
    use sg_services::api::ClientEnd;
    use sg_services::scheduler::Scheduler;
    use sg_services::workloads::SchedPingPong;

    use crate::runtime::{FtRuntime, RuntimeConfig};

    fn setup() -> (FtRuntime, ComponentId, ComponentId, ThreadId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let sched = k.add_component("sched", Box::new(Scheduler::new()));
        let t1 = k.create_thread(app, Priority(5));
        let t2 = k.create_thread(app, Priority(5));
        let mut rt = FtRuntime::new(k, RuntimeConfig::default());
        rt.install_stub(app, sched, Box::new(C3SchedStub::new()));
        (rt, app, sched, t1, t2)
    }

    #[test]
    fn setup_tracks_descriptor() {
        let (mut rt, app, sched, t1, _) = setup();
        rt.interface_call(
            app,
            t1,
            sched,
            "sched_setup",
            &[Value::Int(1), Value::from(t1.0)],
        )
        .unwrap();
        assert_eq!(rt.stub(app, sched).unwrap().tracked_count(), 1);
    }

    #[test]
    fn wakeup_recovers_descriptor_after_fault() {
        let (mut rt, app, sched, t1, _) = setup();
        rt.interface_call(
            app,
            t1,
            sched,
            "sched_setup",
            &[Value::Int(1), Value::from(t1.0)],
        )
        .unwrap();
        rt.inject_fault(sched);
        rt.interface_call(
            app,
            t1,
            sched,
            "sched_wakeup",
            &[Value::Int(1), Value::from(t1.0)],
        )
        .unwrap();
        assert_eq!(rt.stats().faults_handled, 1);
        assert!(rt.stats().descriptors_recovered >= 1);
    }

    #[test]
    fn pending_wakeup_survives_recovery() {
        let (mut rt, app, sched, t1, _) = setup();
        rt.interface_call(
            app,
            t1,
            sched,
            "sched_setup",
            &[Value::Int(1), Value::from(t1.0)],
        )
        .unwrap();
        rt.interface_call(
            app,
            t1,
            sched,
            "sched_wakeup",
            &[Value::Int(1), Value::from(t1.0)],
        )
        .unwrap();
        rt.inject_fault(sched);
        // After recovery, the pending wakeup is re-pended, so blk does
        // not block.
        let r = rt
            .interface_call(
                app,
                t1,
                sched,
                "sched_blk",
                &[Value::Int(1), Value::from(t1.0)],
            )
            .unwrap();
        assert_eq!(r, Value::Int(0));
    }

    #[test]
    fn ping_pong_survives_mid_run_fault() {
        let (mut rt, app, sched, t1, t2) = setup();
        let mut ex: Executor<FtRuntime> = Executor::new();
        ex.attach(
            t1,
            Box::new(SchedPingPong::new(
                ClientEnd::new(app, t1, sched),
                t2,
                20,
                true,
            )),
        );
        ex.attach(
            t2,
            Box::new(SchedPingPong::new(
                ClientEnd::new(app, t2, sched),
                t1,
                20,
                false,
            )),
        );
        // Run a bit, crash the scheduler, keep running: the workload
        // completes across the fault.
        ex.run(&mut rt, 50);
        rt.inject_fault(sched);
        assert_eq!(ex.run(&mut rt, 100_000), RunExit::AllDone);
        assert_eq!(rt.stats().faults_handled, 1);
        assert_eq!(rt.stats().unrecovered, 0);
    }

    #[test]
    fn repeated_faults_are_each_recovered() {
        let (mut rt, app, sched, t1, t2) = setup();
        let mut ex: Executor<FtRuntime> = Executor::new();
        ex.attach(
            t1,
            Box::new(SchedPingPong::new(
                ClientEnd::new(app, t1, sched),
                t2,
                30,
                true,
            )),
        );
        ex.attach(
            t2,
            Box::new(SchedPingPong::new(
                ClientEnd::new(app, t2, sched),
                t1,
                30,
                false,
            )),
        );
        for _ in 0..3 {
            ex.run(&mut rt, 40);
            rt.inject_fault(sched);
        }
        assert_eq!(ex.run(&mut rt, 100_000), RunExit::AllDone);
        assert_eq!(rt.stats().faults_handled, 3);
        assert_eq!(rt.stats().unrecovered, 0);
    }
}
