//! Hand-written C³ stub for the `fs` (RamFS) interface.
//!
//! This is the stub the paper singles out for its bulk ("more than 398
//! lines of code"): file descriptors carry a path and an offset, both of
//! which must be tracked from arguments *and return values* (reads and
//! writes advance the offset), and recovery must re-open by full path and
//! re-seek. The file *contents* are not the stub's problem — RamFS
//! persists them through the storage component (**G1**) inside its own
//! critical sections and re-fetches them on demand.
//!
//! Descriptor ids change across recoveries (the server allocates fresh
//! fds), so the stub translates client-visible fds to current server fds
//! on every call.

use std::collections::BTreeMap;

use composite::{CallError, Value};

use crate::env::StubEnv;
use crate::stub::{is_server_fault, InterfaceStub};

/// Pass-through invocation that still honors the fault exception: the
/// server is micro-rebooted (and this stub's descriptors marked faulty)
/// before the call is redone, so untracked-descriptor calls observe
/// post-reboot semantics (e.g. NotFound) rather than the raw fault.
macro_rules! passthrough {
    ($self:ident, $env:ident, $fname:ident, $args:ident) => {
        loop {
            match $env.invoke($fname, $args) {
                Err(e) if is_server_fault(&e, $env.server) => {
                    $env.ensure_rebooted()?;
                    $self.mark_faulty();
                }
                other => return other,
            }
        }
    };
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FdDesc {
    /// Current server-side fd (changes across recoveries).
    server_fd: i64,
    /// Full path relative to the root torrent, replayable with parent 0.
    full_path: String,
    /// Current offset, updated from call arguments and return values.
    offset: i64,
    faulty: bool,
}

/// Hand-written C³ client stub for the RAM filesystem.
#[derive(Debug, Default)]
pub struct C3FsStub {
    descs: BTreeMap<i64, FdDesc>,
}

impl C3FsStub {
    /// An empty stub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn server_fd(&self, fd: i64) -> i64 {
        if fd == 0 {
            return 0; // the root torrent is eternal
        }
        self.descs.get(&fd).map_or(fd, |d| d.server_fd)
    }

    /// The full path of a descriptor (for parent resolution at split
    /// time). Root is the empty path.
    fn full_path_of(&self, fd: i64) -> Option<String> {
        if fd == 0 {
            return Some(String::new());
        }
        self.descs.get(&fd).map(|d| d.full_path.clone())
    }
}

impl InterfaceStub for C3FsStub {
    fn interface(&self) -> &'static str {
        "fs"
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        if fname == "tsplit" {
            let parent = args.get(1).and_then(|v| v.int().ok()).unwrap_or(0);
            let rel = args
                .get(2)
                .and_then(|v| v.str().ok())
                .unwrap_or("")
                .to_owned();
            loop {
                // D1: the parent descriptor must be live to resolve the
                // path (its tracked full path suffices even if released).
                if self.descs.get(&parent).is_some_and(|d| d.faulty) {
                    env.note_parent_first();
                    self.recover_descriptor(env, parent)?;
                }
                let mut real_args = args.to_vec();
                real_args[1] = Value::Int(self.server_fd(parent));
                match env.invoke(fname, &real_args) {
                    Ok(v) => {
                        let fd = v.int().map_err(|e| CallError::Service(e.into()))?;
                        let parent_path = self.full_path_of(parent).unwrap_or_default();
                        self.descs.insert(
                            fd,
                            FdDesc {
                                server_fd: fd,
                                full_path: format!("{parent_path}/{rel}"),
                                offset: 0,
                                faulty: false,
                            },
                        );
                        return Ok(v);
                    }
                    Err(e) if is_server_fault(&e, env.server) => {
                        env.ensure_rebooted()?;
                        self.mark_faulty();
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        let fd = args.get(1).and_then(|v| v.int().ok()).unwrap_or(-1);
        if fd != 0 && !self.descs.contains_key(&fd) {
            passthrough!(self, env, fname, args);
        }

        loop {
            if self.descs.get(&fd).is_some_and(|d| d.faulty) {
                self.recover_descriptor(env, fd)?;
            }
            let mut real_args = args.to_vec();
            real_args[1] = Value::Int(self.server_fd(fd));
            match env.invoke(fname, &real_args) {
                Ok(v) => {
                    if let Some(d) = self.descs.get_mut(&fd) {
                        match fname {
                            // Offset tracking from args and return values
                            // (§II-C: "updated based on the return values
                            // from read and write").
                            "tseek" => d.offset = args[2].int().unwrap_or(0),
                            "tread" => {
                                if let Value::Bytes(b) = &v {
                                    d.offset += b.len() as i64;
                                }
                            }
                            "twrite" => d.offset += v.int().unwrap_or(0),
                            "trelease" => {
                                self.descs.remove(&fd);
                                env.note_teardown(1);
                            }
                            _ => {}
                        }
                    }
                    return Ok(v);
                }
                Err(CallError::WouldBlock) => return Err(CallError::WouldBlock),
                Err(e) if is_server_fault(&e, env.server) => {
                    env.ensure_rebooted()?;
                    self.mark_faulty();
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, fd: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&fd) else {
            return Ok(());
        };
        if !d.faulty {
            return Ok(());
        }
        let (full_path, offset) = (d.full_path.clone(), d.offset);
        let compid = Value::from(env.client.0);

        // Re-open by full path against the root: the walk is
        // [tsplit, tseek], restoring both tracked metadata values. RamFS
        // itself re-fetches lost file contents from storage (G1) inside
        // tsplit.
        let rel = full_path.strip_prefix('/').unwrap_or(&full_path).to_owned();
        let v = env.replay("tsplit", &[compid.clone(), Value::Int(0), Value::from(rel)])?;
        let new_fd = v.int().map_err(|e| CallError::Service(e.into()))?;
        if offset != 0 {
            env.replay("tseek", &[compid, Value::Int(new_fd), Value::Int(offset)])?;
        }
        let d = self.descs.get_mut(&fd).expect("still tracked");
        d.server_fd = new_fd;
        d.faulty = false;
        env.note_descriptor_recovered();
        Ok(())
    }

    fn mark_faulty(&mut self) {
        for d in self.descs.values_mut() {
            d.faulty = true;
        }
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        let ids: Vec<i64> = self
            .descs
            .iter()
            .filter(|(_, d)| d.faulty)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            match self.recover_descriptor(env, id) {
                Ok(()) => {}
                // Freed elsewhere before the fault: drop the stale record.
                Err(CallError::Service(composite::ServiceError::NotFound)) => {
                    self.descs.remove(&id);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn tracked_count(&self) -> usize {
        self.descs.len()
    }

    fn faulty_count(&self) -> usize {
        self.descs.values().filter(|d| d.faulty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{ComponentId, CostModel, InterfaceCall as _, Kernel, Priority, ThreadId};
    use sg_services::cbuf::CbufService;
    use sg_services::ramfs::RamFs;
    use sg_services::storage::StorageService;

    use crate::runtime::{FtRuntime, RuntimeConfig};

    fn rig() -> (FtRuntime, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let st = k.add_component("storage", Box::new(StorageService::new()));
        let cb = k.add_component("cbuf", Box::new(CbufService::new()));
        let fs = k.add_component("fs", Box::new(RamFs::new(st, cb)));
        k.grant(fs, st);
        k.grant(fs, cb);
        let t = k.create_thread(app, Priority(5));
        let mut rt = FtRuntime::new(
            k,
            RuntimeConfig {
                storage: Some(st),
                ..RuntimeConfig::default()
            },
        );
        rt.install_stub(app, fs, Box::new(C3FsStub::new()));
        (rt, app, fs, t)
    }

    fn tsplit(
        rt: &mut FtRuntime,
        app: ComponentId,
        fs: ComponentId,
        t: ThreadId,
        path: &str,
    ) -> i64 {
        rt.interface_call(
            app,
            t,
            fs,
            "tsplit",
            &[Value::Int(1), Value::Int(0), Value::from(path)],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    #[test]
    fn open_write_read_close_with_mid_fault() {
        let (mut rt, app, fs, t) = rig();
        let fd = tsplit(&mut rt, app, fs, t, "f.txt");
        rt.interface_call(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![0x42])],
        )
        .unwrap();
        rt.inject_fault(fs);
        // Recovery re-opens by path and re-seeks to offset 1; the read at
        // the rewound offset 0 then sees the persisted byte.
        rt.interface_call(
            app,
            t,
            fs,
            "tseek",
            &[Value::Int(1), Value::Int(fd), Value::Int(0)],
        )
        .unwrap();
        let r = rt
            .interface_call(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![0x42]));
        assert_eq!(rt.stats().faults_handled, 1);
    }

    #[test]
    fn offset_is_restored_by_recovery() {
        let (mut rt, app, fs, t) = rig();
        let fd = tsplit(&mut rt, app, fs, t, "f.txt");
        rt.interface_call(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![1, 2, 3])],
        )
        .unwrap();
        rt.inject_fault(fs);
        // Next read happens at the *recovered* offset 3 → EOF (empty).
        let r = rt
            .interface_call(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(4)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![]));
    }

    #[test]
    fn fd_translation_after_recovery() {
        let (mut rt, app, fs, t) = rig();
        let fd = tsplit(&mut rt, app, fs, t, "f.txt");
        rt.inject_fault(fs);
        rt.interface_call(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![9])],
        )
        .unwrap();
        // The same client-visible fd keeps working (translated).
        rt.interface_call(
            app,
            t,
            fs,
            "tseek",
            &[Value::Int(1), Value::Int(fd), Value::Int(0)],
        )
        .unwrap();
        let r = rt
            .interface_call(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![9]));
        rt.interface_call(app, t, fs, "trelease", &[Value::Int(1), Value::Int(fd)])
            .unwrap();
        assert_eq!(rt.stub(app, fs).unwrap().tracked_count(), 0);
    }

    #[test]
    fn nested_paths_recover_via_full_path() {
        let (mut rt, app, fs, t) = rig();
        let dir = tsplit(&mut rt, app, fs, t, "dir");
        let fd = rt
            .interface_call(
                app,
                t,
                fs,
                "tsplit",
                &[Value::Int(1), Value::Int(dir), Value::from("leaf")],
            )
            .unwrap()
            .int()
            .unwrap();
        rt.interface_call(
            app,
            t,
            fs,
            "twrite",
            &[Value::Int(1), Value::Int(fd), Value::from(vec![5])],
        )
        .unwrap();
        rt.inject_fault(fs);
        rt.interface_call(
            app,
            t,
            fs,
            "tseek",
            &[Value::Int(1), Value::Int(fd), Value::Int(0)],
        )
        .unwrap();
        let r = rt
            .interface_call(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![5]));
    }

    #[test]
    fn workload_survives_repeated_faults() {
        use composite::{Executor, RunExit};
        use sg_services::api::ClientEnd;
        use sg_services::workloads::FsOpenWriteRead;

        let (mut rt, app, fs, t) = rig();
        let mut ex: Executor<FtRuntime> = Executor::new();
        ex.attach(
            t,
            Box::new(FsOpenWriteRead::new(ClientEnd::new(app, t, fs), 12)),
        );
        for _ in 0..4 {
            ex.run(&mut rt, 9);
            rt.inject_fault(fs);
        }
        assert_eq!(ex.run(&mut rt, 100_000), RunExit::AllDone);
        assert_eq!(rt.stats().unrecovered, 0);
        assert_eq!(rt.stats().faults_handled, 4);
    }
}
