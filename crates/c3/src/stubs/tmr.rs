//! Hand-written C³ stub for the `tmr` interface.
//!
//! Timer descriptors carry one metadata value — the period — tracked from
//! the `tmr_create`/`tmr_period` arguments. Recovery replays
//! `tmr_create(period)`, re-arming the timer relative to the current
//! virtual time; a period may stretch across the fault, and periodicity
//! resumes, matching the paper's timer semantics. Server ids change
//! across recoveries, so the stub translates them.

use std::collections::BTreeMap;

use composite::{CallError, Value};

use crate::env::StubEnv;
use crate::stub::{is_server_fault, InterfaceStub};

/// Pass-through invocation that still honors the fault exception: the
/// server is micro-rebooted (and this stub's descriptors marked faulty)
/// before the call is redone, so untracked-descriptor calls observe
/// post-reboot semantics (e.g. NotFound) rather than the raw fault.
macro_rules! passthrough {
    ($self:ident, $env:ident, $fname:ident, $args:ident) => {
        loop {
            match $env.invoke($fname, $args) {
                Err(e) if is_server_fault(&e, $env.server) => {
                    $env.ensure_rebooted()?;
                    $self.mark_faulty();
                }
                other => return other,
            }
        }
    };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TmrDesc {
    server_id: i64,
    period_ns: i64,
    faulty: bool,
}

/// Hand-written C³ client stub for the timer manager.
#[derive(Debug, Default)]
pub struct C3TmrStub {
    descs: BTreeMap<i64, TmrDesc>,
}

impl C3TmrStub {
    /// An empty stub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn rewrite(&self, desc: i64, args: &[Value]) -> Vec<Value> {
        let mut out = args.to_vec();
        if let Some(d) = self.descs.get(&desc) {
            out[1] = Value::Int(d.server_id);
        }
        out
    }
}

impl InterfaceStub for C3TmrStub {
    fn interface(&self) -> &'static str {
        "tmr"
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        if fname == "tmr_create" {
            let period = args.get(1).and_then(|v| v.int().ok()).unwrap_or(0);
            loop {
                match env.invoke(fname, args) {
                    Ok(v) => {
                        let id = v.int().map_err(|e| CallError::Service(e.into()))?;
                        self.descs.insert(
                            id,
                            TmrDesc {
                                server_id: id,
                                period_ns: period,
                                faulty: false,
                            },
                        );
                        return Ok(v);
                    }
                    Err(e) if is_server_fault(&e, env.server) => {
                        env.ensure_rebooted()?;
                        self.mark_faulty();
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        let desc = args.get(1).and_then(|v| v.int().ok()).unwrap_or(-1);
        if !self.descs.contains_key(&desc) {
            passthrough!(self, env, fname, args);
        }

        loop {
            if self.descs.get(&desc).is_some_and(|d| d.faulty) {
                self.recover_descriptor(env, desc)?;
            }
            let real_args = self.rewrite(desc, args);
            match env.invoke(fname, &real_args) {
                Ok(v) => {
                    let d = self.descs.get_mut(&desc).expect("tracked above");
                    match fname {
                        "tmr_period" => d.period_ns = args[2].int().unwrap_or(d.period_ns),
                        "tmr_free" => {
                            self.descs.remove(&desc);
                            env.note_teardown(1);
                        }
                        _ => {}
                    }
                    return Ok(v);
                }
                Err(CallError::WouldBlock) => return Err(CallError::WouldBlock),
                Err(e) if is_server_fault(&e, env.server) => {
                    env.ensure_rebooted()?;
                    self.mark_faulty();
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&desc) else {
            return Ok(());
        };
        if !d.faulty {
            return Ok(());
        }
        let period = d.period_ns;
        let v = env.replay(
            "tmr_create",
            &[Value::from(env.client.0), Value::Int(period)],
        )?;
        let new_id = v.int().map_err(|e| CallError::Service(e.into()))?;
        let d = self.descs.get_mut(&desc).expect("still tracked");
        d.server_id = new_id;
        d.faulty = false;
        env.note_descriptor_recovered();
        Ok(())
    }

    fn mark_faulty(&mut self) {
        for d in self.descs.values_mut() {
            d.faulty = true;
        }
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        let ids: Vec<i64> = self
            .descs
            .iter()
            .filter(|(_, d)| d.faulty)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            match self.recover_descriptor(env, id) {
                Ok(()) => {}
                // Freed elsewhere before the fault: drop the stale record.
                Err(CallError::Service(composite::ServiceError::NotFound)) => {
                    self.descs.remove(&id);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn tracked_count(&self) -> usize {
        self.descs.len()
    }

    fn faulty_count(&self) -> usize {
        self.descs.values().filter(|d| d.faulty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{
        ComponentId, CostModel, InterfaceCall as _, Kernel, KernelAccess as _, Priority, SimTime,
        ThreadId,
    };
    use sg_services::timer::TimerService;

    use crate::runtime::{FtRuntime, RuntimeConfig};

    fn rig() -> (FtRuntime, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let tmr = k.add_component("tmr", Box::new(TimerService::new()));
        let t = k.create_thread(app, Priority(5));
        let mut rt = FtRuntime::new(k, RuntimeConfig::default());
        rt.install_stub(app, tmr, Box::new(C3TmrStub::new()));
        (rt, app, tmr, t)
    }

    #[test]
    fn create_and_wait_track_descriptor() {
        let (mut rt, app, tmr, t) = rig();
        let id = rt
            .interface_call(
                app,
                t,
                tmr,
                "tmr_create",
                &[Value::Int(1), Value::Int(1_000)],
            )
            .unwrap()
            .int()
            .unwrap();
        assert_eq!(rt.stub(app, tmr).unwrap().tracked_count(), 1);
        let err = rt
            .interface_call(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
    }

    #[test]
    fn timer_recovers_and_rearms_after_fault() {
        let (mut rt, app, tmr, t) = rig();
        let id = rt
            .interface_call(
                app,
                t,
                tmr,
                "tmr_create",
                &[Value::Int(1), Value::Int(1_000)],
            )
            .unwrap()
            .int()
            .unwrap();
        rt.inject_fault(tmr);
        // The wait triggers recovery: replay create (new server id, armed
        // at now + period) then redo wait → sleeps.
        let err = rt
            .interface_call(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert_eq!(rt.stats().faults_handled, 1);
        assert!(rt.kernel().earliest_wakeup().is_some());
    }

    #[test]
    fn period_updates_are_tracked_for_recovery() {
        let (mut rt, app, tmr, t) = rig();
        let id = rt
            .interface_call(
                app,
                t,
                tmr,
                "tmr_create",
                &[Value::Int(1), Value::Int(1_000)],
            )
            .unwrap()
            .int()
            .unwrap();
        rt.interface_call(
            app,
            t,
            tmr,
            "tmr_period",
            &[Value::Int(1), Value::Int(id), Value::Int(9_000)],
        )
        .unwrap();
        rt.inject_fault(tmr);
        let _ = rt.interface_call(app, t, tmr, "tmr_wait", &[Value::Int(1), Value::Int(id)]);
        // Recovered timer was re-created with the *updated* period.
        let deadline = rt.kernel().earliest_wakeup().unwrap();
        assert_eq!(deadline, SimTime(9_000));
    }

    #[test]
    fn periodic_workload_survives_fault() {
        use composite::{Executor, RunExit};
        use sg_services::api::ClientEnd;
        use sg_services::workloads::TimerPeriodic;

        let (mut rt, app, tmr, t) = rig();
        let mut ex: Executor<FtRuntime> = Executor::new();
        ex.attach(
            t,
            Box::new(TimerPeriodic::new(
                ClientEnd::new(app, t, tmr),
                1_000_000,
                10,
            )),
        );
        ex.run(&mut rt, 6);
        rt.inject_fault(tmr);
        assert_eq!(ex.run(&mut rt, 100_000), RunExit::AllDone);
        assert_eq!(rt.stats().unrecovered, 0);
    }
}
