//! Hand-written C³ stub for the `mm` interface.
//!
//! Mapping descriptors are `(component, vaddr)` keys, deterministic
//! across recoveries (no id translation). Aliases depend on their source
//! mapping (`P_dr = XCParent`), so recovery is ordered root-first (D1):
//! before an alias is replayed, its parent chain is rebuilt — via an
//! upcall into the creating component's edge when the parent was created
//! by a different client (**U0**, §II-D: "upcalls are made into client
//! components in order to rebuild correct state between dependent
//! mappings"). Releases remove the tracked subtree (D0, recursive
//! revocation).

use std::collections::BTreeMap;

use composite::{CallError, Value};

use crate::env::StubEnv;
use crate::stub::{is_server_fault, InterfaceStub};

/// Pass-through invocation that still honors the fault exception: the
/// server is micro-rebooted (and this stub's descriptors marked faulty)
/// before the call is redone, so untracked-descriptor calls observe
/// post-reboot semantics (e.g. NotFound) rather than the raw fault.
macro_rules! passthrough {
    ($self:ident, $env:ident, $fname:ident, $args:ident) => {
        loop {
            match $env.invoke($fname, $args) {
                Err(e) if is_server_fault(&e, $env.server) => {
                    $env.ensure_rebooted()?;
                    $self.mark_faulty();
                }
                other => return other,
            }
        }
    };
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct MapDesc {
    /// None for root mappings; the parent's key for aliases.
    parent: Option<i64>,
    /// The creation arguments, replayed verbatim on recovery.
    create_fn: &'static str,
    create_args: Vec<Value>,
    children: Vec<i64>,
    faulty: bool,
}

/// Hand-written C³ client stub for the memory manager.
#[derive(Debug, Default)]
pub struct C3MmStub {
    descs: BTreeMap<i64, MapDesc>,
}

impl C3MmStub {
    /// An empty stub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns how many tracked descriptors the revocation dropped.
    fn remove_subtree(&mut self, root: i64) -> u64 {
        let mut dropped = 0;
        let mut stack = vec![root];
        while let Some(k) = stack.pop() {
            if let Some(d) = self.descs.remove(&k) {
                dropped += 1;
                stack.extend(d.children);
                if let Some(p) = d.parent {
                    if let Some(pd) = self.descs.get_mut(&p) {
                        pd.children.retain(|&c| c != k);
                    }
                }
            }
        }
        dropped
    }
}

impl InterfaceStub for C3MmStub {
    fn interface(&self) -> &'static str {
        "mm"
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        match fname {
            "mman_get_page" | "mman_alias_page" => loop {
                // D1 for aliases: the source mapping must be live first.
                if fname == "mman_alias_page" {
                    let parent_key = args[1].int().unwrap_or(0);
                    if self.descs.get(&parent_key).is_some_and(|d| d.faulty) {
                        env.note_parent_first();
                        self.recover_descriptor(env, parent_key)?;
                    }
                }
                match env.invoke(fname, args) {
                    Ok(v) => {
                        let key = v.int().map_err(|e| CallError::Service(e.into()))?;
                        let parent = if fname == "mman_alias_page" {
                            Some(args[1].int().unwrap_or(0))
                        } else {
                            None
                        };
                        if let Some(p) = parent {
                            if let Some(pd) = self.descs.get_mut(&p) {
                                if !pd.children.contains(&key) {
                                    pd.children.push(key);
                                }
                            }
                        }
                        self.descs.entry(key).or_insert(MapDesc {
                            parent,
                            create_fn: if fname == "mman_get_page" {
                                "mman_get_page"
                            } else {
                                "mman_alias_page"
                            },
                            create_args: args.to_vec(),
                            children: Vec::new(),
                            faulty: false,
                        });
                        return Ok(v);
                    }
                    Err(e) if is_server_fault(&e, env.server) => {
                        env.ensure_rebooted()?;
                        self.mark_faulty();
                    }
                    Err(e) => return Err(e),
                }
            },
            "mman_release_page" => {
                let key = args[1].int().unwrap_or(0);
                loop {
                    if self.descs.get(&key).is_some_and(|d| d.faulty) {
                        self.recover_descriptor(env, key)?;
                    }
                    match env.invoke(fname, args) {
                        Ok(v) => {
                            // D0: recursive revocation drops the tracked
                            // subtree.
                            let dropped = self.remove_subtree(key);
                            env.note_teardown(dropped);
                            return Ok(v);
                        }
                        Err(e) if is_server_fault(&e, env.server) => {
                            env.ensure_rebooted()?;
                            self.mark_faulty();
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            _ => passthrough!(self, env, fname, args),
        }
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&desc) else {
            // Parent tracked by another client's edge: upcall into the
            // component that owns the mapping (encoded in the key).
            let owner = composite::ComponentId((desc >> 40) as u32);
            if owner != env.client {
                return env.upcall_recover(owner, desc);
            }
            return Ok(());
        };
        if !d.faulty {
            return Ok(());
        }
        let (parent, create_fn, create_args) = (d.parent, d.create_fn, d.create_args.clone());
        // D1: rebuild the parent chain root-first.
        if let Some(p) = parent {
            env.note_parent_first();
            self.recover_descriptor(env, p)?;
        }
        // Replay the creation; get_page/alias_page are idempotent against
        // surviving kernel mappings, so the same key comes back.
        let v = env.replay(create_fn, &create_args)?;
        debug_assert_eq!(v.int().ok(), Some(desc), "mapping keys are deterministic");
        let d = self.descs.get_mut(&desc).expect("still tracked");
        d.faulty = false;
        env.note_descriptor_recovered();
        Ok(())
    }

    fn mark_faulty(&mut self) {
        for d in self.descs.values_mut() {
            d.faulty = true;
        }
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        let ids: Vec<i64> = self
            .descs
            .iter()
            .filter(|(_, d)| d.faulty)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            match self.recover_descriptor(env, id) {
                Ok(()) => {}
                // Freed elsewhere before the fault: drop the stale record.
                Err(CallError::Service(composite::ServiceError::NotFound)) => {
                    self.descs.remove(&id);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn tracked_count(&self) -> usize {
        self.descs.len()
    }

    fn faulty_count(&self) -> usize {
        self.descs.values().filter(|d| d.faulty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{
        ComponentId, CostModel, InterfaceCall as _, Kernel, KernelAccess as _, Priority, ThreadId,
    };
    use sg_services::mm::MemoryManager;

    use crate::runtime::{FtRuntime, RuntimeConfig};

    fn rig() -> (FtRuntime, ComponentId, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app1 = k.add_client_component("app1");
        let app2 = k.add_client_component("app2");
        let mm = k.add_component("mm", Box::new(MemoryManager::new()));
        let t = k.create_thread(app1, Priority(5));
        let mut rt = FtRuntime::new(k, RuntimeConfig::default());
        rt.install_stub(app1, mm, Box::new(C3MmStub::new()));
        rt.install_stub(app2, mm, Box::new(C3MmStub::new()));
        (rt, app1, app2, mm, t)
    }

    fn get_page(rt: &mut FtRuntime, app: ComponentId, mm: ComponentId, t: ThreadId, v: i64) -> i64 {
        rt.interface_call(
            app,
            t,
            mm,
            "mman_get_page",
            &[Value::from(app.0), Value::Int(v)],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    fn alias(
        rt: &mut FtRuntime,
        app: ComponentId,
        mm: ComponentId,
        t: ThreadId,
        src_key: i64,
        dst: ComponentId,
        dst_vaddr: i64,
    ) -> i64 {
        rt.interface_call(
            app,
            t,
            mm,
            "mman_alias_page",
            &[
                Value::from(app.0),
                Value::Int(src_key),
                Value::from(dst.0),
                Value::Int(dst_vaddr),
            ],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    #[test]
    fn tracks_roots_and_aliases() {
        let (mut rt, app1, app2, mm, t) = rig();
        let root = get_page(&mut rt, app1, mm, t, 0x1000);
        alias(&mut rt, app1, mm, t, root, app2, 0x8000);
        assert_eq!(rt.stub(app1, mm).unwrap().tracked_count(), 2);
    }

    #[test]
    fn root_recovers_after_fault_with_same_frame() {
        let (mut rt, app1, _a2, mm, t) = rig();
        let root = get_page(&mut rt, app1, mm, t, 0x1000);
        let frame = rt.kernel().pages().translate(app1, 0x1000).unwrap();
        rt.inject_fault(mm);
        // Releasing triggers recovery (replay get_page) then the release.
        rt.interface_call(
            app1,
            t,
            mm,
            "mman_release_page",
            &[Value::from(app1.0), Value::Int(root)],
        )
        .unwrap();
        assert_eq!(rt.stats().faults_handled, 1);
        // The replayed mapping reused the surviving frame before being
        // released.
        let _ = frame;
        assert_eq!(rt.kernel().pages().translate(app1, 0x1000), None);
    }

    #[test]
    fn alias_recovery_rebuilds_parent_first() {
        let (mut rt, app1, app2, mm, t) = rig();
        let root = get_page(&mut rt, app1, mm, t, 0x1000);
        alias(&mut rt, app1, mm, t, root, app2, 0x8000);
        rt.inject_fault(mm);
        // A fresh alias of the same source: D1 recovers the root first,
        // then the new alias is created.
        alias(&mut rt, app1, mm, t, root, app2, 0x9000);
        assert!(rt.stats().descriptors_recovered >= 1);
        assert_eq!(
            rt.kernel().pages().translate(app1, 0x1000),
            rt.kernel().pages().translate(app2, 0x9000)
        );
    }

    #[test]
    fn release_drops_tracked_subtree() {
        let (mut rt, app1, app2, mm, t) = rig();
        let root = get_page(&mut rt, app1, mm, t, 0x1000);
        alias(&mut rt, app1, mm, t, root, app2, 0x8000);
        rt.interface_call(
            app1,
            t,
            mm,
            "mman_release_page",
            &[Value::from(app1.0), Value::Int(root)],
        )
        .unwrap();
        assert_eq!(rt.stub(app1, mm).unwrap().tracked_count(), 0);
    }

    #[test]
    fn full_workload_survives_fault() {
        use composite::{Executor, RunExit};
        use sg_services::api::ClientEnd;
        use sg_services::workloads::MmGrantAliasRevoke;

        let (mut rt, app1, app2, mm, t) = rig();
        let mut ex: Executor<FtRuntime> = Executor::new();
        ex.attach(
            t,
            Box::new(MmGrantAliasRevoke::new(
                ClientEnd::new(app1, t, mm),
                app2,
                10,
            )),
        );
        ex.run(&mut rt, 7);
        rt.inject_fault(mm);
        assert_eq!(ex.run(&mut rt, 100_000), RunExit::AllDone);
        assert_eq!(rt.stats().unrecovered, 0);
        assert_eq!(rt.kernel().pages().mapping_count(), 0);
    }
}
