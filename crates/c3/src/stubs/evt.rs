//! Hand-written C³ stub for the `evt` interface — the most involved
//! baseline stub, since event descriptors are **global** (§III-C G0/U0):
//! the same event id is used from multiple client components, so after a
//! micro-reboot the descriptor must be rebuilt *under its original id*.
//!
//! On every `evt_split` the creating client's stub records
//! ⟨id → creator, parent, grp⟩ in the storage component. When recovery
//! finds a faulty descriptor, the stub either restores it directly (if
//! this client created it, using its tracked metadata) or looks up the
//! creator in storage and upcalls into the creator's edge to rebuild it
//! (**U0**), then re-pends an unconsumed trigger if one was outstanding.

use std::collections::BTreeMap;

use composite::{CallError, ServiceError, Value};

use crate::env::StubEnv;
use crate::stub::{is_server_fault, InterfaceStub};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvtState {
    /// Created / waited (nothing pending).
    Idle,
    /// A trigger may be unconsumed.
    TriggerPending,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct EvtDesc {
    /// Whether this client created the event (owns the metadata).
    creator: bool,
    parent: i64,
    grp: i64,
    state: EvtState,
    faulty: bool,
}

/// Hand-written C³ client stub for the event manager.
#[derive(Debug, Default)]
pub struct C3EvtStub {
    descs: BTreeMap<i64, EvtDesc>,
}

impl C3EvtStub {
    /// An empty stub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Track a descriptor this client did not create (first foreign use).
    fn track_foreign(&mut self, id: i64) {
        self.descs.entry(id).or_insert(EvtDesc {
            creator: false,
            parent: 0,
            grp: 0,
            state: EvtState::Idle,
            faulty: false,
        });
    }
}

impl InterfaceStub for C3EvtStub {
    fn interface(&self) -> &'static str {
        "evt"
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        if fname == "evt_split" {
            let parent = args.get(1).and_then(|v| v.int().ok()).unwrap_or(0);
            let grp = args.get(2).and_then(|v| v.int().ok()).unwrap_or(0);
            loop {
                // D1: a parented split needs its parent alive first.
                if parent != 0 && self.descs.get(&parent).is_some_and(|d| d.faulty) {
                    env.note_parent_first();
                    self.recover_descriptor(env, parent)?;
                }
                match env.invoke(fname, args) {
                    Ok(v) => {
                        let id = v.int().map_err(|e| CallError::Service(e.into()))?;
                        self.descs.insert(
                            id,
                            EvtDesc {
                                creator: true,
                                parent,
                                grp,
                                state: EvtState::Idle,
                                faulty: false,
                            },
                        );
                        // G0: record the global descriptor in storage so
                        // any client can find its creator post-reboot.
                        env.storage_record("evt", id, env.client, parent, grp)?;
                        return Ok(v);
                    }
                    Err(e) if is_server_fault(&e, env.server) => {
                        env.ensure_rebooted()?;
                        self.mark_faulty();
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        let desc = args.get(1).and_then(|v| v.int().ok()).unwrap_or(-1);
        self.track_foreign(desc);
        let mut g0_attempted = false;

        loop {
            if self.descs.get(&desc).is_some_and(|d| d.faulty) {
                self.recover_descriptor(env, desc)?;
            }
            match env.invoke(fname, args) {
                Ok(v) => {
                    let d = self.descs.get_mut(&desc).expect("tracked above");
                    match fname {
                        "evt_wait" => d.state = EvtState::Idle,
                        "evt_trigger" => d.state = EvtState::TriggerPending,
                        "evt_free" => {
                            self.descs.remove(&desc);
                            env.note_teardown(1);
                            if let Some(storage) = env.storage {
                                let _ = env.kernel.invoke(
                                    env.client,
                                    env.thread,
                                    storage,
                                    "st_unrecord",
                                    &[Value::from("evt"), Value::Int(desc)],
                                );
                            }
                        }
                        _ => {}
                    }
                    return Ok(v);
                }
                Err(CallError::WouldBlock) => return Err(CallError::WouldBlock),
                Err(e) if is_server_fault(&e, env.server) => {
                    env.ensure_rebooted()?;
                    self.mark_faulty();
                }
                // The server lost this global descriptor (rebuilt server,
                // record missing): give G0 recovery exactly one chance —
                // mark the descriptor faulty so the next loop iteration
                // runs recover_descriptor, then redo the invocation.
                Err(CallError::Service(ServiceError::NotFound)) if !g0_attempted => {
                    g0_attempted = true;
                    self.descs.get_mut(&desc).expect("tracked above").faulty = true;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&desc) else {
            return Ok(());
        };
        if !d.faulty {
            return Ok(());
        }
        let (creator, parent, grp, state) = (d.creator, d.parent, d.grp, d.state);

        if creator {
            // D1: rebuild the parent first, root-first ordering.
            if parent != 0 && self.descs.get(&parent).is_some_and(|p| p.faulty) {
                env.note_parent_first();
                self.recover_descriptor(env, parent)?;
            }
            // Restore under the original global id using tracked
            // metadata.
            env.replay(
                "evt_restore",
                &[
                    Value::from(env.client.0),
                    Value::Int(desc),
                    Value::Int(parent),
                    Value::Int(grp),
                ],
            )?;
            if state == EvtState::TriggerPending {
                // Re-pend the possibly unconsumed trigger.
                env.replay(
                    "evt_trigger",
                    &[Value::from(env.client.0), Value::Int(desc)],
                )?;
            }
        } else {
            // G0: find the creator through the storage component and
            // upcall into its edge to rebuild the descriptor (U0).
            let creator_comp = env.storage_lookup_creator("evt", desc)?;
            if creator_comp == env.client || creator_comp.0 == u32::MAX {
                return Err(CallError::Service(ServiceError::NotFound));
            }
            env.upcall_recover(creator_comp, desc)?;
        }
        let d = self.descs.get_mut(&desc).expect("still tracked");
        d.faulty = false;
        env.note_descriptor_recovered();
        Ok(())
    }

    fn mark_faulty(&mut self) {
        for d in self.descs.values_mut() {
            d.faulty = true;
        }
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        let ids: Vec<i64> = self
            .descs
            .iter()
            .filter(|(_, d)| d.faulty)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            match self.recover_descriptor(env, id) {
                Ok(()) => {}
                // Freed elsewhere before the fault: drop the stale record.
                Err(CallError::Service(composite::ServiceError::NotFound)) => {
                    self.descs.remove(&id);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn tracked_count(&self) -> usize {
        self.descs.len()
    }

    fn faulty_count(&self) -> usize {
        self.descs.values().filter(|d| d.faulty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{ComponentId, CostModel, InterfaceCall as _, Kernel, Priority, ThreadId};
    use sg_services::event::EventService;
    use sg_services::storage::StorageService;

    use crate::runtime::{FtRuntime, RuntimeConfig};

    struct Rig {
        rt: FtRuntime,
        app1: ComponentId,
        app2: ComponentId,
        evt: ComponentId,
        t1: ThreadId,
        t2: ThreadId,
    }

    fn rig() -> Rig {
        let mut k = Kernel::with_costs(CostModel::free());
        let app1 = k.add_client_component("app1");
        let app2 = k.add_client_component("app2");
        let evt = k.add_component("evt", Box::new(EventService::new()));
        let storage = k.add_component("storage", Box::new(StorageService::new()));
        let t1 = k.create_thread(app1, Priority(5));
        let t2 = k.create_thread(app2, Priority(5));
        let mut rt = FtRuntime::new(
            k,
            RuntimeConfig {
                storage: Some(storage),
                ..RuntimeConfig::default()
            },
        );
        rt.install_stub(app1, evt, Box::new(C3EvtStub::new()));
        rt.install_stub(app2, evt, Box::new(C3EvtStub::new()));
        Rig {
            rt,
            app1,
            app2,
            evt,
            t1,
            t2,
        }
    }

    fn split(r: &mut Rig) -> i64 {
        r.rt.interface_call(
            r.app1,
            r.t1,
            r.evt,
            "evt_split",
            &[Value::from(r.app1.0), Value::Int(0), Value::Int(1)],
        )
        .unwrap()
        .int()
        .unwrap()
    }

    #[test]
    fn split_records_in_storage() {
        let mut r = rig();
        let _id = split(&mut r);
        assert!(r.rt.stats().storage_roundtrips >= 1);
    }

    #[test]
    fn creator_recovers_under_original_id() {
        let mut r = rig();
        let id = split(&mut r);
        r.rt.interface_call(
            r.app1,
            r.t1,
            r.evt,
            "evt_trigger",
            &[Value::from(r.app1.0), Value::Int(id)],
        )
        .unwrap();
        r.rt.inject_fault(r.evt);
        // The creator's next wait recovers the event under the same id;
        // the pending trigger was re-pended, so the wait succeeds
        // immediately.
        let v =
            r.rt.interface_call(
                r.app1,
                r.t1,
                r.evt,
                "evt_wait",
                &[Value::from(r.app1.0), Value::Int(id)],
            )
            .unwrap();
        assert_eq!(
            v,
            Value::Int(id),
            "global id must be stable across recovery"
        );
    }

    #[test]
    fn foreign_client_recovers_via_storage_and_upcall() {
        let mut r = rig();
        let id = split(&mut r);
        r.rt.inject_fault(r.evt);
        // app2 (not the creator) triggers: G0 storage lookup + U0 upcall
        // into app1's edge rebuild the event, then the trigger lands.
        r.rt.interface_call(
            r.app2,
            r.t2,
            r.evt,
            "evt_trigger",
            &[Value::from(r.app2.0), Value::Int(id)],
        )
        .unwrap();
        assert!(r.rt.stats().upcalls >= 1);
        assert!(r.rt.stats().storage_roundtrips >= 2);
        // The trigger is visible to the creator.
        let v =
            r.rt.interface_call(
                r.app1,
                r.t1,
                r.evt,
                "evt_wait",
                &[Value::from(r.app1.0), Value::Int(id)],
            )
            .unwrap();
        assert_eq!(v, Value::Int(id));
    }

    #[test]
    fn free_unrecords_from_storage() {
        let mut r = rig();
        let id = split(&mut r);
        r.rt.interface_call(
            r.app1,
            r.t1,
            r.evt,
            "evt_free",
            &[Value::from(r.app1.0), Value::Int(id)],
        )
        .unwrap();
        // A post-free recovery attempt finds no storage record.
        r.rt.inject_fault(r.evt);
        let err =
            r.rt.interface_call(
                r.app2,
                r.t2,
                r.evt,
                "evt_trigger",
                &[Value::from(r.app2.0), Value::Int(id)],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CallError::Service(ServiceError::NotFound) | CallError::Fault { .. }
        ));
    }

    #[test]
    fn unrecoverable_without_storage_record() {
        let mut r = rig();
        // app2 uses an id that was never recorded.
        r.rt.inject_fault(r.evt);
        let err =
            r.rt.interface_call(
                r.app2,
                r.t2,
                r.evt,
                "evt_wait",
                &[Value::from(r.app2.0), Value::Int(424_242)],
            )
            .unwrap_err();
        assert!(matches!(err, CallError::Service(ServiceError::NotFound)));
    }
}
