//! Hand-written C³ stub for the `lock` interface.
//!
//! Tracks each lock's expected state with an explicit three-state enum
//! and replays `lock_alloc` (+ `lock_take` when the recovering thread is
//! the holder) after a server micro-reboot. A lock held by a *different*
//! thread cannot be re-taken on the recovering thread's behalf — the
//! retake is deferred until the holder next touches the descriptor
//! (thread-affine completion).

use std::collections::BTreeMap;

use composite::{CallError, ServiceError, ThreadId, Value};

use crate::env::StubEnv;
use crate::stub::{is_server_fault, InterfaceStub};

/// Pass-through invocation that still honors the fault exception: the
/// server is micro-rebooted (and this stub's descriptors marked faulty)
/// before the call is redone, so untracked-descriptor calls observe
/// post-reboot semantics (e.g. NotFound) rather than the raw fault.
macro_rules! passthrough {
    ($self:ident, $env:ident, $fname:ident, $args:ident) => {
        loop {
            match $env.invoke($fname, $args) {
                Err(e) if is_server_fault(&e, $env.server) => {
                    $env.ensure_rebooted()?;
                    $self.mark_faulty();
                }
                other => return other,
            }
        }
    };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockState {
    /// Allocated, not held.
    Available,
    /// Held by `state_thread`.
    Taken,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct LockDesc {
    /// Current id at the server (changes across recoveries).
    server_id: i64,
    state: LockState,
    /// The thread whose call produced the current state.
    state_thread: Option<ThreadId>,
    faulty: bool,
    /// The holder must replay `lock_take` before its next operation.
    pending_retake: bool,
}

/// Hand-written C³ client stub for the lock service.
#[derive(Debug, Default)]
pub struct C3LockStub {
    descs: BTreeMap<i64, LockDesc>,
}

impl C3LockStub {
    /// An empty stub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewrite the descriptor argument (position 1) to the current
    /// server id.
    fn rewrite_args(&self, desc: i64, args: &[Value]) -> Vec<Value> {
        let mut out = args.to_vec();
        if let Some(d) = self.descs.get(&desc) {
            out[1] = Value::Int(d.server_id);
        }
        out
    }

    fn complete_pending(&mut self, env: &mut StubEnv<'_>, desc: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&desc) else {
            return Ok(());
        };
        if !d.pending_retake || d.state_thread != Some(env.thread) {
            return Ok(());
        }
        let server_id = d.server_id;
        let compid = Value::from(env.client.0);
        env.replay("lock_take", &[compid, Value::Int(server_id)])?;
        self.descs
            .get_mut(&desc)
            .expect("checked above")
            .pending_retake = false;
        env.note_descriptor_recovered();
        Ok(())
    }
}

impl InterfaceStub for C3LockStub {
    fn interface(&self) -> &'static str {
        "lock"
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        // lock_alloc creates; everything else acts on args[1].
        if fname == "lock_alloc" {
            loop {
                match env.invoke(fname, args) {
                    Ok(v) => {
                        let id = v.int().map_err(|e| CallError::Service(e.into()))?;
                        self.descs.insert(
                            id,
                            LockDesc {
                                server_id: id,
                                state: LockState::Available,
                                state_thread: Some(env.thread),
                                faulty: false,
                                pending_retake: false,
                            },
                        );
                        return Ok(v);
                    }
                    Err(e) if is_server_fault(&e, env.server) => {
                        env.ensure_rebooted()?;
                        self.mark_faulty();
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        let desc = args.get(1).and_then(|v| v.int().ok()).unwrap_or(-1);
        if !self.descs.contains_key(&desc) {
            // Untracked descriptor: pass through (and surface errors raw).
            passthrough!(self, env, fname, args);
        }

        loop {
            if self.descs.get(&desc).is_some_and(|d| d.faulty) {
                self.recover_descriptor(env, desc)?;
            }
            self.complete_pending(env, desc)?;
            let real_args = self.rewrite_args(desc, args);
            match env.invoke(fname, &real_args) {
                Ok(v) => {
                    let d = self.descs.get_mut(&desc).expect("tracked above");
                    match fname {
                        "lock_take" => {
                            d.state = LockState::Taken;
                            d.state_thread = Some(env.thread);
                        }
                        "lock_release" => {
                            d.state = LockState::Available;
                            d.state_thread = Some(env.thread);
                        }
                        "lock_free" => {
                            self.descs.remove(&desc);
                            env.note_teardown(1);
                        }
                        _ => {}
                    }
                    return Ok(v);
                }
                Err(CallError::WouldBlock) => return Err(CallError::WouldBlock),
                Err(e) if is_server_fault(&e, env.server) => {
                    env.ensure_rebooted()?;
                    self.mark_faulty();
                    // loop: recover + redo
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&desc) else {
            return Ok(());
        };
        if !d.faulty {
            return Ok(());
        }
        let (state, state_thread) = (d.state, d.state_thread);
        let compid = Value::from(env.client.0);

        // Replay the creation to obtain a fresh server id.
        let v = env.replay("lock_alloc", std::slice::from_ref(&compid))?;
        let new_id = v.int().map_err(|e| CallError::Service(e.into()))?;

        let d = self.descs.get_mut(&desc).expect("still tracked");
        d.server_id = new_id;
        d.faulty = false;
        match state {
            LockState::Available => {}
            LockState::Taken => {
                if state_thread == Some(env.thread) {
                    env.replay("lock_take", &[compid, Value::Int(new_id)])?;
                } else {
                    // Thread-affine: restore the hold for the *recorded*
                    // owner so the recovering thread cannot usurp it.
                    let owner = state_thread.map_or(0, |t| i64::from(t.0));
                    env.replay(
                        "lock_restore",
                        &[compid, Value::Int(new_id), Value::Int(owner)],
                    )?;
                    env.note_deferred_completion();
                }
            }
        }
        env.note_descriptor_recovered();
        Ok(())
    }

    fn mark_faulty(&mut self) {
        for d in self.descs.values_mut() {
            d.faulty = true;
        }
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        let ids: Vec<i64> = self
            .descs
            .iter()
            .filter(|(_, d)| d.faulty)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            match self.recover_descriptor(env, id) {
                Ok(()) => {}
                // Freed elsewhere before the fault: drop the stale record.
                Err(CallError::Service(composite::ServiceError::NotFound)) => {
                    self.descs.remove(&id);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn tracked_count(&self) -> usize {
        self.descs.len()
    }

    fn faulty_count(&self) -> usize {
        self.descs.values().filter(|d| d.faulty).count()
    }
}

/// Surface NotFound-style errors for callers needing them (kept for
/// parity with the generated stubs' error taxonomy).
#[must_use]
pub fn is_not_found(e: &CallError) -> bool {
    matches!(e, CallError::Service(ServiceError::NotFound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{ComponentId, CostModel, Kernel, Priority};
    use sg_services::lock::LockService;

    use crate::runtime::{FtRuntime, RuntimeConfig};
    use composite::InterfaceCall as _;

    fn setup() -> (FtRuntime, ComponentId, ComponentId, ThreadId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        let lock = k.add_component("lock", Box::new(LockService::new()));
        let t1 = k.create_thread(app, Priority(5));
        let t2 = k.create_thread(app, Priority(5));
        let mut rt = FtRuntime::new(k, RuntimeConfig::default());
        rt.install_stub(app, lock, Box::new(C3LockStub::new()));
        (rt, app, lock, t1, t2)
    }

    fn alloc(rt: &mut FtRuntime, app: ComponentId, lock: ComponentId, t: ThreadId) -> i64 {
        rt.interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
            .unwrap()
            .int()
            .unwrap()
    }

    #[test]
    fn tracks_descriptors_through_lifecycle() {
        let (mut rt, app, lock, t1, _) = setup();
        let id = alloc(&mut rt, app, lock, t1);
        assert_eq!(rt.stub(app, lock).unwrap().tracked_count(), 1);
        rt.interface_call(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        rt.interface_call(
            app,
            t1,
            lock,
            "lock_release",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
        rt.interface_call(app, t1, lock, "lock_free", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        assert_eq!(rt.stub(app, lock).unwrap().tracked_count(), 0);
    }

    #[test]
    fn available_lock_recovers_transparently() {
        let (mut rt, app, lock, t1, _) = setup();
        let id = alloc(&mut rt, app, lock, t1);
        rt.inject_fault(lock);
        // The take triggers fault handling + recovery + redo.
        rt.interface_call(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        assert_eq!(rt.stats().faults_handled, 1);
        assert!(rt.stats().descriptors_recovered >= 1);
    }

    #[test]
    fn taken_lock_recovers_for_the_holder() {
        let (mut rt, app, lock, t1, _) = setup();
        let id = alloc(&mut rt, app, lock, t1);
        rt.interface_call(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        rt.inject_fault(lock);
        // The holder's release triggers recovery: replay alloc + take,
        // then redo release.
        rt.interface_call(
            app,
            t1,
            lock,
            "lock_release",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
        assert_eq!(rt.stats().faults_handled, 1);
    }

    #[test]
    fn taken_lock_defers_retake_for_other_threads() {
        let (mut rt, app, lock, t1, t2) = setup();
        let id = alloc(&mut rt, app, lock, t1);
        rt.interface_call(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        rt.inject_fault(lock);
        // t2 contends: recovery replays alloc and then restores the hold
        // for t1 (the recorded owner), so t2's take blocks — exactly the
        // pre-fault expectation.
        let err = rt
            .interface_call(app, t2, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert!(rt.stats().deferred_completions >= 1);
        // The owner's release still works and wakes t2.
        rt.interface_call(
            app,
            t1,
            lock,
            "lock_release",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
    }

    #[test]
    fn server_ids_are_translated_after_recovery() {
        let (mut rt, app, lock, t1, _) = setup();
        let id = alloc(&mut rt, app, lock, t1);
        rt.inject_fault(lock);
        rt.interface_call(app, t1, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        // The client keeps using the original id even though the server
        // allocated a fresh one during recovery.
        rt.interface_call(
            app,
            t1,
            lock,
            "lock_release",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
        rt.interface_call(app, t1, lock, "lock_free", &[Value::Int(1), Value::Int(id)])
            .unwrap();
    }

    #[test]
    fn untracked_descriptor_passes_through() {
        let (mut rt, app, lock, t1, _) = setup();
        let err = rt
            .interface_call(
                app,
                t1,
                lock,
                "lock_take",
                &[Value::Int(1), Value::Int(777)],
            )
            .unwrap_err();
        assert!(is_not_found(&err));
    }
}
