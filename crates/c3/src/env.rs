//! The environment handed to interface stubs, and recovery statistics.

use std::collections::BTreeMap;

use composite::{
    CallError, ComponentId, EdgeMap, Kernel, Mechanism, SimTime, ThreadId, TraceEventKind, Value,
};

use crate::stub::InterfaceStub;

/// Counters describing recovery activity, consumed by tests and by the
/// benchmark harnesses (Fig 6(b), Table II).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Faults handled (micro-reboot sequences initiated).
    pub faults_handled: u64,
    /// Descriptors individually recovered (R0 walks completed).
    pub descriptors_recovered: u64,
    /// Interface functions replayed during recovery walks.
    pub walk_steps_replayed: u64,
    /// Recoveries deferred because the descriptor's state was
    /// thread-affine and another thread must complete it.
    pub deferred_completions: u64,
    /// Storage-component round trips (G0 lookups + G1 fetches).
    pub storage_roundtrips: u64,
    /// Upcalls into creator components (U0).
    pub upcalls: u64,
    /// Eagerly woken threads at fault time (T0).
    pub eager_wakeups: u64,
    /// Calls that exhausted their retry budget and surfaced a fault.
    pub unrecovered: u64,
    /// Invalid state-machine branches attempted (fault *detection*,
    /// §III-B).
    pub invalid_transitions: u64,
    /// Child recovery episodes opened because a fault landed while a
    /// replay walk or eager recovery was already in flight.
    pub nested_recoveries: u64,
    /// Total virtual time spent in recovery, per server component.
    pub recovery_time: BTreeMap<u32, SimTime>,
}

impl RecoveryStats {
    /// Fresh, all-zero statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total virtual time spent recovering `server`.
    #[must_use]
    pub fn recovery_time_of(&self, server: ComponentId) -> SimTime {
        self.recovery_time
            .get(&server.0)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    pub(crate) fn add_recovery_time(&mut self, server: ComponentId, t: SimTime) {
        let e = self.recovery_time.entry(server.0).or_insert(SimTime::ZERO);
        *e += t;
    }
}

/// Everything a stub may touch while handling a call or recovering a
/// descriptor: the kernel, the other edges' stubs (for **U0** upcalls),
/// the storage component (for **G0**/**G1**), and the stats sink.
///
/// The currently executing stub is checked out of `stubs`, so the map
/// only contains *other* edges.
pub struct StubEnv<'a> {
    /// The kernel.
    pub kernel: &'a mut Kernel,
    /// All other edges' stubs, keyed by (client, server).
    pub stubs: &'a mut EdgeMap<Box<dyn InterfaceStub>>,
    /// Recovery counters.
    pub stats: &'a mut RecoveryStats,
    /// The client component of the executing edge.
    pub client: ComponentId,
    /// The thread driving the call.
    pub thread: ThreadId,
    /// The server component of the executing edge.
    pub server: ComponentId,
    /// The storage component, when configured.
    pub storage: Option<ComponentId>,
    /// Remaining fault-handling budget for this call (bounds reboot
    /// loops when a component faults repeatedly mid-recovery).
    pub retries_left: u32,
}

impl std::fmt::Debug for StubEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StubEnv")
            .field("client", &self.client)
            .field("thread", &self.thread)
            .field("server", &self.server)
            .field("storage", &self.storage)
            .field("retries_left", &self.retries_left)
            .finish()
    }
}

impl StubEnv<'_> {
    /// Raw kernel invocation of the edge's server on behalf of the edge's
    /// client (used for both normal calls and replayed walk steps).
    ///
    /// # Errors
    ///
    /// As for [`Kernel::invoke`].
    pub fn invoke(&mut self, fname: &str, args: &[Value]) -> Result<Value, CallError> {
        self.kernel
            .invoke(self.client, self.thread, self.server, fname, args)
    }

    /// Replay one walk step: a raw invocation charged as recovery work.
    ///
    /// # Errors
    ///
    /// As for [`Kernel::invoke`].
    pub fn replay(&mut self, fname: &str, args: &[Value]) -> Result<Value, CallError> {
        self.replay_for(fname, args, None, Mechanism::R0)
    }

    /// Replay one walk step rebuilding descriptor `desc` (when known)
    /// as part of mechanism `mech` (R0 normal walk, T1 deferred-
    /// completion substitution). Emits a timed `walk_step` trace span
    /// covering the recovery-step charge plus the replayed invocation.
    ///
    /// # Errors
    ///
    /// As for [`Kernel::invoke`].
    pub fn replay_for(
        &mut self,
        fname: &str,
        args: &[Value],
        desc: Option<i64>,
        mech: Mechanism,
    ) -> Result<Value, CallError> {
        let scope = self.kernel.trace_open(self.server);
        let cost = self.kernel.costs().recovery_step;
        // Bracket the step as in-flight recovery so a fault injected
        // here (correlated fault) opens a *child* episode instead of
        // clobbering the parent's accounting.
        self.kernel.begin_recovery(self.server);
        self.kernel.charge(cost);
        self.stats.add_recovery_time(self.server, cost);
        self.stats.walk_steps_replayed += 1;
        let r = self.invoke(fname, args);
        self.kernel.end_recovery(self.server);
        self.kernel.trace_close(
            scope,
            self.server,
            self.thread,
            TraceEventKind::WalkStep {
                function: fname.to_owned(),
                desc,
                mech,
            },
        );
        r
    }

    /// Count one firing of mechanism `m` on the executing edge's server
    /// through the kernel's `record_mechanism` choke point (counter +
    /// trace event in lockstep).
    pub fn note_mechanism(&mut self, m: Mechanism) {
        self.kernel
            .record_mechanism(self.server, m, 1, self.thread, SimTime::ZERO);
    }

    /// One descriptor fully rebuilt through its recovery walk (**R0**).
    pub fn note_descriptor_recovered(&mut self) {
        self.stats.descriptors_recovered += 1;
        self.note_mechanism(Mechanism::R0);
    }

    /// A recovery walk deferred at a thread-affine step (**T1**,
    /// on-demand completion by the owning thread).
    pub fn note_deferred_completion(&mut self) {
        self.stats.deferred_completions += 1;
        self.note_mechanism(Mechanism::T1);
    }

    /// A parent descriptor recovered before its dependent child (**D1**).
    pub fn note_parent_first(&mut self) {
        self.note_mechanism(Mechanism::D1);
    }

    /// `n` descriptors dropped from tracking by close semantics (**D0**,
    /// the descriptor itself plus any recursively revoked subtree).
    pub fn note_teardown(&mut self, n: u64) {
        self.kernel
            .record_mechanism(self.server, Mechanism::D0, n, self.thread, SimTime::ZERO);
    }

    /// If the server is (still) faulty, micro-reboot it and mark every
    /// edge of that server faulty — steps (2)–(4) of §III-D. Returns
    /// whether a reboot happened.
    ///
    /// # Errors
    ///
    /// [`CallError::Fault`] when the retry budget is exhausted.
    pub fn ensure_rebooted(&mut self) -> Result<bool, CallError> {
        if !self.kernel.is_faulty(self.server) {
            return Ok(false);
        }
        if self.kernel.is_degraded(self.server) {
            // Reboot-storm escalation marked the server degraded: fail
            // fast instead of burning the retry budget on reboots the
            // booter will supersede with a cold restart.
            return Err(CallError::Degraded {
                component: self.server,
            });
        }
        if self.retries_left == 0 {
            self.stats.unrecovered += 1;
            return Err(CallError::Fault {
                component: self.server,
            });
        }
        self.retries_left -= 1;

        // T0 wakeups happened when the fault was raised: the kernel
        // releases threads blocked in the failed server, counts them, and
        // [`crate::FtRuntime::inject_fault`] accumulates the stat.

        let before = self.kernel.now();
        self.kernel.begin_recovery(self.server);
        let rebooted = self.kernel.micro_reboot(self.server);
        self.kernel.end_recovery(self.server);
        rebooted.map_err(|_| CallError::Fault {
            component: self.server,
        })?;
        self.stats.faults_handled += 1;
        let took = self.kernel.now().saturating_sub(before);
        self.stats.add_recovery_time(self.server, took);
        self.kernel.record_recovery_latency(self.server, took);

        // Propagate the inter-component exception to every client edge of
        // this server (including edges currently checked out — the
        // runtime marks the active one itself).
        self.stubs
            .for_server_mut(self.server, |stub| stub.mark_faulty());
        Ok(true)
    }

    /// **G0** helper: look up the creator component of a global
    /// descriptor in the storage component.
    ///
    /// # Errors
    ///
    /// [`CallError`] when storage is unconfigured or has no record.
    pub fn storage_lookup_creator(
        &mut self,
        iface: &str,
        desc: i64,
    ) -> Result<ComponentId, CallError> {
        let storage = self
            .storage
            .ok_or(CallError::Service(composite::ServiceError::NotFound))?;
        let cost = self.kernel.costs().storage_round_trip;
        self.kernel.charge(cost);
        self.stats.add_recovery_time(self.server, cost);
        self.stats.storage_roundtrips += 1;
        self.kernel
            .record_mechanism(self.server, Mechanism::G0, 1, self.thread, cost);
        let v = self.kernel.invoke(
            self.client,
            self.thread,
            storage,
            "st_lookup_creator",
            &[Value::from(iface), Value::Int(desc)],
        )?;
        Ok(ComponentId(v.int().unwrap_or(-1) as u32))
    }

    /// **G0** helper: record a freshly created global descriptor in the
    /// storage component (performed by the server-side stub logic on
    /// every create of a global interface).
    ///
    /// # Errors
    ///
    /// [`CallError`] when storage is unconfigured.
    pub fn storage_record(
        &mut self,
        iface: &str,
        desc: i64,
        creator: ComponentId,
        parent: i64,
        aux: i64,
    ) -> Result<(), CallError> {
        let storage = self
            .storage
            .ok_or(CallError::Service(composite::ServiceError::NotFound))?;
        let cost = self.kernel.costs().storage_round_trip;
        self.kernel.charge(cost);
        self.stats.storage_roundtrips += 1;
        self.kernel
            .record_mechanism(self.server, Mechanism::G0, 1, self.thread, cost);
        self.kernel.invoke(
            self.client,
            self.thread,
            storage,
            "st_record",
            &[
                Value::from(iface),
                Value::Int(desc),
                Value::from(creator.0),
                Value::Int(parent),
                Value::Int(aux),
            ],
        )?;
        Ok(())
    }

    /// **U0** helper: upcall into the creator component's edge stub to
    /// rebuild a global descriptor under its original id.
    ///
    /// # Errors
    ///
    /// [`CallError`] when the creator has no stub for this server or its
    /// recovery fails.
    pub fn upcall_recover(&mut self, creator: ComponentId, desc: i64) -> Result<(), CallError> {
        let Some(mut stub) = self.stubs.take(creator, self.server) else {
            return Err(CallError::Service(composite::ServiceError::NotFound));
        };
        // U0 is counted (and traced) inside the kernel choke point; the
        // returned span scopes the creator-side recovery under it.
        let u0_span = self.kernel.count_upcall(self.server, self.thread);
        self.stats.upcalls += 1;
        self.kernel.trace_push_scope(u0_span);
        self.kernel.begin_recovery(self.server);
        let mut inner = StubEnv {
            kernel: self.kernel,
            stubs: self.stubs,
            stats: self.stats,
            client: creator,
            thread: self.thread,
            server: self.server,
            storage: self.storage,
            retries_left: self.retries_left,
        };
        let r = stub.recover_descriptor(&mut inner, desc);
        self.stubs.insert(creator, self.server, stub);
        self.kernel.end_recovery(self.server);
        self.kernel.trace_pop_scope(u0_span);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_recovery_time() {
        let mut s = RecoveryStats::new();
        s.add_recovery_time(ComponentId(3), SimTime(100));
        s.add_recovery_time(ComponentId(3), SimTime(50));
        assert_eq!(s.recovery_time_of(ComponentId(3)), SimTime(150));
        assert_eq!(s.recovery_time_of(ComponentId(9)), SimTime::ZERO);
    }
}
