//! Differential C³ ↔ SuperGlue test layer.
//!
//! The paper's central claim (§IV) is that the stubs *generated* from a
//! few lines of IDL are behaviorally equivalent to the hand-written C³
//! recovery code they replace. These tests run the **same deterministic
//! workload and fault schedule** under both protection variants and
//! require the observable behavior to match:
//!
//! * every interface-call outcome classifies identically (same values,
//!   same would-block points, same errors);
//! * the post-recovery descriptor tables have the same shape (tracked
//!   count, zero still-faulty descriptors);
//! * the runtime's recovery bookkeeping agrees (faults handled, nothing
//!   unrecovered);
//! * every recovery mechanism the scenario suite exercises —
//!   R0/T0/T1/D0/D1/G0/G1/U0 — actually fired, per the observability
//!   counters.

use composite::{
    CallError, InterfaceCall as _, KernelAccess as _, Mechanism, MetricsSnapshot, Priority, Value,
    MECHANISMS,
};
use sg_bench::{rig, Rig, SERVICES};
use superglue::testbed::Variant;

/// Classify one call outcome for cross-variant comparison.
fn classify(result: &Result<Value, CallError>) -> String {
    match result {
        Ok(v) => format!("ok({v:?})"),
        Err(CallError::WouldBlock) => "would-block".to_owned(),
        Err(e) => format!("err({e:?})"),
    }
}

/// Everything observable from one scripted run under one variant.
#[derive(Debug, PartialEq, Eq)]
struct Trace {
    outcomes: Vec<String>,
    tracked: usize,
    faulty: usize,
    faults_handled: u64,
    unrecovered: u64,
}

/// The deterministic differential script for one service: warm the
/// descriptor table with the §V-B micro-workload, then run three
/// fault → recovering-call → more-workload rounds against one victim
/// descriptor. The fault schedule is positional (after the same calls in
/// both variants), so the two systems see identical fault timing.
fn run_script(variant: Variant, iface: &str) -> Trace {
    let mut r = rig(variant);
    for seq in 0..3 {
        r.run_iteration(iface, seq);
    }
    let (client, thread, svc, fname, args) = r.setup_recovery_victim(iface);
    let mut outcomes = Vec::new();
    for seq in 0..3 {
        r.tb.runtime.inject_fault(svc);
        let res =
            r.tb.runtime
                .interface_call(client, thread, svc, fname, &args);
        outcomes.push(classify(&res));
        r.run_iteration(iface, 100 + seq);
    }
    // On-demand recovery is lazy per touched descriptor; quiesce the
    // rest so the final table shapes are comparable across variants.
    r.tb.runtime
        .recover_now(svc, thread)
        .expect("quiesce sweep");
    let stub = r.tb.runtime.stub(client, svc).expect("stub installed");
    Trace {
        outcomes,
        tracked: stub.tracked_count(),
        faulty: stub.faulty_count(),
        faults_handled: r.tb.runtime.stats().faults_handled,
        unrecovered: r.tb.runtime.stats().unrecovered,
    }
}

#[test]
fn c3_and_superglue_traces_match_for_all_services() {
    for iface in SERVICES {
        let c3 = run_script(Variant::C3, iface);
        let sg = run_script(Variant::SuperGlue, iface);
        assert_eq!(
            c3, sg,
            "{iface}: C³ and SuperGlue recovery behavior diverges"
        );
        assert_eq!(sg.faulty, 0, "{iface}: descriptors must be fully recovered");
        assert_eq!(sg.unrecovered, 0, "{iface}: no unrecovered faults");
        assert!(
            sg.faults_handled >= 3,
            "{iface}: every injected fault handled"
        );
    }
}

/// Drive a scenario suite chosen so that, between them, all eight
/// recovery mechanisms fire, and return the final metrics snapshot.
fn exercise_all_mechanisms(variant: Variant) -> MetricsSnapshot {
    let mut r = rig(variant);
    let app = r.tb.ids.app1;
    let app2 = r.tb.ids.app2;
    let compid = Value::from(app.0);

    // D0: every service's teardown path (the frees/releases in the
    // micro-workload iterations).
    for iface in SERVICES {
        r.run_iteration(iface, 0);
    }

    // R0 + D1: recovering the mm alias forces parent-first recovery of
    // the root mapping.
    let (c, t, svc, f, a) = r.setup_recovery_victim("mm");
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(c, t, svc, f, &a)
        .expect("mm victim recovers");

    // G0 + U0: the event victim is recovered from the *foreign* client,
    // via the storage creator lookup and the upcall into the creator.
    let (c, t, svc, f, a) = r.setup_recovery_victim("evt");
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(c, t, svc, f, &a)
        .expect("evt victim recovers");

    // G1: the reboot loses the RamFS contents; the next read re-fetches
    // the redundant copy from storage.
    let (c, t, svc, f, a) = r.setup_recovery_victim("fs");
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(c, t, svc, f, &a)
        .expect("fs victim recovers");
    r.tb.runtime
        .interface_call(
            c,
            t,
            svc,
            "tread",
            &[a[0].clone(), a[1].clone(), Value::Int(3)],
        )
        .expect("post-recovery read re-fetches data");

    // T0 (+ T1 for the walk-replaying stubs): a waiter blocked inside
    // the event manager at fault time is eagerly woken by the reboot,
    // and the creator-side recovery of its mid-wait descriptor must
    // defer the thread-affine blocking step.
    let evt = r.tb.ids.evt;
    let id =
        r.tb.runtime
            .interface_call(
                app,
                r.thread,
                evt,
                "evt_split",
                &[compid.clone(), Value::Int(0), Value::Int(1)],
            )
            .expect("split")
            .int()
            .expect("id");
    let blocked =
        r.tb.runtime
            .interface_call(app, r.thread, evt, "evt_wait", &[compid, Value::Int(id)])
            .expect_err("no pending trigger: the waiter blocks");
    assert_eq!(blocked, CallError::WouldBlock);
    r.tb.runtime.inject_fault(evt);
    r.tb.runtime
        .interface_call(
            app2,
            r.thread2,
            evt,
            "evt_trigger",
            &[Value::from(app2.0), Value::Int(id)],
        )
        .expect("foreign trigger recovers the waiter's descriptor");

    // T1 (generated-walk path): a descriptor whose *recorded* state
    // follows a blocking call (a wait satisfied by a pending trigger)
    // is recovered by a different thread — the blocking step is
    // thread-affine, so the remainder of the walk must be deferred.
    let compid = Value::from(app.0);
    let id =
        r.tb.runtime
            .interface_call(
                app,
                r.thread,
                evt,
                "evt_split",
                &[compid.clone(), Value::Int(0), Value::Int(1)],
            )
            .expect("split")
            .int()
            .expect("id");
    r.tb.runtime
        .interface_call(
            app,
            r.thread,
            evt,
            "evt_trigger",
            &[compid.clone(), Value::Int(id)],
        )
        .expect("trigger");
    r.tb.runtime
        .interface_call(
            app,
            r.thread,
            evt,
            "evt_wait",
            &[compid.clone(), Value::Int(id)],
        )
        .expect("pending trigger: the wait returns immediately");
    r.tb.runtime.inject_fault(evt);
    let t3 = r.tb.spawn_thread(app, Priority(5));
    r.tb.runtime
        .interface_call(app, t3, evt, "evt_trigger", &[compid, Value::Int(id)])
        .expect("foreign-thread trigger recovers the waited descriptor");

    // T1 (hand-written lock path): a lock taken by one thread and
    // recovered by another restores the hold for the recorded owner.
    let lock = r.tb.ids.lock;
    let compid = Value::from(app.0);
    let lid =
        r.tb.runtime
            .interface_call(
                app,
                r.thread,
                lock,
                "lock_alloc",
                std::slice::from_ref(&compid),
            )
            .expect("alloc")
            .int()
            .expect("id");
    r.tb.runtime
        .interface_call(
            app,
            r.thread,
            lock,
            "lock_take",
            &[compid.clone(), Value::Int(lid)],
        )
        .expect("take");
    r.tb.runtime.inject_fault(lock);
    let t2 = r.tb.spawn_thread(app, Priority(5));
    let contended =
        r.tb.runtime
            .interface_call(app, t2, lock, "lock_take", &[compid, Value::Int(lid)]);
    assert_eq!(
        contended,
        Err(CallError::WouldBlock),
        "recovery restored the original owner's hold, so the contender blocks"
    );

    assert_eq!(r.tb.runtime.stats().unrecovered, 0);
    MetricsSnapshot::from_kernel(r.tb.runtime.kernel())
}

/// The paper's eight mechanisms — the channel extensions (DL0/CR0)
/// only fire on the pipeline workload and are pinned nonzero by the
/// `crates/pipeline` suite and `tests/pipeline_e2e.rs`.
fn paper_mechanisms() -> impl Iterator<Item = Mechanism> {
    MECHANISMS
        .into_iter()
        .filter(|m| !matches!(m, Mechanism::Dl0 | Mechanism::Cr0))
}

#[test]
fn all_eight_mechanism_counters_fire_under_c3() {
    let snap = exercise_all_mechanisms(Variant::C3);
    for m in paper_mechanisms() {
        assert!(snap.mechanism_total(m) > 0, "C³: {} never fired", m.name());
    }
}

#[test]
fn all_eight_mechanism_counters_fire_under_superglue() {
    let snap = exercise_all_mechanisms(Variant::SuperGlue);
    for m in paper_mechanisms() {
        assert!(
            snap.mechanism_total(m) > 0,
            "SuperGlue: {} never fired",
            m.name()
        );
    }
}

/// The counters are attributed to the *failed* component: the mm rounds
/// of the differential script must show up on `mm`, not on the client.
#[test]
fn counters_attribute_to_the_failed_component() {
    for variant in [Variant::C3, Variant::SuperGlue] {
        let mut r: Rig = rig(variant);
        let (c, t, svc, f, a) = r.setup_recovery_victim("mm");
        r.tb.runtime.inject_fault(svc);
        r.tb.runtime
            .interface_call(c, t, svc, f, &a)
            .expect("mm victim recovers");
        let snap = MetricsSnapshot::from_kernel(r.tb.runtime.kernel());
        assert!(snap.mechanism_count("mm", Mechanism::R0) > 0, "{variant:?}");
        assert_eq!(
            snap.mechanism_count("lock", Mechanism::R0),
            0,
            "{variant:?}"
        );
    }
}
