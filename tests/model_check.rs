//! CI-facing model-check smoke: the property-based recovery checker
//! must pass its pinned budgets on every commit.
//!
//! The `modelcheck` binary runs the same layers with shrinking and
//! artifact output; this test pins the CI acceptance floor — ten
//! thousand random-walk steps through the pure core with all five
//! recovery invariants checked after every step — so a regression fails
//! `cargo test` even without the workflow step.

use composite::{run_check, step, CheckConfig, KernelWalk, Model, SplitMix64};
use sg_bench::modelck::{event_from_json, event_to_json, SystemWalk};

/// The acceptance floor: 10k steps, fixed seed, no violation.
#[test]
fn core_walk_survives_ten_thousand_steps() {
    let mut walk = KernelWalk::new();
    let report = run_check(
        &mut walk,
        &CheckConfig {
            seed: 0xC3_5EED,
            steps: 10_000,
            max_shrink_iters: 4_000,
        },
    );
    assert_eq!(report.steps_run, 10_000);
    assert!(
        report.passed(),
        "core invariant violated: {:?}",
        report.counterexample.map(|c| c.violation)
    );
}

/// Seed diversity: shorter walks from unrelated streams.
#[test]
fn core_walk_holds_across_seeds() {
    for seed in [1_u64, 0xFACADE, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        let mut walk = KernelWalk::new();
        let report = run_check(
            &mut walk,
            &CheckConfig {
                seed,
                steps: 2_000,
                max_shrink_iters: 2_000,
            },
        );
        assert!(
            report.passed(),
            "seed {seed:#x} violated: {:?}",
            report.counterexample.map(|c| c.violation)
        );
    }
}

/// The system layer: a short walk through the full SuperGlue testbed,
/// including the trace-level checks that only run at quiescence.
#[test]
fn system_walk_smoke_with_trace_checks() {
    let mut walk = SystemWalk::new();
    let report = run_check(
        &mut walk,
        &CheckConfig {
            seed: 0x5157_3A11,
            steps: 150,
            max_shrink_iters: 200,
        },
    );
    assert!(
        report.passed(),
        "system invariant violated: {:?}",
        report.counterexample.map(|c| c.violation)
    );
    let trace_violations = walk.finish();
    assert!(
        trace_violations.is_empty(),
        "trace-level violations: {trace_violations:?}"
    );
}

/// Counterexample artifacts round-trip: every event a walk generates
/// serializes to JSON, parses back, and replays through the pure step
/// function to the same final state — the contract `sgtrace replay`
/// depends on.
#[test]
fn artifact_events_round_trip_and_replay() {
    let mut walk = KernelWalk::new();
    walk.reset();
    let mut rng = SplitMix64::new(0x2E1A);
    let mut events = Vec::new();
    for _ in 0..500 {
        let ev = walk.generate(&mut rng);
        walk.apply(&ev).expect("clean walk holds invariants");
        events.push(ev);
    }

    // Serialize, parse back, and compare.
    let decoded: Vec<_> = events
        .iter()
        .map(|ev| {
            let j = event_to_json(ev);
            event_from_json(&j).unwrap_or_else(|e| panic!("round-trip failed for {j:?}: {e}"))
        })
        .collect();
    assert_eq!(events, decoded);

    // Replay the decoded sequence over the same initial topology.
    let mut fresh = KernelWalk::new();
    fresh.reset();
    let mut state = fresh.state.clone();
    for ev in &decoded {
        state = step(&state, ev).0;
    }
    assert_eq!(
        state, walk.state,
        "replayed decoded events must reach the identical state"
    );
}
