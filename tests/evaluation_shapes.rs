//! Integration tests asserting the *shapes* of the paper's evaluation
//! results — who wins, by roughly what factor — on reduced-size runs
//! (the full-size harnesses are `fig6`, `table2` and `fig7`).

use composite::SimTime;
use sg_swifi::{run_campaign, CampaignConfig};
use sg_webserver::{run_fig7_variant, Fig7Config, WebVariant};
use superglue::testbed::Variant;

#[test]
fn fig6c_loc_ordering_idl_far_below_generated_and_handwritten() {
    let compiled = superglue::compile_all().expect("shipped IDL compiles");
    for (iface, src) in superglue::idl_sources() {
        let idl = superglue_idl::idl_loc(src);
        let generated = compiled.get(iface).expect("compiled").generated_loc();
        assert!(
            generated >= 4 * idl,
            "{iface}: IDL {idl} LOC must be several times below generated {generated} LOC"
        );
    }
    // §VII: the average IDL file is tens of lines.
    let total: usize = superglue::idl_sources()
        .iter()
        .map(|(_, s)| superglue_idl::idl_loc(s))
        .sum();
    let avg = total / 6;
    assert!((15..=60).contains(&avg), "avg IDL LOC {avg}");
}

#[test]
fn table2_shape_high_activation_high_recovery_sched_worst_segfaults() {
    let cfg = CampaignConfig {
        injections: 150,
        seed: 11,
        ..CampaignConfig::default()
    };
    let mut segfault_by_iface = Vec::new();
    for iface in ["sched", "fs", "lock"] {
        let row = run_campaign(iface, &cfg);
        assert_eq!(row.injected, 150, "{iface}");
        assert!(
            row.activation_ratio() > 0.80,
            "{iface}: activation {:.2}",
            row.activation_ratio()
        );
        assert!(
            row.success_rate() > 0.75,
            "{iface}: success {:.2}",
            row.success_rate()
        );
        // Propagation is rare (hardware isolation), §V-D.
        assert!(row.propagated <= row.injected / 20, "{iface}: {row:?}");
        segfault_by_iface.push((iface, row.segfault));
    }
    let sched = segfault_by_iface
        .iter()
        .find(|(i, _)| *i == "sched")
        .expect("sched ran")
        .1;
    for (iface, n) in &segfault_by_iface {
        if *iface != "sched" {
            assert!(
                sched >= *n,
                "sched ({sched}) must have the most segfaults vs {iface} ({n})"
            );
        }
    }
}

#[test]
fn table2_c3_and_superglue_recover_comparably() {
    let base = CampaignConfig {
        injections: 100,
        seed: 23,
        ..CampaignConfig::default()
    };
    let sg = run_campaign(
        "lock",
        &CampaignConfig {
            variant: Variant::SuperGlue,
            ..base
        },
    );
    let c3 = run_campaign(
        "lock",
        &CampaignConfig {
            variant: Variant::C3,
            ..base
        },
    );
    let delta = (sg.success_rate() - c3.success_rate()).abs();
    assert!(
        delta < 0.15,
        "success rates must be comparable: sg {sg:?} c3 {c3:?}"
    );
}

#[test]
fn fig7_ordering_apache_base_c3_superglue() {
    let cfg = Fig7Config {
        duration: SimTime::from_secs(3),
        ..Fig7Config::default()
    };
    let apache = run_fig7_variant(WebVariant::Apache, &cfg).mean_rps;
    let base = run_fig7_variant(WebVariant::Composite, &cfg).mean_rps;
    let c3 = run_fig7_variant(WebVariant::C3 { faults: false }, &cfg).mean_rps;
    let sg = run_fig7_variant(WebVariant::SuperGlue { faults: false }, &cfg).mean_rps;
    assert!(
        apache > base && base > c3 && c3 > sg,
        "{apache} > {base} > {c3} > {sg}"
    );
    // The FT cost stays in the paper's band (single-digit to low-teens %).
    let sg_slowdown = 1.0 - sg / base;
    assert!(
        (0.05..0.20).contains(&sg_slowdown),
        "superglue slowdown {sg_slowdown:.3}"
    );
    let c3_slowdown = 1.0 - c3 / base;
    assert!(
        (0.04..0.18).contains(&c3_slowdown),
        "c3 slowdown {c3_slowdown:.3}"
    );
}

#[test]
fn fig7_faults_cost_a_bit_more_but_never_zero_a_bucket() {
    let cfg = Fig7Config {
        duration: SimTime::from_secs(6),
        fault_period: SimTime::from_secs(1),
        ..Fig7Config::default()
    };
    let clean = run_fig7_variant(WebVariant::SuperGlue { faults: false }, &cfg);
    let faulted = run_fig7_variant(WebVariant::SuperGlue { faults: true }, &cfg);
    assert!(faulted.faults_injected >= 4);
    assert_eq!(faulted.unrecovered, 0);
    assert!(
        faulted.mean_rps < clean.mean_rps,
        "faults must cost some throughput"
    );
    assert!(
        faulted.mean_rps > 0.5 * clean.mean_rps,
        "recovery must not halve throughput"
    );
    let whole = (cfg.duration.as_nanos() / 1_000_000_000) as usize;
    for (i, &b) in faulted.series.buckets().iter().take(whole).enumerate() {
        assert!(b > 0, "bucket {i} dropped to zero");
    }
}
