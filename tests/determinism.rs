//! Determinism regression tests for the parallel evaluation engine.
//!
//! The sharded SWIFI campaign and the Fig 7 repetition fan-out must be
//! **bit-identical for every worker count**: each shard/repetition draws
//! from its own seeded RNG stream (`mix(campaign_seed, shard_index)`)
//! and results are merged in shard order, so `--jobs 1` and `--jobs 8`
//! may differ only in wall-clock time.

use composite::{
    parallel_map_indexed, shards_to_chrome, shards_to_jsonl, InterfaceCall as _, KernelAccess as _,
    MetricsSnapshot, SimTime, TraceShard,
};
use sg_bench::{rig, Rig, SERVICES};
use sg_c3::RecoveryStats;
use sg_swifi::{run_campaign_parallel, CampaignConfig};
use sg_webserver::{run_fig7_rep, Fig7Config, WebVariant};
use superglue::testbed::Variant;

#[test]
fn mini_campaign_tallies_identical_across_jobs() {
    for variant in [Variant::C3, Variant::SuperGlue] {
        let cfg = CampaignConfig {
            variant,
            injections: 50,
            seed: 0x0D15_EA5E,
            ..CampaignConfig::default()
        };
        let serial = run_campaign_parallel("lock", &cfg, 1);
        let sharded = run_campaign_parallel("lock", &cfg, 8);
        assert_eq!(
            serial.row, sharded.row,
            "{variant:?}: Table II tallies must not depend on --jobs"
        );
        assert_eq!(
            serial.metrics, sharded.metrics,
            "{variant:?}: mechanism counters must not depend on --jobs"
        );
        assert_eq!(
            serial.metrics.to_json_lines("campaign/lock"),
            sharded.metrics.to_json_lines("campaign/lock"),
            "{variant:?}: emitted JSON-lines must be byte-identical"
        );
        assert_eq!(serial.row.injected, 50, "{variant:?}: full quota injected");
    }
}

#[test]
fn campaign_shard_results_are_independent_of_schedule() {
    // Odd jobs counts exercise unbalanced work-stealing schedules; the
    // merged result must still be the jobs=1 result.
    let cfg = CampaignConfig {
        injections: 50,
        seed: 0xFEED_F00D,
        ..CampaignConfig::default()
    };
    let baseline = run_campaign_parallel("evt", &cfg, 1);
    for jobs in [2, 3, 5] {
        assert_eq!(
            baseline,
            run_campaign_parallel("evt", &cfg, jobs),
            "jobs = {jobs}"
        );
    }
}

#[test]
fn campaign_traces_byte_identical_across_jobs() {
    let cfg = CampaignConfig {
        injections: 50,
        seed: 0x7EAC_E5EED,
        trace: true,
        ..CampaignConfig::default()
    };
    let serial = run_campaign_parallel("lock", &cfg, 1);
    let sharded = run_campaign_parallel("lock", &cfg, 8);
    assert!(
        !serial.trace.is_empty(),
        "tracing enabled: shards must carry traces"
    );
    assert_eq!(
        shards_to_jsonl(&serial.trace),
        shards_to_jsonl(&sharded.trace),
        "merged JSON-lines trace must not depend on --jobs"
    );
    assert_eq!(
        shards_to_chrome(&serial.trace),
        shards_to_chrome(&sharded.trace),
        "Chrome trace rendering must not depend on --jobs"
    );
}

#[test]
fn fig7_repetitions_identical_across_jobs() {
    let cfg = Fig7Config {
        duration: composite::SimTime::from_secs(3),
        fault_period: composite::SimTime::from_secs(1),
        repetitions: 4,
        seed: 0xF167_0007,
        ..Fig7Config::default()
    };
    let variant = WebVariant::SuperGlue { faults: true };
    let reps = cfg.repetitions as usize;
    let run = |jobs: usize| {
        parallel_map_indexed(reps, jobs, |rep| run_fig7_rep(variant, &cfg, rep as u64))
    };
    let serial = run(1);
    let sharded = run(8);
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(a.series.buckets(), b.series.buckets());
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.unrecovered, b.unrecovered);
        assert_eq!(a.metrics, b.metrics);
    }
    // Repetitions exist for variance: phase-shifted fault schedules must
    // actually differ between repetitions.
    assert!(
        serial
            .iter()
            .any(|r| r.series.buckets() != serial[0].series.buckets()),
        "phase-shifted repetitions should not all be identical"
    );
}

// ---------------------------------------------------------------------
// Hot-path invariance: the compiled-dispatch/slab/cheap-clone rewrite of
// the invoke path may change only wall-clock time. These tests pin the
// observable results of the Fig 6(a) workload — counters, virtual time,
// tracked-descriptor population, and the byte-exact trace — so any
// future interpreter "optimization" that changes behavior fails loudly.
// ---------------------------------------------------------------------

/// Run the Fig 6(a) micro-workload for every service on a fresh rig with
/// tracing enabled, plus one fault/recovery cycle per service, and
/// return everything a benchmark could observe.
fn fig6_observables(variant: Variant) -> (MetricsSnapshot, RecoveryStats, SimTime, String) {
    let mut r: Rig = rig(variant);
    r.tb.runtime.kernel_mut().enable_tracing(1 << 20);
    for iface in SERVICES {
        for seq in 0..50 {
            r.run_iteration(iface, seq);
        }
    }
    if variant != Variant::Bare {
        // Bare has no stubs: a fault would simply surface. Exercise the
        // recovery path only under the protected variants.
        for iface in SERVICES {
            let (c, t, svc, f, a) = r.setup_recovery_victim(iface);
            r.tb.runtime.inject_fault(svc);
            r.tb.runtime
                .interface_call(c, t, svc, f, &a)
                .expect("victim recovers");
        }
    }
    let snap = MetricsSnapshot::from_kernel(r.tb.runtime.kernel());
    let stats = r.tb.runtime.stats().clone();
    let now = r.tb.runtime.kernel().now();
    let mut shard = TraceShard::labeled("determinism/fig6");
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&shard.label.clone()));
    let jsonl = shards_to_jsonl(std::slice::from_ref(&shard));
    (snap, stats, now, jsonl)
}

#[test]
fn fig6_workload_results_identical_across_reruns() {
    for variant in [Variant::Bare, Variant::C3, Variant::SuperGlue] {
        let (snap_a, stats_a, now_a, trace_a) = fig6_observables(variant);
        let (snap_b, stats_b, now_b, trace_b) = fig6_observables(variant);
        assert_eq!(
            snap_a, snap_b,
            "{variant:?}: metrics must not depend on the run"
        );
        assert_eq!(
            stats_a, stats_b,
            "{variant:?}: recovery stats must not depend on the run"
        );
        assert_eq!(now_a, now_b, "{variant:?}: virtual time must be replayable");
        assert_eq!(
            trace_a, trace_b,
            "{variant:?}: the flight-recorder dump must be byte-identical"
        );
    }
}

#[test]
fn table2_campaign_rows_identical_across_reruns() {
    let cfg = CampaignConfig {
        variant: Variant::SuperGlue,
        injections: 50,
        seed: 0x7AB1_E002,
        ..CampaignConfig::default()
    };
    let a = run_campaign_parallel("evt", &cfg, 2);
    let b = run_campaign_parallel("evt", &cfg, 2);
    assert_eq!(a.row, b.row, "Table II rows must be rerun-stable");
    assert_eq!(
        a.metrics.to_json_lines("campaign/evt"),
        b.metrics.to_json_lines("campaign/evt"),
        "Table II metrics dump must be byte-identical across reruns"
    );
}

#[test]
fn fig7_series_identical_across_reruns() {
    let cfg = Fig7Config {
        duration: composite::SimTime::from_secs(2),
        fault_period: composite::SimTime::from_secs(1),
        repetitions: 1,
        seed: 0xF167_0008,
        ..Fig7Config::default()
    };
    let a = run_fig7_rep(WebVariant::SuperGlue { faults: true }, &cfg, 0);
    let b = run_fig7_rep(WebVariant::SuperGlue { faults: true }, &cfg, 0);
    assert_eq!(a.series.buckets(), b.series.buckets());
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.unrecovered, b.unrecovered);
    assert_eq!(a.metrics, b.metrics);
}

/// The committed flight-recorder golden must be reproduced byte-for-byte
/// by today's hot path (same fixed episode as
/// `flight_recorder::golden_episode_snapshot`, re-asserted here so the
/// perf suite fails even when run in isolation).
#[test]
fn flight_recorder_golden_unchanged_by_hot_path() {
    let mut r: Rig = rig(Variant::SuperGlue);
    r.tb.runtime.kernel_mut().enable_tracing(1 << 20);
    let (c, t, svc, f, a) = r.setup_recovery_victim("evt");
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(c, t, svc, f, &a)
        .expect("recovery succeeds");
    let mut shard = TraceShard::labeled("golden/evt/superglue");
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&shard.label.clone()));
    let actual = shards_to_jsonl(std::slice::from_ref(&shard));
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/flight_recorder_episode.jsonl");
    let expected = std::fs::read_to_string(&path).expect("golden exists");
    assert_eq!(
        actual, expected,
        "hot-path changes must leave the recovery episode byte-identical \
         (regenerate intentionally via the flight_recorder test's UPDATE_GOLDEN=1)"
    );
}
