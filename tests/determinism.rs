//! Determinism regression tests for the parallel evaluation engine.
//!
//! The sharded SWIFI campaign and the Fig 7 repetition fan-out must be
//! **bit-identical for every worker count**: each shard/repetition draws
//! from its own seeded RNG stream (`mix(campaign_seed, shard_index)`)
//! and results are merged in shard order, so `--jobs 1` and `--jobs 8`
//! may differ only in wall-clock time.

use composite::{
    parallel_map_indexed, shards_to_chrome, shards_to_jsonl, InterfaceCall as _, KernelAccess as _,
    MetricsSnapshot, SimTime, TraceShard,
};
use sg_bench::stat::{avail_report, parse_trace_text};
use sg_bench::{rig, series_to_jsonl, Rig, SERVICES};
use sg_c3::RecoveryStats;
use sg_swifi::{run_campaign_parallel, CampaignConfig};
use sg_webserver::{run_fig7_rep, Fig7Config, WebVariant};
use superglue::testbed::Variant;

#[test]
fn mini_campaign_tallies_identical_across_jobs() {
    for variant in [Variant::C3, Variant::SuperGlue] {
        let cfg = CampaignConfig {
            variant,
            injections: 50,
            seed: 0x0D15_EA5E,
            ..CampaignConfig::default()
        };
        let serial = run_campaign_parallel("lock", &cfg, 1);
        let sharded = run_campaign_parallel("lock", &cfg, 8);
        assert_eq!(
            serial.row, sharded.row,
            "{variant:?}: Table II tallies must not depend on --jobs"
        );
        assert_eq!(
            serial.metrics, sharded.metrics,
            "{variant:?}: mechanism counters must not depend on --jobs"
        );
        assert_eq!(
            serial.metrics.to_json_lines("campaign/lock"),
            sharded.metrics.to_json_lines("campaign/lock"),
            "{variant:?}: emitted JSON-lines must be byte-identical"
        );
        assert_eq!(serial.row.injected, 50, "{variant:?}: full quota injected");
    }
}

#[test]
fn campaign_shard_results_are_independent_of_schedule() {
    // Odd jobs counts exercise unbalanced work-stealing schedules; the
    // merged result must still be the jobs=1 result.
    let cfg = CampaignConfig {
        injections: 50,
        seed: 0xFEED_F00D,
        ..CampaignConfig::default()
    };
    let baseline = run_campaign_parallel("evt", &cfg, 1);
    for jobs in [2, 3, 5] {
        assert_eq!(
            baseline,
            run_campaign_parallel("evt", &cfg, jobs),
            "jobs = {jobs}"
        );
    }
}

#[test]
fn campaign_traces_byte_identical_across_jobs() {
    let cfg = CampaignConfig {
        injections: 50,
        seed: 0x7EAC_E5EED,
        trace: true,
        ..CampaignConfig::default()
    };
    let serial = run_campaign_parallel("lock", &cfg, 1);
    let sharded = run_campaign_parallel("lock", &cfg, 8);
    assert!(
        !serial.trace.is_empty(),
        "tracing enabled: shards must carry traces"
    );
    assert_eq!(
        shards_to_jsonl(&serial.trace),
        shards_to_jsonl(&sharded.trace),
        "merged JSON-lines trace must not depend on --jobs"
    );
    assert_eq!(
        shards_to_chrome(&serial.trace),
        shards_to_chrome(&sharded.trace),
        "Chrome trace rendering must not depend on --jobs"
    );
}

#[test]
fn fig7_repetitions_identical_across_jobs() {
    let cfg = Fig7Config {
        duration: composite::SimTime::from_secs(3),
        fault_period: composite::SimTime::from_secs(1),
        repetitions: 4,
        seed: 0xF167_0007,
        ..Fig7Config::default()
    };
    let variant = WebVariant::SuperGlue { faults: true };
    let reps = cfg.repetitions as usize;
    let run = |jobs: usize| {
        parallel_map_indexed(reps, jobs, |rep| run_fig7_rep(variant, &cfg, rep as u64))
    };
    let serial = run(1);
    let sharded = run(8);
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(a.series.buckets(), b.series.buckets());
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.unrecovered, b.unrecovered);
        assert_eq!(a.metrics, b.metrics);
    }
    // Repetitions exist for variance: phase-shifted fault schedules must
    // actually differ between repetitions.
    assert!(
        serial
            .iter()
            .any(|r| r.series.buckets() != serial[0].series.buckets()),
        "phase-shifted repetitions should not all be identical"
    );
}

// ---------------------------------------------------------------------
// Hot-path invariance: the compiled-dispatch/slab/cheap-clone rewrite of
// the invoke path may change only wall-clock time. These tests pin the
// observable results of the Fig 6(a) workload — counters, virtual time,
// tracked-descriptor population, and the byte-exact trace — so any
// future interpreter "optimization" that changes behavior fails loudly.
// ---------------------------------------------------------------------

/// Run the Fig 6(a) micro-workload for every service on a fresh rig with
/// tracing enabled, plus one fault/recovery cycle per service, and
/// return everything a benchmark could observe.
fn fig6_observables(variant: Variant) -> (MetricsSnapshot, RecoveryStats, SimTime, String) {
    let mut r: Rig = rig(variant);
    r.tb.runtime.kernel_mut().enable_tracing(1 << 20);
    for iface in SERVICES {
        for seq in 0..50 {
            r.run_iteration(iface, seq);
        }
    }
    if variant != Variant::Bare {
        // Bare has no stubs: a fault would simply surface. Exercise the
        // recovery path only under the protected variants.
        for iface in SERVICES {
            let (c, t, svc, f, a) = r.setup_recovery_victim(iface);
            r.tb.runtime.inject_fault(svc);
            r.tb.runtime
                .interface_call(c, t, svc, f, &a)
                .expect("victim recovers");
        }
    }
    let snap = MetricsSnapshot::from_kernel(r.tb.runtime.kernel());
    let stats = r.tb.runtime.stats().clone();
    let now = r.tb.runtime.kernel().now();
    let mut shard = TraceShard::labeled("determinism/fig6");
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&shard.label.clone()));
    let jsonl = shards_to_jsonl(std::slice::from_ref(&shard));
    (snap, stats, now, jsonl)
}

#[test]
fn fig6_workload_results_identical_across_reruns() {
    for variant in [Variant::Bare, Variant::C3, Variant::SuperGlue] {
        let (snap_a, stats_a, now_a, trace_a) = fig6_observables(variant);
        let (snap_b, stats_b, now_b, trace_b) = fig6_observables(variant);
        assert_eq!(
            snap_a, snap_b,
            "{variant:?}: metrics must not depend on the run"
        );
        assert_eq!(
            stats_a, stats_b,
            "{variant:?}: recovery stats must not depend on the run"
        );
        assert_eq!(now_a, now_b, "{variant:?}: virtual time must be replayable");
        assert_eq!(
            trace_a, trace_b,
            "{variant:?}: the flight-recorder dump must be byte-identical"
        );
    }
}

#[test]
fn table2_campaign_rows_identical_across_reruns() {
    let cfg = CampaignConfig {
        variant: Variant::SuperGlue,
        injections: 50,
        seed: 0x7AB1_E002,
        ..CampaignConfig::default()
    };
    let a = run_campaign_parallel("evt", &cfg, 2);
    let b = run_campaign_parallel("evt", &cfg, 2);
    assert_eq!(a.row, b.row, "Table II rows must be rerun-stable");
    assert_eq!(
        a.metrics.to_json_lines("campaign/evt"),
        b.metrics.to_json_lines("campaign/evt"),
        "Table II metrics dump must be byte-identical across reruns"
    );
}

#[test]
fn fig7_series_identical_across_reruns() {
    let cfg = Fig7Config {
        duration: composite::SimTime::from_secs(2),
        fault_period: composite::SimTime::from_secs(1),
        repetitions: 1,
        seed: 0xF167_0008,
        ..Fig7Config::default()
    };
    let a = run_fig7_rep(WebVariant::SuperGlue { faults: true }, &cfg, 0);
    let b = run_fig7_rep(WebVariant::SuperGlue { faults: true }, &cfg, 0);
    assert_eq!(a.series.buckets(), b.series.buckets());
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.unrecovered, b.unrecovered);
    assert_eq!(a.metrics, b.metrics);
}

/// The committed flight-recorder golden must be reproduced byte-for-byte
/// by today's hot path (same fixed episode as
/// `flight_recorder::golden_episode_snapshot`, re-asserted here so the
/// perf suite fails even when run in isolation).
#[test]
fn flight_recorder_golden_unchanged_by_hot_path() {
    let mut r: Rig = rig(Variant::SuperGlue);
    r.tb.runtime.kernel_mut().enable_tracing(1 << 20);
    let (c, t, svc, f, a) = r.setup_recovery_victim("evt");
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(c, t, svc, f, &a)
        .expect("recovery succeeds");
    let mut shard = TraceShard::labeled("golden/evt/superglue");
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&shard.label.clone()));
    let actual = shards_to_jsonl(std::slice::from_ref(&shard));
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/flight_recorder_episode.jsonl");
    let expected = std::fs::read_to_string(&path).expect("golden exists");
    assert_eq!(
        actual, expected,
        "hot-path changes must leave the recovery episode byte-identical \
         (regenerate intentionally via the flight_recorder test's UPDATE_GOLDEN=1)"
    );
}

// ---------------------------------------------------------------------
// Wrapper/core equivalence: the runtime Kernel is a thin shell over the
// pure step function
// ---------------------------------------------------------------------

use composite::{
    step_in_place, AdmitOutcome, ComponentId, CostModel, EscalationPolicy, Event, Kernel,
    KernelState, Priority, RebootOutcome, Reply, Service, ServiceCtx, ServiceError, SplitMix64,
    ThreadId, Value,
};

/// Service with one function per thread-state transition, so the walk
/// can exercise block/sleep/wake through the real invoke path.
#[derive(Debug, Default)]
struct WalkService;

impl Service for WalkService {
    fn interface(&self) -> &'static str {
        "walk"
    }
    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            "get" => Ok(Value::Unit),
            "block" => Err(ctx.block_current()),
            "sleep" => {
                let until = ctx.now() + SimTime(args[0].int()? as u64);
                Err(ctx.sleep_current_until(until))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }
    fn reset(&mut self) {}
}

/// Mirror of `Kernel::invoke` in raw core events: the admission loop,
/// the service body's kernel side effects, and the completion event.
fn mirror_invoke(
    shadow: &mut KernelState,
    client: ComponentId,
    thread: ThreadId,
    svc: ComponentId,
    fname: &str,
    sleep_dt: u64,
) {
    loop {
        let fx = step_in_place(
            shadow,
            &Event::InvokeAdmit {
                client,
                thread,
                target: svc,
                bypass_caps: false,
            },
        );
        let Reply::Admit(outcome) = fx.reply else {
            unreachable!("InvokeAdmit replies Admit")
        };
        match outcome {
            AdmitOutcome::Admitted => {
                let ok = match fname {
                    "get" => true,
                    "block" => {
                        step_in_place(
                            shadow,
                            &Event::BlockThread {
                                thread,
                                in_component: svc,
                            },
                        );
                        false
                    }
                    "sleep" => {
                        let until = shadow.time + SimTime(sleep_dt);
                        step_in_place(shadow, &Event::SleepThread { thread, until });
                        false
                    }
                    other => unreachable!("walk never calls {other}"),
                };
                step_in_place(
                    shadow,
                    &Event::InvokeFinish {
                        thread,
                        target: svc,
                        ok,
                    },
                );
                return;
            }
            AdmitOutcome::NeedColdRestart => {
                step_in_place(shadow, &Event::ColdRestart { component: svc });
            }
            // Faulty / Degraded / capability failures: the wrapper
            // fails fast with no further state transition.
            _ => return,
        }
    }
}

/// One random walk driving the runtime `Kernel` through its public API
/// while a raw [`KernelState`] replays the identical core events; the
/// two must agree after every operation.
fn equivalence_walk(seed: u64, ops: usize) -> (Kernel, MetricsSnapshot, String) {
    let mut k = Kernel::with_costs(CostModel::paper_defaults());
    k.enable_tracing(1 << 16);
    let mut shadow = k.snapshot();

    let client = k.add_client_component("app");
    step_in_place(&mut shadow, &Event::AddComponent { has_service: false });
    let svc = k.add_component("walk", Box::new(WalkService));
    step_in_place(&mut shadow, &Event::AddComponent { has_service: true });
    k.grant(client, svc);
    step_in_place(
        &mut shadow,
        &Event::Grant {
            client,
            server: svc,
        },
    );
    let t = k.create_thread(client, Priority(10));
    step_in_place(
        &mut shadow,
        &Event::AddThread {
            home: client,
            priority: Priority(10),
        },
    );
    let policy = EscalationPolicy {
        reboot_window: SimTime::from_millis(1),
        max_reboots_in_window: 2,
        degraded_cooldown: SimTime::from_millis(5),
        reboot_backoff: SimTime(10_000),
    };
    k.set_escalation(policy);
    step_in_place(&mut shadow, &Event::SetEscalation(policy));
    assert_eq!(k.state(), &shadow, "setup must already agree");

    let mut rng = SplitMix64::new(seed);
    for i in 0..ops {
        match rng.gen_range(10) {
            0..=3 => {
                let _ = k.invoke(client, t, svc, "get", &[]);
                mirror_invoke(&mut shadow, client, t, svc, "get", 0);
            }
            4 => {
                let _ = k.invoke(client, t, svc, "block", &[]);
                mirror_invoke(&mut shadow, client, t, svc, "block", 0);
            }
            5 => {
                let dt = 1 + rng.gen_range(1_000_000);
                let _ = k.invoke(client, t, svc, "sleep", &[Value::Int(dt as i64)]);
                mirror_invoke(&mut shadow, client, t, svc, "sleep", dt);
            }
            6 => {
                let _ = k.wake_thread(t);
                step_in_place(&mut shadow, &Event::WakeThread { thread: t });
            }
            7 => {
                k.fault(svc);
                step_in_place(&mut shadow, &Event::Fault { component: svc });
            }
            8 => {
                k.micro_reboot(svc).expect("walk service reboots");
                let fx = step_in_place(&mut shadow, &Event::MicroReboot { component: svc });
                let Reply::Reboot(RebootOutcome::Done { mark_degraded }) = fx.reply else {
                    unreachable!("service component reboots")
                };
                if let Some(until) = mark_degraded {
                    step_in_place(
                        &mut shadow,
                        &Event::MarkDegraded {
                            component: svc,
                            until,
                        },
                    );
                }
            }
            _ => {
                let target = shadow.time + SimTime(1 + rng.gen_range(2_000_000));
                k.advance_to(target);
                step_in_place(&mut shadow, &Event::AdvanceTo(target));
            }
        }
        assert_eq!(
            k.state(),
            &shadow,
            "wrapper and raw core diverged after op {i} (seed {seed:#x})"
        );
    }
    let snap = MetricsSnapshot::from_kernel(&k);
    let shard = k.take_trace("equivalence-walk");
    let jsonl = shards_to_jsonl(std::slice::from_ref(&shard));
    (k, snap, jsonl)
}

/// The runtime wrapper holds no kernel state of its own: random walks
/// through the public API leave its `KernelState` identical to a raw
/// state driven by the same core events.
#[test]
fn step_wrapper_matches_raw_core_on_random_walks() {
    for seed in [0xE0_1D_u64, 0xBEEF, 0x5EED_5EED] {
        equivalence_walk(seed, 300);
    }
}

/// The same walk run twice produces byte-identical traces, identical
/// metrics snapshots, and equal descriptor-free kernel state.
#[test]
fn step_wrapper_walk_is_deterministic() {
    let (ka, snap_a, trace_a) = equivalence_walk(0xD15C, 300);
    let (kb, snap_b, trace_b) = equivalence_walk(0xD15C, 300);
    assert_eq!(ka.state(), kb.state());
    assert_eq!(snap_a, snap_b);
    assert_eq!(trace_a, trace_b, "walk traces must be byte-identical");
}

// ---------------------------------------------------------------------
// Recovery-SLO analytics: the `--series` telemetry and the `sgstat
// avail` summaries are derived artifacts of the campaign — they must
// inherit the byte-identical-for-any-jobs contract, and reruns must
// reproduce them exactly.
// ---------------------------------------------------------------------

/// One campaign with series + trace capture; returns the exact
/// `--series` file bytes and the exact `sgstat avail` summary text.
fn campaign_analytics(iface: &'static str, jobs: usize) -> (String, String) {
    let cfg = CampaignConfig {
        injections: 50,
        seed: 0x5105_7A70,
        trace: true,
        series_window_ns: composite::DEFAULT_SERIES_WINDOW.0,
        ..CampaignConfig::default()
    };
    let result = run_campaign_parallel(iface, &cfg, jobs);
    let series = series_to_jsonl(
        cfg.series_window_ns,
        &[(format!("table2/{iface}/superglue"), &result.series)],
    );
    let jsonl = shards_to_jsonl(&result.trace);
    let shards = parse_trace_text(&jsonl).expect("trace parses");
    let avail = avail_report(&shards).render();
    (series, avail)
}

#[test]
fn series_bytes_identical_across_jobs_and_reruns() {
    let (series_1, avail_1) = campaign_analytics("evt", 1);
    let (series_8, avail_8) = campaign_analytics("evt", 8);
    assert_eq!(
        series_1, series_8,
        "--series output must not depend on --jobs"
    );
    assert_eq!(
        avail_1, avail_8,
        "sgstat avail summaries must not depend on --jobs"
    );
    let (series_again, avail_again) = campaign_analytics("evt", 8);
    assert_eq!(series_1, series_again, "--series must be replayable");
    assert_eq!(avail_1, avail_again, "sgstat avail must be replayable");
    assert!(
        series_1.lines().count() > 1,
        "series capture must produce rows, not just the header"
    );
    assert!(
        avail_1.contains("conservation: OK"),
        "fixed-seed campaign books must balance:\n{avail_1}"
    );
}

#[test]
fn odd_job_counts_preserve_series_bytes() {
    let (baseline, avail_base) = campaign_analytics("lock", 1);
    for jobs in [2, 3, 5] {
        let (series, avail) = campaign_analytics("lock", jobs);
        assert_eq!(baseline, series, "jobs = {jobs}");
        assert_eq!(avail_base, avail, "jobs = {jobs}");
    }
}
