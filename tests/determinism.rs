//! Determinism regression tests for the parallel evaluation engine.
//!
//! The sharded SWIFI campaign and the Fig 7 repetition fan-out must be
//! **bit-identical for every worker count**: each shard/repetition draws
//! from its own seeded RNG stream (`mix(campaign_seed, shard_index)`)
//! and results are merged in shard order, so `--jobs 1` and `--jobs 8`
//! may differ only in wall-clock time.

use composite::{parallel_map_indexed, shards_to_chrome, shards_to_jsonl};
use sg_swifi::{run_campaign_parallel, CampaignConfig};
use sg_webserver::{run_fig7_rep, Fig7Config, WebVariant};
use superglue::testbed::Variant;

#[test]
fn mini_campaign_tallies_identical_across_jobs() {
    for variant in [Variant::C3, Variant::SuperGlue] {
        let cfg = CampaignConfig {
            variant,
            injections: 50,
            seed: 0x0D15_EA5E,
            ..CampaignConfig::default()
        };
        let serial = run_campaign_parallel("lock", &cfg, 1);
        let sharded = run_campaign_parallel("lock", &cfg, 8);
        assert_eq!(
            serial.row, sharded.row,
            "{variant:?}: Table II tallies must not depend on --jobs"
        );
        assert_eq!(
            serial.metrics, sharded.metrics,
            "{variant:?}: mechanism counters must not depend on --jobs"
        );
        assert_eq!(
            serial.metrics.to_json_lines("campaign/lock"),
            sharded.metrics.to_json_lines("campaign/lock"),
            "{variant:?}: emitted JSON-lines must be byte-identical"
        );
        assert_eq!(serial.row.injected, 50, "{variant:?}: full quota injected");
    }
}

#[test]
fn campaign_shard_results_are_independent_of_schedule() {
    // Odd jobs counts exercise unbalanced work-stealing schedules; the
    // merged result must still be the jobs=1 result.
    let cfg = CampaignConfig {
        injections: 50,
        seed: 0xFEED_F00D,
        ..CampaignConfig::default()
    };
    let baseline = run_campaign_parallel("evt", &cfg, 1);
    for jobs in [2, 3, 5] {
        assert_eq!(
            baseline,
            run_campaign_parallel("evt", &cfg, jobs),
            "jobs = {jobs}"
        );
    }
}

#[test]
fn campaign_traces_byte_identical_across_jobs() {
    let cfg = CampaignConfig {
        injections: 50,
        seed: 0x7EAC_E5EED,
        trace: true,
        ..CampaignConfig::default()
    };
    let serial = run_campaign_parallel("lock", &cfg, 1);
    let sharded = run_campaign_parallel("lock", &cfg, 8);
    assert!(
        !serial.trace.is_empty(),
        "tracing enabled: shards must carry traces"
    );
    assert_eq!(
        shards_to_jsonl(&serial.trace),
        shards_to_jsonl(&sharded.trace),
        "merged JSON-lines trace must not depend on --jobs"
    );
    assert_eq!(
        shards_to_chrome(&serial.trace),
        shards_to_chrome(&sharded.trace),
        "Chrome trace rendering must not depend on --jobs"
    );
}

#[test]
fn fig7_repetitions_identical_across_jobs() {
    let cfg = Fig7Config {
        duration: composite::SimTime::from_secs(3),
        fault_period: composite::SimTime::from_secs(1),
        repetitions: 4,
        seed: 0xF167_0007,
        ..Fig7Config::default()
    };
    let variant = WebVariant::SuperGlue { faults: true };
    let reps = cfg.repetitions as usize;
    let run = |jobs: usize| {
        parallel_map_indexed(reps, jobs, |rep| run_fig7_rep(variant, &cfg, rep as u64))
    };
    let serial = run(1);
    let sharded = run(8);
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(a.series.buckets(), b.series.buckets());
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.unrecovered, b.unrecovered);
        assert_eq!(a.metrics, b.metrics);
    }
    // Repetitions exist for variance: phase-shifted fault schedules must
    // actually differ between repetitions.
    assert!(
        serial
            .iter()
            .any(|r| r.series.buckets() != serial[0].series.buckets()),
        "phase-shifted repetitions should not all be identical"
    );
}
