//! End-to-end pipeline robustness tests (ISSUE 10 acceptance criteria).
//!
//! 1. **Differential exactly-once.** For a matrix of seeds, the
//!    committed output log of a SWIFI-faulted run is byte-identical to
//!    the closed-form fault-free log — no loss, no duplication.
//! 2. **Worker-count independence.** The bench grid and the SWIFI
//!    pipeline campaign produce bit-identical results for `--jobs 1`
//!    vs `--jobs 8`.
//! 3. **Golden dead-letter episode.** The flight-recorder trace of one
//!    fixed-seed showstopper escalation is pinned byte-for-byte
//!    (`tests/golden/pipeline_dead_letter.jsonl`); regenerate an
//!    intentional change with
//!    `UPDATE_GOLDEN=1 cargo test -p sg-bench --test pipeline_e2e`.
//! 4. **Replay conformance.** `sgtrace verify` accepts a faulted
//!    pipeline trace: every observed channel recovery walk decomposes
//!    into IDL-computable replay plans, and the channel episodes are
//!    actually checked (not skipped as foreign).

use std::path::PathBuf;

use composite::{parallel_map_indexed, shards_to_jsonl, SimTime};
use sg_pipeline::{
    expected_output, run_pipeline_rep, run_pipeline_variant, PipelineConfig, PipelineVariant,
};
use sg_swifi::{run_pipeline_campaign_parallel, PipelineCampaignConfig};

fn faulted_cfg(seed: u64) -> PipelineConfig {
    PipelineConfig {
        jobs: 200,
        duration: SimTime::from_secs(30),
        fault_period: SimTime::from_millis(1),
        seed,
        ..PipelineConfig::default()
    }
}

#[test]
fn exactly_once_holds_for_every_seed_in_the_matrix() {
    for seed in [0x9E37_0001, 1, 2, 0xDEAD_BEEF] {
        let cfg = faulted_cfg(seed);
        for rep in 0..2 {
            let r = run_pipeline_rep(PipelineVariant::SuperGlue { faults: true }, &cfg, rep);
            assert!(r.faults_injected > 0, "seed {seed:#x} rep {rep}: no faults");
            assert_eq!(r.unrecovered, 0, "seed {seed:#x} rep {rep}");
            assert_eq!(
                r.output,
                expected_output(&cfg),
                "seed {seed:#x} rep {rep}: committed log must be byte-identical"
            );
        }
    }
}

#[test]
fn showstopper_lands_in_dlq_after_exactly_k_faults_for_jobs_1_vs_8() {
    let campaign = PipelineCampaignConfig {
        injections: 2,
        showstoppers: 2,
        pipeline: PipelineConfig {
            jobs: 120,
            duration: SimTime::from_secs(30),
            ..PipelineConfig::default()
        },
        ..PipelineCampaignConfig::default()
    };
    let one = run_pipeline_campaign_parallel(&campaign, 1);
    let eight = run_pipeline_campaign_parallel(&campaign, 8);
    assert_eq!(one, eight, "campaign must be bit-identical for any --jobs");
    let s = &one.showstopper;
    assert!(s.dead_letters > 0);
    assert_eq!(
        s.reboots, s.reboot_cap,
        "each showstopper must cause exactly K = poison_limit reboots: {s:?}"
    );
    assert_eq!(s.row.recovered, s.row.injected, "{s:?}");
}

#[test]
fn bench_grid_is_byte_identical_for_jobs_1_vs_8() {
    let cfg = faulted_cfg(7);
    let variants = [
        PipelineVariant::SuperGlue { faults: false },
        PipelineVariant::SuperGlue { faults: true },
    ];
    let grid = |jobs| {
        parallel_map_indexed(variants.len() * 2, jobs, |task| {
            run_pipeline_rep(variants[task / 2], &cfg, (task % 2) as u64)
        })
    };
    let a = grid(1);
    let b = grid(8);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.output, y.output);
        assert_eq!(x.wall, y.wall);
        assert_eq!(x.faults_injected, y.faults_injected);
        assert_eq!(x.dead_letters, y.dead_letters);
        assert_eq!(x.cursor_restores, y.cursor_restores);
    }
}

/// One fixed showstopper escalation: 8 jobs, the last poisoned, K=3 —
/// the trace pins the three consumer faults, three micro-reboot
/// recoveries, and the DL0 dead-letter event byte-for-byte.
fn dead_letter_trace() -> String {
    let cfg = PipelineConfig {
        jobs: 8,
        poison_every: 8,
        duration: SimTime::from_secs(30),
        trace: true,
        ..PipelineConfig::default()
    };
    let r = run_pipeline_variant(PipelineVariant::SuperGlue { faults: false }, &cfg);
    assert_eq!(r.dead_letters, 1, "exactly one dead-letter episode");
    assert_eq!(r.faults_handled, cfg.poison_limit, "exactly K reboots");
    let shard = r.trace.expect("tracing enabled");
    shards_to_jsonl(std::slice::from_ref(&shard))
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/pipeline_dead_letter.jsonl")
}

#[test]
fn golden_dead_letter_episode_snapshot() {
    let actual = dead_letter_trace();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "fixed-seed dead-letter episode drifted from the golden snapshot; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn sgtrace_verify_accepts_faulted_pipeline_traces() {
    let cfg = PipelineConfig {
        trace: true,
        ..faulted_cfg(3)
    };
    let r = run_pipeline_rep(PipelineVariant::SuperGlue { faults: true }, &cfg, 0);
    assert!(r.faults_injected > 0);
    let shard = r.trace.expect("tracing enabled");
    let dir = std::env::temp_dir().join(format!("sg-pipeline-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir temp");
    let trace_path = dir.join("pipeline_trace.jsonl");
    std::fs::write(&trace_path, shards_to_jsonl(std::slice::from_ref(&shard)))
        .expect("write trace");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_sgtrace"))
        .arg("verify")
        .arg(&trace_path)
        .output()
        .expect("run sgtrace verify");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "sgtrace verify failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("all observed recovery walks conform"),
        "{stdout}"
    );
    // The channel episodes must be genuinely checked, not skipped as a
    // foreign interface.
    let checked: u64 = stdout
        .lines()
        .find_map(|l| l.split_once(" per-descriptor"))
        .and_then(|(n, _)| n.trim().parse().ok())
        .expect("summary line present");
    assert!(checked > 0, "no replay sequences were checked:\n{stdout}");
    let _ = std::fs::remove_file(&trace_path);
}
