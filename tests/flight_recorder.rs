//! Flight-recorder integration tests.
//!
//! Three properties the kernel flight recorder must keep:
//!
//! 1. **Counters == trace.** Every mechanism firing goes through the
//!    single `Kernel::record_mechanism` choke point, which increments
//!    the `MetricsRegistry` *and* emits the matching trace event — so
//!    for every mechanism, the counter total and the sum of traced `n`
//!    values must agree exactly.
//! 2. **Latency conservation.** For every recovery episode, the timed
//!    spans recorded on the faulted component must re-sum to exactly
//!    the episode's kernel-attributed latency.
//! 3. **Golden episode.** The JSON-lines dump of one fixed-seed
//!    recovery episode is pinned as a snapshot
//!    (`tests/golden/flight_recorder_episode.jsonl`); regenerate an
//!    intentional change with
//!    `UPDATE_GOLDEN=1 cargo test -p sg-bench --test flight_recorder`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use composite::{
    shards_to_jsonl, ComponentId, CostModel, Epoch, InterfaceCall as _, Kernel, KernelAccess as _,
    Mechanism, MetricsSnapshot, Priority, Service, ServiceCtx, ServiceError, SimTime, ThreadId,
    TraceEvent, TraceEventKind, TraceShard, Value, MECHANISMS,
};
use sg_bench::{rig, Rig, SERVICES};
use sg_webserver::{run_fig7_rep, Fig7Config, WebVariant};
use superglue::testbed::Variant;

const TEST_CAPACITY: usize = 1 << 20;

/// Fault and recover a few services with tracing on; return the final
/// counter snapshot and the drained trace.
fn traced_scenario(variant: Variant) -> (MetricsSnapshot, TraceShard) {
    let mut r: Rig = rig(variant);
    r.tb.runtime.kernel_mut().enable_tracing(TEST_CAPACITY);
    for iface in SERVICES {
        r.run_iteration(iface, 0);
    }
    for iface in ["mm", "evt", "fs", "lock"] {
        let (c, t, svc, f, a) = r.setup_recovery_victim(iface);
        r.tb.runtime.inject_fault(svc);
        r.tb.runtime
            .interface_call(c, t, svc, f, &a)
            .expect("victim recovers");
        r.tb.runtime.recover_now(svc, t).expect("quiesce sweep");
    }
    let snap = MetricsSnapshot::from_kernel(r.tb.runtime.kernel());
    let shard = r.tb.runtime.kernel_mut().take_trace("test/scenario");
    (snap, shard)
}

/// Sum of `MechanismFired` increments per mechanism in a shard.
fn traced_mechanism_totals(shard: &TraceShard) -> BTreeMap<Mechanism, u64> {
    let mut totals = BTreeMap::new();
    for ev in &shard.events {
        if let TraceEventKind::MechanismFired { mech, n } = &ev.kind {
            *totals.entry(*mech).or_insert(0) += n;
        }
    }
    totals
}

#[test]
fn mechanism_counters_equal_trace_event_sums() {
    for variant in [Variant::C3, Variant::SuperGlue] {
        let (snap, shard) = traced_scenario(variant);
        assert_eq!(shard.dropped, 0, "{variant:?}: test ring must not drop");
        assert_eq!(shard.dropped_recovery, 0, "{variant:?}");
        let traced = traced_mechanism_totals(&shard);
        for m in MECHANISMS {
            assert_eq!(
                snap.mechanism_total(m),
                traced.get(&m).copied().unwrap_or(0),
                "{variant:?}: {} counter disagrees with the trace",
                m.name()
            );
        }
        // The scenario is chosen to actually fire the core mechanisms —
        // agreement over all-zeros would prove nothing.
        for m in [Mechanism::R0, Mechanism::D0, Mechanism::G0, Mechanism::U0] {
            assert!(
                snap.mechanism_total(m) > 0,
                "{variant:?}: scenario never fired {}",
                m.name()
            );
        }
    }
}

/// Re-derive every episode's attributed latency from its timed events
/// and compare against the kernel's `episode_end` record.
fn check_conservation(shard: &TraceShard) -> usize {
    assert_eq!(
        shard.dropped_recovery, 0,
        "recovery events dropped; conservation unverifiable"
    );
    let mut open: BTreeMap<u32, SimTime> = BTreeMap::new();
    let mut episodes = 0;
    for ev in &shard.events {
        match &ev.kind {
            TraceEventKind::FaultInjected { .. } => {
                open.insert(ev.component.0, SimTime::ZERO);
            }
            TraceEventKind::EpisodeEnd { attributed } => {
                let resummed = open
                    .remove(&ev.component.0)
                    .expect("episode_end without fault");
                assert_eq!(
                    resummed, *attributed,
                    "episode on comp {} violates latency conservation",
                    ev.component.0
                );
                episodes += 1;
            }
            _ => {
                if ev.dur > SimTime::ZERO {
                    if let Some(acc) = open.get_mut(&ev.component.0) {
                        *acc += ev.dur;
                    }
                }
            }
        }
    }
    assert!(open.is_empty(), "take_trace must close every open episode");
    episodes
}

#[test]
fn episode_latency_attribution_is_conserved() {
    for variant in [Variant::C3, Variant::SuperGlue] {
        let (_, shard) = traced_scenario(variant);
        let episodes = check_conservation(&shard);
        assert!(episodes >= 4, "{variant:?}: one episode per injected fault");
    }
}

#[test]
fn fig7_trace_conserves_attribution_and_survives_ambient_flood() {
    let cfg = Fig7Config {
        duration: SimTime::from_secs(3),
        fault_period: SimTime::from_secs(1),
        seed: 0xF11_6487,
        trace: true,
        ..Fig7Config::default()
    };
    let res = run_fig7_rep(WebVariant::SuperGlue { faults: true }, &cfg, 0);
    let shard = res.trace.expect("tracing was enabled");
    assert!(res.faults_injected > 0, "faults must occur in the window");
    // The throughput workload floods the ambient ring; the recovery
    // record must survive regardless.
    let episodes = check_conservation(&shard);
    assert_eq!(episodes as u64, res.faults_injected);
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/flight_recorder_episode.jsonl")
}

/// One fixed recovery episode — the evt service recovered under
/// SuperGlue, the richest mechanism mix (R0+G0+U0 via the foreign
/// creator path) — pinned byte-for-byte.
#[test]
fn golden_episode_snapshot() {
    let mut r: Rig = rig(Variant::SuperGlue);
    r.tb.runtime.kernel_mut().enable_tracing(TEST_CAPACITY);
    let (c, t, svc, f, a) = r.setup_recovery_victim("evt");
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(c, t, svc, f, &a)
        .expect("recovery succeeds");
    let mut shard = TraceShard::labeled("golden/evt/superglue");
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&shard.label.clone()));
    let actual = shards_to_jsonl(std::slice::from_ref(&shard));

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "fixed-seed recovery episode drifted from the golden snapshot; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

// ---------------------------------------------------------------------
// Ring edge cases: tier overflow accounting and shard absorption
// ---------------------------------------------------------------------

/// Trivial service for bare-kernel ring tests; the calls that matter
/// never reach it (faulty admission rejects before dispatch).
#[derive(Debug, Default)]
struct Echo;

impl Service for Echo {
    fn interface(&self) -> &'static str {
        "echo"
    }
    fn call(
        &mut self,
        _ctx: &mut ServiceCtx<'_>,
        fname: &str,
        _args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            "ping" => Ok(Value::Unit),
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }
    fn reset(&mut self) {}
}

fn tiny_traced_kernel(capacity: usize) -> (Kernel, ComponentId, ComponentId, ThreadId) {
    let mut k = Kernel::with_costs(CostModel::free());
    k.enable_tracing(capacity);
    let client = k.add_client_component("app");
    let svc = k.add_component("echo", Box::new(Echo));
    k.grant(client, svc);
    let t = k.create_thread(client, Priority(10));
    (k, client, svc, t)
}

/// Ambient traffic flooding a tiny ring while a recovery episode is
/// open must evict only ambient events: the episode's fault, reboot,
/// and episode-end records all survive, `dropped` counts the evictions
/// exactly, and `dropped_recovery` stays zero — so latency conservation
/// is still verifiable from the shard.
#[test]
fn ambient_overflow_during_open_episode_preserves_recovery_record() {
    let (mut k, client, svc, t) = tiny_traced_kernel(8);
    k.fault(svc);
    // Each rejected invocation of the faulty service emits an ambient
    // InvokeEnter/InvokeExit pair: 50 calls -> 100 ambient events into
    // a ring that retains 8 per tier.
    for _ in 0..50 {
        let err = k.invoke(client, t, svc, "ping", &[]);
        assert!(matches!(err, Err(composite::CallError::Fault { .. })));
    }
    k.micro_reboot(svc).expect("echo reboots");
    let shard = k.take_trace("edge/ambient-flood");

    assert_eq!(shard.dropped, 92, "100 ambient events, 8 retained");
    assert_eq!(
        shard.dropped_recovery, 0,
        "ambient flood must never evict recovery events"
    );
    let ambient_retained = shard
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::InvokeEnter { .. } | TraceEventKind::InvokeExit { .. }
            )
        })
        .count();
    assert_eq!(ambient_retained, 8);
    for kind in ["fault", "reboot", "episode_end"] {
        assert_eq!(
            shard
                .events
                .iter()
                .filter(|e| e.kind.name() == kind)
                .count(),
            1,
            "exactly one {kind} must survive the flood"
        );
    }
    assert_eq!(check_conservation(&shard), 1);
}

/// Recovery-tier overflow is accounted separately from ambient drops:
/// a reboot storm against a tiny ring evicts old recovery events into
/// `dropped_recovery`, leaves `dropped` untouched, and retains the most
/// recent recovery events in emission order.
#[test]
fn recovery_tier_overflow_counts_into_dropped_recovery() {
    let (mut k, _client, svc, _t) = tiny_traced_kernel(4);
    // Ten fault+reboot cycles. Per cycle: FaultInjected + Reboot; each
    // next top-level fault closes the previous episode (EpisodeEnd),
    // and take_trace closes the last -> 10 + 10 + 10 = 30 recovery
    // events through a tier retaining 4.
    for _ in 0..10 {
        k.fault(svc);
        k.micro_reboot(svc).expect("echo reboots");
    }
    let shard = k.take_trace("edge/reboot-storm");

    assert_eq!(shard.dropped_recovery, 26, "30 recovery events, 4 retained");
    assert_eq!(shard.dropped, 0, "no ambient traffic occurred");
    assert_eq!(shard.events.len(), 4);
    let kinds: Vec<&str> = shard.events.iter().map(|e| e.kind.name()).collect();
    assert_eq!(
        kinds,
        ["episode_end", "fault", "reboot", "episode_end"],
        "the newest recovery events survive, in emission order"
    );
}

fn instant(span: u64, parent: Option<u64>, component: u32, kind: TraceEventKind) -> TraceEvent {
    TraceEvent {
        span,
        parent,
        time: SimTime::ZERO,
        dur: SimTime::ZERO,
        thread: ThreadId(1),
        component: ComponentId(component),
        epoch: Epoch::default(),
        kind,
    }
}

/// `TraceShard::absorb` with empty shards on either side: absorbing an
/// empty shard is a no-op (except for additive drop counters), an empty
/// shard absorbing a populated one takes its events at offset zero and
/// adopts its name table, and an existing name table is never replaced.
#[test]
fn absorb_handles_empty_shards() {
    let populated = || {
        let mut s = TraceShard::labeled("donor");
        s.names = vec!["booter".to_owned(), "echo".to_owned()];
        s.events = vec![
            instant(0, None, 1, TraceEventKind::FaultInjected { depth: 0 }),
            instant(1, Some(0), 1, TraceEventKind::Reboot),
        ];
        s.span_count = 2;
        s.dropped = 3;
        s.dropped_recovery = 1;
        s
    };

    // Empty absorbs empty: still empty.
    let mut a = TraceShard::labeled("empty");
    a.absorb(TraceShard::default());
    assert!(a.events.is_empty() && a.names.is_empty());
    assert_eq!((a.dropped, a.dropped_recovery, a.span_count), (0, 0, 0));

    // Populated absorbs empty: events and names untouched, label kept.
    let mut b = populated();
    b.absorb(TraceShard::labeled("empty"));
    assert_eq!(b.label, "donor");
    assert_eq!(b.events, populated().events);
    assert_eq!(b.names, populated().names);
    assert_eq!((b.dropped, b.dropped_recovery, b.span_count), (3, 1, 2));

    // Empty absorbs populated: events arrive at offset zero (span ids
    // unchanged), names adopted, counters copied.
    let mut c = TraceShard::labeled("merged");
    c.absorb(populated());
    assert_eq!(c.label, "merged");
    assert_eq!(c.events, populated().events);
    assert_eq!(c.names, populated().names);
    assert_eq!((c.dropped, c.dropped_recovery, c.span_count), (3, 1, 2));

    // Empty-but-named absorbs populated: the existing name table wins.
    let mut d = TraceShard::labeled("named");
    d.names = vec!["other".to_owned()];
    d.absorb(populated());
    assert_eq!(d.names, vec!["other".to_owned()]);

    // Populated absorbs populated: spans renumber past span_count and
    // parents follow; drop counters add.
    let mut e = populated();
    e.absorb(populated());
    assert_eq!(e.span_count, 4);
    assert_eq!(e.events.len(), 4);
    assert_eq!(e.events[2].span, 2);
    assert_eq!(e.events[3].span, 3);
    assert_eq!(e.events[3].parent, Some(2));
    assert_eq!((e.dropped, e.dropped_recovery), (6, 2));
}
