//! Flight-recorder integration tests.
//!
//! Three properties the kernel flight recorder must keep:
//!
//! 1. **Counters == trace.** Every mechanism firing goes through the
//!    single `Kernel::record_mechanism` choke point, which increments
//!    the `MetricsRegistry` *and* emits the matching trace event — so
//!    for every mechanism, the counter total and the sum of traced `n`
//!    values must agree exactly.
//! 2. **Latency conservation.** For every recovery episode, the timed
//!    spans recorded on the faulted component must re-sum to exactly
//!    the episode's kernel-attributed latency.
//! 3. **Golden episode.** The JSON-lines dump of one fixed-seed
//!    recovery episode is pinned as a snapshot
//!    (`tests/golden/flight_recorder_episode.jsonl`); regenerate an
//!    intentional change with
//!    `UPDATE_GOLDEN=1 cargo test -p sg-bench --test flight_recorder`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use composite::{
    shards_to_jsonl, InterfaceCall as _, KernelAccess as _, Mechanism, MetricsSnapshot, SimTime,
    TraceEventKind, TraceShard, MECHANISMS,
};
use sg_bench::{rig, Rig, SERVICES};
use sg_webserver::{run_fig7_rep, Fig7Config, WebVariant};
use superglue::testbed::Variant;

const TEST_CAPACITY: usize = 1 << 20;

/// Fault and recover a few services with tracing on; return the final
/// counter snapshot and the drained trace.
fn traced_scenario(variant: Variant) -> (MetricsSnapshot, TraceShard) {
    let mut r: Rig = rig(variant);
    r.tb.runtime.kernel_mut().enable_tracing(TEST_CAPACITY);
    for iface in SERVICES {
        r.run_iteration(iface, 0);
    }
    for iface in ["mm", "evt", "fs", "lock"] {
        let (c, t, svc, f, a) = r.setup_recovery_victim(iface);
        r.tb.runtime.inject_fault(svc);
        r.tb.runtime
            .interface_call(c, t, svc, f, &a)
            .expect("victim recovers");
        r.tb.runtime.recover_now(svc, t).expect("quiesce sweep");
    }
    let snap = MetricsSnapshot::from_kernel(r.tb.runtime.kernel());
    let shard = r.tb.runtime.kernel_mut().take_trace("test/scenario");
    (snap, shard)
}

/// Sum of `MechanismFired` increments per mechanism in a shard.
fn traced_mechanism_totals(shard: &TraceShard) -> BTreeMap<Mechanism, u64> {
    let mut totals = BTreeMap::new();
    for ev in &shard.events {
        if let TraceEventKind::MechanismFired { mech, n } = &ev.kind {
            *totals.entry(*mech).or_insert(0) += n;
        }
    }
    totals
}

#[test]
fn mechanism_counters_equal_trace_event_sums() {
    for variant in [Variant::C3, Variant::SuperGlue] {
        let (snap, shard) = traced_scenario(variant);
        assert_eq!(shard.dropped, 0, "{variant:?}: test ring must not drop");
        assert_eq!(shard.dropped_recovery, 0, "{variant:?}");
        let traced = traced_mechanism_totals(&shard);
        for m in MECHANISMS {
            assert_eq!(
                snap.mechanism_total(m),
                traced.get(&m).copied().unwrap_or(0),
                "{variant:?}: {} counter disagrees with the trace",
                m.name()
            );
        }
        // The scenario is chosen to actually fire the core mechanisms —
        // agreement over all-zeros would prove nothing.
        for m in [Mechanism::R0, Mechanism::D0, Mechanism::G0, Mechanism::U0] {
            assert!(
                snap.mechanism_total(m) > 0,
                "{variant:?}: scenario never fired {}",
                m.name()
            );
        }
    }
}

/// Re-derive every episode's attributed latency from its timed events
/// and compare against the kernel's `episode_end` record.
fn check_conservation(shard: &TraceShard) -> usize {
    assert_eq!(
        shard.dropped_recovery, 0,
        "recovery events dropped; conservation unverifiable"
    );
    let mut open: BTreeMap<u32, SimTime> = BTreeMap::new();
    let mut episodes = 0;
    for ev in &shard.events {
        match &ev.kind {
            TraceEventKind::FaultInjected { .. } => {
                open.insert(ev.component.0, SimTime::ZERO);
            }
            TraceEventKind::EpisodeEnd { attributed } => {
                let resummed = open
                    .remove(&ev.component.0)
                    .expect("episode_end without fault");
                assert_eq!(
                    resummed, *attributed,
                    "episode on comp {} violates latency conservation",
                    ev.component.0
                );
                episodes += 1;
            }
            _ => {
                if ev.dur > SimTime::ZERO {
                    if let Some(acc) = open.get_mut(&ev.component.0) {
                        *acc += ev.dur;
                    }
                }
            }
        }
    }
    assert!(open.is_empty(), "take_trace must close every open episode");
    episodes
}

#[test]
fn episode_latency_attribution_is_conserved() {
    for variant in [Variant::C3, Variant::SuperGlue] {
        let (_, shard) = traced_scenario(variant);
        let episodes = check_conservation(&shard);
        assert!(episodes >= 4, "{variant:?}: one episode per injected fault");
    }
}

#[test]
fn fig7_trace_conserves_attribution_and_survives_ambient_flood() {
    let cfg = Fig7Config {
        duration: SimTime::from_secs(3),
        fault_period: SimTime::from_secs(1),
        seed: 0xF11_6487,
        trace: true,
        ..Fig7Config::default()
    };
    let res = run_fig7_rep(WebVariant::SuperGlue { faults: true }, &cfg, 0);
    let shard = res.trace.expect("tracing was enabled");
    assert!(res.faults_injected > 0, "faults must occur in the window");
    // The throughput workload floods the ambient ring; the recovery
    // record must survive regardless.
    let episodes = check_conservation(&shard);
    assert_eq!(episodes as u64, res.faults_injected);
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/flight_recorder_episode.jsonl")
}

/// One fixed recovery episode — the evt service recovered under
/// SuperGlue, the richest mechanism mix (R0+G0+U0 via the foreign
/// creator path) — pinned byte-for-byte.
#[test]
fn golden_episode_snapshot() {
    let mut r: Rig = rig(Variant::SuperGlue);
    r.tb.runtime.kernel_mut().enable_tracing(TEST_CAPACITY);
    let (c, t, svc, f, a) = r.setup_recovery_victim("evt");
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime
        .interface_call(c, t, svc, f, &a)
        .expect("recovery succeeds");
    let mut shard = TraceShard::labeled("golden/evt/superglue");
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&shard.label.clone()));
    let actual = shards_to_jsonl(std::slice::from_ref(&shard));

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "fixed-seed recovery episode drifted from the golden snapshot; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
