//! Integration of the whole SuperGlue pipeline on a *third-party*
//! service the shipped system knows nothing about: write an IDL
//! description, compile it, install the generated stub, and get
//! transparent recovery — the adoption story of §IV.

use std::sync::Arc;

use composite::{
    CostModel, InterfaceCall as _, Kernel, Priority, Service, ServiceCtx, ServiceError, Value,
};
use sg_c3::{FtRuntime, RuntimeConfig};
use superglue::CompiledStub;

/// A simple key-value registry service ("reg"): handles live in a table,
/// values are tracked metadata.
#[derive(Debug, Default)]
struct Registry {
    entries: std::collections::BTreeMap<i64, i64>,
    next: i64,
}

impl Service for Registry {
    fn interface(&self) -> &'static str {
        "reg"
    }
    fn call(
        &mut self,
        _ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            "reg_open" => {
                self.next += 1;
                self.entries.insert(self.next, args[1].int()?);
                Ok(Value::Int(self.next))
            }
            "reg_set" => {
                let id = args[1].int()?;
                let v = args[2].int()?;
                *self.entries.get_mut(&id).ok_or(ServiceError::NotFound)? = v;
                Ok(Value::Int(v))
            }
            "reg_get" => {
                let id = args[1].int()?;
                Ok(Value::Int(
                    *self.entries.get(&id).ok_or(ServiceError::NotFound)?,
                ))
            }
            "reg_close" => {
                let id = args[1].int()?;
                self.entries.remove(&id).ok_or(ServiceError::NotFound)?;
                Ok(Value::Int(0))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }
    fn reset(&mut self) {
        self.entries.clear();
    }
}

const REG_IDL: &str = r#"
// Third-party registry service, described declaratively.
sm_transition(reg_open, reg_set);
sm_transition(reg_set,  reg_set);
sm_transition(reg_open, reg_get);
sm_transition(reg_set,  reg_get);
sm_transition(reg_get,  reg_get);
sm_transition(reg_get,  reg_set);
sm_transition(reg_open, reg_close);
sm_transition(reg_set,  reg_close);
sm_transition(reg_get,  reg_close);

sm_creation(reg_open);
sm_terminal(reg_close);
sm_recover_via(reg_get, reg_set);

desc_data_retval(long, regid)
reg_open(componentid_t compid, desc_data(long initial));
desc_data_retval(long, initial)
reg_set(componentid_t compid, desc(long regid), desc_data(long initial));
long reg_get(componentid_t compid, desc(long regid));
int reg_close(componentid_t compid, desc(long regid));
"#;

fn build() -> (
    FtRuntime,
    composite::ComponentId,
    composite::ComponentId,
    composite::ThreadId,
) {
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    let reg = k.add_component("reg", Box::new(Registry::default()));
    let t = k.create_thread(app, Priority(5));
    let spec = superglue_idl::compile_interface("reg", REG_IDL).expect("idl compiles");
    let compiled = superglue_compiler::compile(&spec);
    let mut rt = FtRuntime::new(k, RuntimeConfig::default());
    rt.install_stub(
        app,
        reg,
        Box::new(CompiledStub::new(Arc::new(compiled.stub_spec))),
    );
    (rt, app, reg, t)
}

#[test]
fn third_party_service_gains_recovery_from_idl_alone() {
    let (mut rt, app, reg, t) = build();
    let id = rt
        .interface_call(app, t, reg, "reg_open", &[Value::Int(1), Value::Int(10)])
        .unwrap()
        .int()
        .unwrap();
    rt.interface_call(
        app,
        t,
        reg,
        "reg_set",
        &[Value::Int(1), Value::Int(id), Value::Int(42)],
    )
    .unwrap();

    rt.inject_fault(reg);

    // The get triggers micro-reboot + walk replay: reg_open(initial) then
    // reg_set(initial=42, tracked from the last set's argument AND
    // accumulated retval metadata).
    let v = rt
        .interface_call(app, t, reg, "reg_get", &[Value::Int(1), Value::Int(id)])
        .unwrap()
        .int()
        .unwrap();
    assert_eq!(v, 42, "recovered value must match the last set");
    assert_eq!(rt.stats().faults_handled, 1);
    assert_eq!(rt.stats().unrecovered, 0);
}

#[test]
fn id_translation_hides_changing_server_ids() {
    let (mut rt, app, reg, t) = build();
    let id1 = rt
        .interface_call(app, t, reg, "reg_open", &[Value::Int(1), Value::Int(7)])
        .unwrap()
        .int()
        .unwrap();
    let id2 = rt
        .interface_call(app, t, reg, "reg_open", &[Value::Int(1), Value::Int(8)])
        .unwrap()
        .int()
        .unwrap();
    rt.inject_fault(reg);
    // Both descriptors recover to fresh server-side ids; the client keeps
    // using the originals.
    let v1 = rt
        .interface_call(app, t, reg, "reg_get", &[Value::Int(1), Value::Int(id1)])
        .unwrap()
        .int()
        .unwrap();
    let v2 = rt
        .interface_call(app, t, reg, "reg_get", &[Value::Int(1), Value::Int(id2)])
        .unwrap()
        .int()
        .unwrap();
    assert_eq!((v1, v2), (7, 8));
}

#[test]
fn closed_descriptors_stay_closed_across_faults() {
    let (mut rt, app, reg, t) = build();
    let id = rt
        .interface_call(app, t, reg, "reg_open", &[Value::Int(1), Value::Int(5)])
        .unwrap()
        .int()
        .unwrap();
    rt.interface_call(app, t, reg, "reg_close", &[Value::Int(1), Value::Int(id)])
        .unwrap();
    rt.inject_fault(reg);
    // A closed descriptor is not resurrected by recovery.
    let err = rt
        .interface_call(app, t, reg, "reg_get", &[Value::Int(1), Value::Int(id)])
        .unwrap_err();
    assert!(matches!(
        err,
        composite::CallError::Service(ServiceError::NotFound)
    ));
}

#[test]
fn the_same_idl_reports_its_compilation_stats() {
    let spec = superglue_idl::compile_interface("reg", REG_IDL).unwrap();
    let out = superglue_compiler::compile(&spec);
    let idl = superglue_idl::idl_loc(REG_IDL);
    assert!(out.generated_loc() > 3 * idl);
    assert!(out.templates_used.len() < superglue_compiler::templates::TEMPLATE_COUNT);
}
