//! End-to-end tests for the recovery-SLO analytics layer: the windowed
//! `--series` telemetry, the `sgstat` availability accounting, and the
//! cross-artifact conservation laws that tie them together.
//!
//! 1. **Golden series.** The `--series` bytes of a fixed-seed Table II
//!    campaign are pinned byte-for-byte
//!    (`tests/golden/table2_series.jsonl`). The CI smoke regenerates
//!    the same file via the `table2` binary and `cmp`s it, so the
//!    in-process path here and the harness path can never diverge.
//!    Regenerate an intentional change with
//!    `UPDATE_GOLDEN=1 cargo test -p sg-bench --test telemetry`.
//! 2. **Conservation across artifacts.** For one campaign, the series,
//!    metrics, and trace are three views of the same event stream:
//!    fault totals, recovery-latency totals, and downtime must agree
//!    exactly between them.
//! 3. **Window semantics.** Telemetry windows index simulated time from
//!    virtual 0, so every shard buckets the same post-boot interval and
//!    shard merges are well defined.

use std::path::PathBuf;

use composite::{
    shards_to_jsonl, SeriesSnapshot, SimTime, DEFAULT_SERIES_WINDOW, MECHANISMS,
    SERIES_SCHEMA_VERSION,
};
use sg_bench::stat::{
    avail_report, collapsed_stacks, evaluate_slo, parse_series_text, parse_trace_text,
    series_report, Conservation, SloPolicy,
};
use sg_bench::{series_to_jsonl, SERVICES};
use sg_swifi::{run_campaign_parallel, CampaignConfig, CampaignMode};

/// The fixed-seed campaign the golden file and the CI smoke pin: it
/// must stay in lockstep with the `table2 --injections 40 --seed 7
/// --series ...` invocation in `.github/workflows/ci.yml`.
fn golden_cfg() -> CampaignConfig {
    CampaignConfig {
        injections: 40,
        seed: 7,
        series_window_ns: DEFAULT_SERIES_WINDOW.0,
        ..CampaignConfig::default()
    }
}

/// Rebuild exactly what `table2 --series` writes for [`golden_cfg`].
fn golden_series_bytes(jobs: usize) -> String {
    let results: Vec<_> = SERVICES
        .iter()
        .map(|iface| run_campaign_parallel(iface, &golden_cfg(), jobs))
        .collect();
    let sections: Vec<(String, &SeriesSnapshot)> = SERVICES
        .iter()
        .zip(&results)
        .map(|(iface, r)| (format!("table2/{iface}/superglue"), &r.series))
        .collect();
    series_to_jsonl(DEFAULT_SERIES_WINDOW.0, &sections)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/table2_series.jsonl")
}

#[test]
fn golden_series_snapshot() {
    let actual = golden_series_bytes(4);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "fixed-seed series drifted from the golden snapshot; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn series_parses_back_and_matches_snapshot_totals() {
    let cfg = golden_cfg();
    let result = run_campaign_parallel("evt", &cfg, 2);
    let text = series_to_jsonl(
        cfg.series_window_ns,
        &[("table2/evt/superglue".to_owned(), &result.series)],
    );
    let parsed = parse_series_text(&text).expect("series parses");
    assert_eq!(parsed.version, SERIES_SCHEMA_VERSION);
    assert_eq!(parsed.window_ns, cfg.series_window_ns);
    assert_eq!(parsed.rows.len(), result.series.rows.len());
    assert_eq!(
        parsed.rows.iter().map(|r| r.invocations).sum::<u64>(),
        result.series.total_invocations()
    );
    assert_eq!(
        parsed.rows.iter().map(|r| r.faults).sum::<u64>(),
        result.series.total_faults()
    );
    let report = series_report(&parsed);
    assert!(report.contains("evt"), "report names the component");
}

/// The series, metrics, and trace are three renderings of one event
/// stream — their totals must agree exactly.
#[test]
fn series_metrics_and_trace_totals_agree() {
    let cfg = CampaignConfig {
        injections: 40,
        seed: 0x5105_7E57,
        trace: true,
        series_window_ns: DEFAULT_SERIES_WINDOW.0,
        mode: CampaignMode::DuringRecovery,
        ..CampaignConfig::default()
    };
    let result = run_campaign_parallel("lock", &cfg, 3);

    // Series faults == metrics faults, per component and in total.
    let mut series_faults = 0u64;
    let mut series_latency_ns = 0u64;
    let mut series_mechs = [0u64; MECHANISMS.len()];
    for cell in result.series.rows.values() {
        series_faults += cell.faults;
        series_latency_ns += cell.recovery_latency.total_ns;
        for (t, m) in series_mechs.iter_mut().zip(cell.mechanisms.iter()) {
            *t += m;
        }
    }
    let metrics_faults: u64 = result
        .metrics
        .rows
        .iter()
        .filter(|(name, _)| name.as_str() != "*total*")
        .map(|(_, row)| row.faults)
        .sum();
    let metrics_latency_ns: u64 = result
        .metrics
        .rows
        .iter()
        .filter(|(name, _)| name.as_str() != "*total*")
        .map(|(_, row)| row.recovery_latency.total_ns)
        .sum();
    let metrics_mechs: Vec<u64> = MECHANISMS
        .iter()
        .map(|m| {
            result
                .metrics
                .rows
                .iter()
                .filter(|(name, _)| name.as_str() != "*total*")
                .map(|(_, row)| row.mechanisms[m.index()])
                .sum()
        })
        .collect();
    assert_eq!(series_faults, metrics_faults, "fault totals diverge");
    assert_eq!(
        series_latency_ns, metrics_latency_ns,
        "recovery-latency totals diverge"
    );
    assert_eq!(series_mechs.as_slice(), metrics_mechs.as_slice());

    // Trace-side: downtime conservation plus fault-event agreement.
    let jsonl = shards_to_jsonl(&result.trace);
    let shards = parse_trace_text(&jsonl).expect("trace parses");
    let report = avail_report(&shards);
    match report.conservation() {
        Conservation::Ok => {
            let trace_faults: usize = shards
                .iter()
                .map(|s| s.events.iter().filter(|e| e.kind == "fault").count())
                .sum();
            assert_eq!(
                trace_faults as u64, series_faults,
                "trace fault events diverge from series fault totals"
            );
            let downtime: u64 = report.components.values().map(|c| c.downtime_ns).sum();
            assert_eq!(
                downtime,
                report
                    .components
                    .values()
                    .map(|c| c.resummed_ns)
                    .sum::<u64>(),
                "episode spans must account for all downtime"
            );
        }
        Conservation::Skip => {
            // Ring overflow: attribution incomplete, nothing to check.
        }
        Conservation::Mismatch(bad) => panic!("conservation mismatch: {bad:?}"),
    }
}

#[test]
fn avail_slo_and_critpath_run_on_campaign_trace() {
    let cfg = CampaignConfig {
        injections: 40,
        seed: 7,
        trace: true,
        ..CampaignConfig::default()
    };
    let result = run_campaign_parallel("sched", &cfg, 2);
    let jsonl = shards_to_jsonl(&result.trace);
    let shards = parse_trace_text(&jsonl).expect("trace parses");
    let report = avail_report(&shards);
    let sched = report.components.get("sched").expect("sched row");
    assert!(sched.episodes > 0, "campaign must open episodes");
    assert!(sched.downtime_ns > 0);
    assert!(sched.availability() < 1.0 && sched.availability() > 0.0);
    assert!(sched.mttr_ns() > 0);

    // A generous SLO passes; an impossible one reports both violations.
    let pass = evaluate_slo(
        &report,
        &SloPolicy {
            max_p99_ns: Some(u64::MAX),
            min_availability: Some(0.0),
        },
    );
    assert!(pass.violations.is_empty());
    let fail = evaluate_slo(
        &report,
        &SloPolicy {
            max_p99_ns: Some(1),
            min_availability: Some(1.0),
        },
    );
    assert_eq!(fail.violations.len(), 2);

    // Collapsed stacks carry the component and at least the reboot
    // bucket, with positive values.
    let stacks = collapsed_stacks(&shards);
    assert!(stacks.lines().any(|l| l.starts_with("sched;reboot ")));
    for line in stacks.lines() {
        let (_, value) = line.rsplit_once(' ').expect("value field");
        assert!(value.parse::<u64>().expect("numeric") > 0);
    }
}

/// Windows index simulated time from virtual 0 in every shard, so the
/// same window describes the same post-boot interval and merges sum
/// cell-wise.
#[test]
fn windows_bucket_simulated_time() {
    let cfg = CampaignConfig {
        injections: 40,
        seed: 7,
        series_window_ns: DEFAULT_SERIES_WINDOW.0,
        ..CampaignConfig::default()
    };
    let merged = run_campaign_parallel("tmr", &cfg, 4);
    assert_eq!(merged.series.window_ns, DEFAULT_SERIES_WINDOW.0);
    assert!(!merged.series.rows.is_empty());
    for (component, window) in merged.series.rows.keys() {
        assert!(!component.is_empty());
        // Window indices are dense-ish small integers, not raw
        // timestamps: each covers [w*W, (w+1)*W).
        assert!(
            window.checked_mul(DEFAULT_SERIES_WINDOW.0).is_some(),
            "window {window} must be an index, not a timestamp"
        );
    }
    // The emitted t_start_ns must be the window origin.
    let text = series_to_jsonl(
        cfg.series_window_ns,
        &[("table2/tmr/superglue".to_owned(), &merged.series)],
    );
    let parsed = parse_series_text(&text).expect("parses");
    for row in &parsed.rows {
        assert_eq!(row.t_start_ns, row.window * parsed.window_ns);
    }
}

/// Merging snapshots with different window widths is a logic error and
/// must fail loudly rather than silently misbucket.
#[test]
#[should_panic(expected = "different window widths")]
fn merging_mismatched_windows_panics() {
    let a = SeriesSnapshot {
        window_ns: 1_000,
        ..SeriesSnapshot::default()
    };
    let mut b = SeriesSnapshot {
        window_ns: 2_000,
        ..SeriesSnapshot::default()
    };
    // Insert a row into each so neither merge side is the empty
    // identity.
    let cell = composite::SeriesCell {
        invocations: 1,
        ..composite::SeriesCell::default()
    };
    b.rows.insert(("x".to_owned(), 0), cell.clone());
    let mut a = a;
    a.rows.insert(("x".to_owned(), 0), cell);
    a.merge(&b);
}

/// `window_ns = 0` would divide by zero on the hot path; enabling it
/// must be rejected up front.
#[test]
#[should_panic(expected = "window must be positive")]
fn zero_window_rejected() {
    let mut k = composite::Kernel::new();
    k.enable_telemetry(SimTime(0));
}
