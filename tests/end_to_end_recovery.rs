//! End-to-end recovery integration tests: the full simulated OS, all six
//! §V-B workloads concurrently, faults injected into every system
//! service, under both fault-tolerance variants and both recovery
//! policies.

use composite::{
    Executor, InterfaceCall as _, KernelAccess as _, Priority, RunExit, ThreadId, Value,
};
use sg_c3::{FtRuntime, RecoveryPolicy};
use sg_services::api::ClientEnd;
use sg_services::workloads::{
    shared_desc, EventTrigger, EventWaiter, FsOpenWriteRead, LockContender, LockOwner,
    MmGrantAliasRevoke, SchedPingPong, TimerPeriodic,
};
use superglue::testbed::{Testbed, Variant};

fn attach_all(tb: &mut Testbed, ex: &mut Executor<FtRuntime>, rounds: u32) -> Vec<ThreadId> {
    let ids = tb.ids;
    let t1 = tb.spawn_thread(ids.app1, Priority(5));
    let t2 = tb.spawn_thread(ids.app1, Priority(5));
    ex.attach(
        t1,
        Box::new(SchedPingPong::new(
            ClientEnd::new(ids.app1, t1, ids.sched),
            t2,
            rounds,
            true,
        )),
    );
    ex.attach(
        t2,
        Box::new(SchedPingPong::new(
            ClientEnd::new(ids.app1, t2, ids.sched),
            t1,
            rounds,
            false,
        )),
    );
    let t3 = tb.spawn_thread(ids.app1, Priority(5));
    let t4 = tb.spawn_thread(ids.app1, Priority(5));
    let shared = shared_desc();
    ex.attach(
        t3,
        Box::new(LockOwner::new(
            ClientEnd::new(ids.app1, t3, ids.lock),
            shared.clone(),
            rounds,
            2,
        )),
    );
    ex.attach(
        t4,
        Box::new(LockContender::new(
            ClientEnd::new(ids.app1, t4, ids.lock),
            shared,
            rounds,
        )),
    );
    let t5 = tb.spawn_thread(ids.app1, Priority(5));
    let t6 = tb.spawn_thread(ids.app2, Priority(5));
    let shared_e = shared_desc();
    ex.attach(
        t5,
        Box::new(EventWaiter::new(
            ClientEnd::new(ids.app1, t5, ids.evt),
            shared_e.clone(),
            rounds,
        )),
    );
    ex.attach(
        t6,
        Box::new(EventTrigger::new(
            ClientEnd::new(ids.app2, t6, ids.evt),
            shared_e,
            rounds,
        )),
    );
    let t7 = tb.spawn_thread(ids.app1, Priority(5));
    ex.attach(
        t7,
        Box::new(TimerPeriodic::new(
            ClientEnd::new(ids.app1, t7, ids.tmr),
            500_000,
            rounds,
        )),
    );
    let t8 = tb.spawn_thread(ids.app1, Priority(5));
    ex.attach(
        t8,
        Box::new(MmGrantAliasRevoke::new(
            ClientEnd::new(ids.app1, t8, ids.mm),
            ids.app2,
            rounds,
        )),
    );
    let t9 = tb.spawn_thread(ids.app1, Priority(5));
    ex.attach(
        t9,
        Box::new(FsOpenWriteRead::new(
            ClientEnd::new(ids.app1, t9, ids.fs),
            rounds,
        )),
    );
    vec![t1, t2, t3, t4, t5, t6, t7, t8, t9]
}

fn storm(variant: Variant, policy: RecoveryPolicy, fault_rounds: u32) {
    let mut tb = Testbed::build_with(variant, composite::CostModel::paper_defaults(), policy)
        .expect("testbed builds");
    let mut ex: Executor<FtRuntime> = Executor::new();
    attach_all(&mut tb, &mut ex, 40);
    let targets = tb.ids.targets();
    for round in 0..fault_rounds {
        for (_, svc) in targets {
            ex.run(&mut tb.runtime, 150 + u64::from(round) * 37);
            tb.runtime.inject_fault(svc);
            if policy == RecoveryPolicy::Eager {
                tb.runtime
                    .handle_fault_now(svc, composite::BOOT_THREAD)
                    .expect("eager recovery");
            }
        }
    }
    assert_eq!(
        ex.run(&mut tb.runtime, 3_000_000),
        RunExit::AllDone,
        "{variant:?}/{policy:?}: workloads must finish"
    );
    assert_eq!(tb.runtime.stats().unrecovered, 0, "{variant:?}/{policy:?}");
    // Re-injections into a still-faulted (never re-invoked) component
    // coalesce into one reboot, so the handled count is a lower bound.
    assert!(
        tb.runtime.stats().faults_handled >= 4,
        "rounds = {fault_rounds}"
    );
}

#[test]
fn superglue_survives_a_fault_storm_on_demand() {
    storm(Variant::SuperGlue, RecoveryPolicy::OnDemand, 3);
}

#[test]
fn c3_survives_a_fault_storm_on_demand() {
    storm(Variant::C3, RecoveryPolicy::OnDemand, 3);
}

#[test]
fn superglue_survives_a_fault_storm_eager() {
    storm(Variant::SuperGlue, RecoveryPolicy::Eager, 2);
}

#[test]
fn c3_survives_a_fault_storm_eager() {
    storm(Variant::C3, RecoveryPolicy::Eager, 2);
}

#[test]
fn bare_composite_loses_workloads_to_the_same_storm() {
    let mut tb = Testbed::build(Variant::Bare).expect("testbed builds");
    let mut ex: Executor<FtRuntime> = Executor::new();
    let threads = attach_all(&mut tb, &mut ex, 40);
    ex.run(&mut tb.runtime, 120);
    for (_, svc) in tb.ids.targets() {
        tb.runtime.inject_fault(svc);
    }
    ex.run(&mut tb.runtime, 3_000_000);
    let crashed = threads
        .iter()
        .filter(|&&t| {
            tb.runtime.kernel().thread(t).map(|th| th.state) == Ok(composite::ThreadState::Crashed)
        })
        .count();
    assert!(
        crashed >= 3,
        "only {crashed} workloads crashed without fault tolerance"
    );
}

#[test]
fn recovery_statistics_are_consistent() {
    let mut tb = Testbed::build(Variant::SuperGlue).expect("testbed builds");
    let mut ex: Executor<FtRuntime> = Executor::new();
    attach_all(&mut tb, &mut ex, 20);
    ex.run(&mut tb.runtime, 200);
    for (_, svc) in tb.ids.targets() {
        tb.runtime.inject_fault(svc);
        ex.run(&mut tb.runtime, 400);
    }
    assert_eq!(ex.run(&mut tb.runtime, 2_000_000), RunExit::AllDone);
    let s = tb.runtime.stats();
    // Every reboot must be observed as a handled fault by the kernel too.
    assert_eq!(
        s.faults_handled,
        tb.runtime.kernel().stats().total_reboots()
    );
    // Recovery implies walk replays (some descriptors need zero-step
    // walks, so >= not ==).
    assert!(s.descriptors_recovered <= s.walk_steps_replayed + s.descriptors_recovered);
}

#[test]
fn descriptor_state_survives_recovery_exactly() {
    // A single fd's offset and contents, byte for byte, across three
    // consecutive faults.
    let mut tb = Testbed::build(Variant::SuperGlue).expect("testbed builds");
    let t = tb.spawn_thread(tb.ids.app1, Priority(5));
    let (app, fs) = (tb.ids.app1, tb.ids.fs);
    let fd = tb
        .runtime
        .interface_call(
            app,
            t,
            fs,
            "tsplit",
            &[Value::Int(1), Value::Int(0), Value::from("ledger")],
        )
        .unwrap()
        .int()
        .unwrap();
    for round in 0..3u8 {
        tb.runtime
            .interface_call(
                app,
                t,
                fs,
                "twrite",
                &[Value::Int(1), Value::Int(fd), Value::from(vec![round])],
            )
            .unwrap();
        tb.runtime.inject_fault(fs);
        // The next call triggers recovery; offset must resume where the
        // write left it.
        let r = tb
            .runtime
            .interface_call(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(8)],
            )
            .unwrap();
        assert_eq!(
            r,
            Value::from(vec![]),
            "offset restored to EOF after round {round}"
        );
    }
    tb.runtime
        .interface_call(
            app,
            t,
            fs,
            "tseek",
            &[Value::Int(1), Value::Int(fd), Value::Int(0)],
        )
        .unwrap();
    let r = tb
        .runtime
        .interface_call(
            app,
            t,
            fs,
            "tread",
            &[Value::Int(1), Value::Int(fd), Value::Int(8)],
        )
        .unwrap();
    assert_eq!(
        r,
        Value::from(vec![0, 1, 2]),
        "contents accumulated across three recoveries"
    );
}
