//! Correlated-fault hardening tests: nested recovery episodes, watchdog
//! hang detection, reboot-storm escalation with graceful degradation,
//! and the Table II-B campaign modes built on them.
//!
//! The golden nested-episode fixture
//! (`tests/golden/nested_episode.jsonl`) pins one fixed-seed correlated
//! recovery byte-for-byte; regenerate an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p sg-bench --test correlated`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use composite::{
    shards_to_jsonl, CallError, CostModel, EscalationPolicy, InterfaceCall as _, Kernel,
    KernelAccess as _, Priority, Service, ServiceCtx, ServiceError, SimTime, TraceEventKind,
    TraceShard, Value, MAX_EPISODE_DEPTH,
};
use sg_bench::rig;
use sg_swifi::{
    run_shard, try_run_campaign_parallel, CampaignConfig, CampaignMode, CampaignResult, ConfigError,
};
use superglue::testbed::Variant;

const TEST_CAPACITY: usize = 1 << 20;

// ---------------------------------------------------------------------
// Config validation (the silent-zero bugfix)
// ---------------------------------------------------------------------

#[test]
fn config_validation_rejects_empty_campaigns() {
    let ok = CampaignConfig::default();
    assert_eq!(ok.validate(), Ok(()));

    let zero_inj = CampaignConfig {
        injections: 0,
        ..CampaignConfig::default()
    };
    assert_eq!(zero_inj.validate(), Err(ConfigError::ZeroInjections));

    let zero_mask = CampaignConfig {
        fault_mask: 0,
        ..CampaignConfig::default()
    };
    assert_eq!(zero_mask.validate(), Err(ConfigError::ZeroFaultMask));

    let zero_burst = CampaignConfig {
        mode: CampaignMode::Burst { flips: 0 },
        ..CampaignConfig::default()
    };
    assert_eq!(zero_burst.validate(), Err(ConfigError::ZeroBurst));

    // The campaign entry point refuses to run a do-nothing config
    // instead of silently reporting an empty row.
    let err = try_run_campaign_parallel("lock", &zero_mask, 1).unwrap_err();
    assert_eq!(err, ConfigError::ZeroFaultMask);
    assert!(!err.to_string().is_empty());
}

// ---------------------------------------------------------------------
// Watchdog hang detection
// ---------------------------------------------------------------------

/// A service whose `spin` call livelocks: it only stops when the
/// watchdog refuses further progress ticks (or after a bounded number of
/// iterations when the watchdog is disabled).
#[derive(Debug, Default)]
struct Spinny;

impl Service for Spinny {
    fn interface(&self) -> &'static str {
        "spin"
    }
    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        _args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            "spin" => {
                for _ in 0..10_000 {
                    ctx.progress()?;
                }
                Ok(Value::Unit)
            }
            "ping" => Ok(Value::Int(1)),
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }
    fn reset(&mut self) {}
}

fn spinny_kernel() -> (
    Kernel,
    composite::ComponentId,
    composite::ComponentId,
    composite::ThreadId,
) {
    let mut k = Kernel::with_costs(CostModel::free());
    let client = k.add_client_component("app");
    let svc = k.add_component("spin", Box::new(Spinny));
    k.grant(client, svc);
    let t = k.create_thread(client, Priority(10));
    (k, client, svc, t)
}

#[test]
fn watchdog_disabled_lets_long_calls_finish() {
    let (mut k, client, svc, t) = spinny_kernel();
    assert_eq!(k.watchdog_budget(), 0);
    assert_eq!(k.invoke(client, t, svc, "spin", &[]).unwrap(), Value::Unit);
    assert_eq!(k.stats().total_watchdog_fires(), 0);
}

#[test]
fn watchdog_detects_hung_call_and_service_recovers() {
    let (mut k, client, svc, t) = spinny_kernel();
    k.set_watchdog_budget(64);

    // The hung call is converted into a detected fail-stop fault.
    let err = k.invoke(client, t, svc, "spin", &[]).unwrap_err();
    assert_eq!(err, CallError::Fault { component: svc });
    assert_eq!(k.stats().total_watchdog_fires(), 1);
    assert!(k.is_faulty(svc));

    // ... after which the ordinary micro-reboot recovery applies.
    k.micro_reboot(svc).unwrap();
    assert!(!k.is_faulty(svc));
    assert_eq!(
        k.invoke(client, t, svc, "ping", &[]).unwrap(),
        Value::Int(1)
    );
}

// ---------------------------------------------------------------------
// Reboot-storm escalation and graceful degradation
// ---------------------------------------------------------------------

#[test]
fn reboot_storm_degrades_and_booter_cold_restart_clears() {
    let (mut k, client, svc, t) = spinny_kernel();
    k.set_escalation(EscalationPolicy::storm_defaults());

    // A storm: four back-to-back fault/reboot cycles inside the window.
    for _ in 0..4 {
        k.fault(svc);
        k.micro_reboot(svc).unwrap();
    }
    assert!(k.is_degraded(svc));
    assert!(k.degraded_until(svc).is_some());

    // Clients fail fast while the mark holds.
    let err = k.invoke(client, t, svc, "ping", &[]).unwrap_err();
    assert!(matches!(err, CallError::Degraded { .. }));
    assert!(k.stats().total_degraded_rejections() >= 1);

    // The booter's explicit cold restart clears the mark and history.
    k.cold_restart(svc).unwrap();
    assert!(!k.is_degraded(svc));
    assert_eq!(k.stats().total_cold_restarts(), 1);
    assert_eq!(
        k.invoke(client, t, svc, "ping", &[]).unwrap(),
        Value::Int(1)
    );
}

#[test]
fn expired_degraded_mark_cold_restarts_on_next_invoke() {
    let (mut k, client, svc, t) = spinny_kernel();
    k.set_escalation(EscalationPolicy {
        degraded_cooldown: SimTime(1),
        ..EscalationPolicy::storm_defaults()
    });
    for _ in 0..4 {
        k.fault(svc);
        k.micro_reboot(svc).unwrap();
    }
    assert!(k.degraded_until(svc).is_some());

    // Virtual time passes the (tiny) cooldown; the next invocation
    // triggers the cold restart itself and then goes through.
    k.charge(SimTime(1_000_000));
    assert_eq!(
        k.invoke(client, t, svc, "ping", &[]).unwrap(),
        Value::Int(1)
    );
    assert_eq!(k.stats().total_cold_restarts(), 1);
    assert!(!k.is_degraded(svc));
}

// ---------------------------------------------------------------------
// Nested recovery episodes
// ---------------------------------------------------------------------

/// Re-sum every episode's attributed latency with per-component episode
/// *stacks* — the episode-tree generalization of the flat conservation
/// check — and return (closed episodes, max nested fault depth).
fn check_tree_conservation(shard: &TraceShard) -> (usize, u32) {
    let mut open: BTreeMap<u32, Vec<SimTime>> = BTreeMap::new();
    let mut episodes = 0usize;
    let mut max_depth = 0u32;
    for ev in &shard.events {
        match &ev.kind {
            TraceEventKind::FaultInjected { depth } => {
                max_depth = max_depth.max(*depth);
                open.entry(ev.component.0).or_default().push(SimTime::ZERO);
            }
            TraceEventKind::EpisodeEnd { attributed } => {
                let resummed = open
                    .get_mut(&ev.component.0)
                    .and_then(Vec::pop)
                    .expect("episode_end without matching fault");
                assert_eq!(
                    resummed, *attributed,
                    "episode on comp {} violates latency conservation",
                    ev.component.0
                );
                episodes += 1;
            }
            _ => {
                if ev.dur > SimTime::ZERO {
                    if let Some(acc) = open.get_mut(&ev.component.0).and_then(|s| s.last_mut()) {
                        *acc += ev.dur;
                    }
                }
            }
        }
    }
    assert!(
        open.values().all(Vec::is_empty),
        "take_trace must close every open episode"
    );
    (episodes, max_depth)
}

/// One deterministic correlated recovery: fault the event manager, arm a
/// second fault on it that fires the moment its recovery begins (the
/// SWIFI during-recovery hook), and drive recovery through one client
/// call. The stub's bounded nested retry must absorb the mid-walk fault.
fn nested_scenario() -> (sg_bench::Rig, TraceShard) {
    let mut r = rig(Variant::SuperGlue);
    r.tb.runtime.kernel_mut().enable_tracing(TEST_CAPACITY);
    let (c, t, svc, f, a) = r.setup_recovery_victim("evt");
    r.tb.runtime.inject_fault(svc);
    r.tb.runtime.kernel_mut().arm_fault_during_recovery(svc);
    r.tb.runtime
        .interface_call(c, t, svc, f, &a)
        .expect("nested recovery succeeds");
    let mut shard = TraceShard::labeled("golden/evt/superglue/nested");
    shard.absorb(r.tb.runtime.kernel_mut().take_trace(&shard.label.clone()));
    (r, shard)
}

#[test]
fn fault_during_recovery_opens_child_episode_and_recovers() {
    let (r, shard) = nested_scenario();
    let kernel = r.tb.runtime.kernel();
    assert!(
        kernel.stats().total_nested_faults() >= 1,
        "the armed fault must land while recovery is in flight"
    );
    assert!(
        r.tb.runtime.stats().nested_recoveries >= 1,
        "the stub must retry through a child recovery episode"
    );
    assert_eq!(kernel.recovery_depth(), 0, "recovery brackets must close");

    let (episodes, max_depth) = check_tree_conservation(&shard);
    assert!(episodes >= 2, "parent and child episodes both close");
    assert!(max_depth >= 1, "the trace records a nested fault");
    assert!(max_depth < MAX_EPISODE_DEPTH);
}

#[test]
fn episode_depth_is_clamped_under_repeated_nested_faults() {
    let (mut k, _client, svc, _t) = spinny_kernel();
    k.enable_tracing(TEST_CAPACITY);
    // An adversarial storm of faults all raised inside one recovery
    // action: every one is nested, and the episode stack must stay
    // clamped at the hard bound.
    k.begin_recovery(svc);
    let rounds = MAX_EPISODE_DEPTH + 4;
    for _ in 0..rounds {
        k.fault(svc);
        k.micro_reboot(svc).unwrap();
    }
    k.end_recovery(svc);
    assert_eq!(k.stats().total_nested_faults(), u64::from(rounds));

    let shard = k.take_trace("clamp");
    let (_, max_depth) = check_tree_conservation(&shard);
    assert!(
        max_depth < MAX_EPISODE_DEPTH,
        "episode depth {max_depth} must stay under the bound {MAX_EPISODE_DEPTH}"
    );
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/nested_episode.jsonl")
}

#[test]
fn golden_nested_episode_snapshot() {
    let (_r, shard) = nested_scenario();
    let actual = shards_to_jsonl(std::slice::from_ref(&shard));

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "fixed-seed nested recovery episode drifted from the golden snapshot; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

// ---------------------------------------------------------------------
// Correlated campaign modes
// ---------------------------------------------------------------------

fn correlated_cfg(mode: CampaignMode, injections: u64, seed: u64) -> CampaignConfig {
    CampaignConfig {
        injections,
        seed,
        mode,
        ..CampaignConfig::default()
    }
}

/// Property: every burst / during-recovery / cascade schedule reaches a
/// terminal outcome for every injection — no hangs, tallies conserved,
/// and nested-episode depth inside the hard bound — across seeds.
#[test]
fn correlated_schedules_always_terminate() {
    let modes = [
        CampaignMode::Burst { flips: 3 },
        CampaignMode::DuringRecovery,
        CampaignMode::Cascade,
    ];
    for seed in [1, 2, 3] {
        for mode in modes {
            let mut cfg = correlated_cfg(mode, 8, seed);
            cfg.trace = true;
            let res = run_shard("lock", &cfg, 0);
            let row = &res.row;
            assert_eq!(
                row.injected, 8,
                "{mode:?}/seed{seed}: all injections judged"
            );
            assert_eq!(
                row.recovered
                    + row.segfault
                    + row.propagated
                    + row.other
                    + row.undetected
                    + row.degraded,
                row.injected,
                "{mode:?}/seed{seed}: every injection has exactly one terminal outcome"
            );
            for shard in &res.trace {
                let (_, max_depth) = check_tree_conservation(shard);
                assert!(
                    max_depth < MAX_EPISODE_DEPTH,
                    "{mode:?}/seed{seed}: nested depth {max_depth} exceeds bound"
                );
            }
        }
    }
}

#[test]
fn correlated_campaigns_are_jobs_invariant() {
    let cfg = correlated_cfg(CampaignMode::DuringRecovery, 50, 7);
    let a = try_run_campaign_parallel("lock", &cfg, 1).unwrap();
    let b = try_run_campaign_parallel("lock", &cfg, 4).unwrap();
    assert_eq!(a, b, "merged result must not depend on worker count");
}

/// The acceptance check for the Table II-B harness: across the three
/// correlated regimes, nested recovery, watchdog detection, and graceful
/// degradation are each exercised at least once — asserted over both the
/// campaign rows and the kernel metrics snapshot.
#[test]
fn correlated_campaign_exercises_watchdog_degradation_and_nesting() {
    let modes = [
        CampaignMode::Burst { flips: 3 },
        CampaignMode::DuringRecovery,
        CampaignMode::Cascade,
    ];
    let mut results: Vec<CampaignResult> = Vec::new();
    for mode in modes {
        for iface in ["sched", "mm"] {
            let cfg = correlated_cfg(mode, 50, 7);
            results.push(try_run_campaign_parallel(iface, &cfg, 4).unwrap());
        }
    }

    let degraded: u64 = results.iter().map(|r| r.row.degraded).sum();
    let watchdog: u64 = results.iter().map(|r| r.row.watchdog_detected).sum();
    let nested: u64 = results.iter().map(|r| r.row.nested_recovered).sum();
    assert!(degraded > 0, "no injection ended in graceful degradation");
    assert!(watchdog > 0, "no hang was watchdog-detected");
    assert!(nested > 0, "no injection recovered through a child episode");

    // The same three behaviors must be visible in the merged
    // recovery-observability metrics.
    let row_sum = |f: fn(&composite::MetricsRow) -> u64| -> u64 {
        results
            .iter()
            .flat_map(|r| r.metrics.rows.values())
            .map(f)
            .sum()
    };
    assert!(row_sum(|m| m.watchdog_fires) > 0);
    assert!(row_sum(|m| m.degraded_rejections) > 0);
    assert!(row_sum(|m| m.nested_faults) > 0);
}
