//! The real-time argument behind on-demand recovery (§II-C / the RTSS'13
//! schedulability analysis the paper builds on): descriptors recover *at
//! the priority of the thread accessing them*, so a high-priority
//! request after a fault pays for its own descriptor only — not for the
//! backlog of low-priority state.

use composite::{CostModel, InterfaceCall as _, KernelAccess as _, Priority, SimTime, Value};
use sg_c3::RecoveryPolicy;
use superglue::testbed::{Testbed, Variant};

const LOW_PRIO_DESCRIPTORS: usize = 256;

fn build(policy: RecoveryPolicy) -> (Testbed, composite::ThreadId, i64) {
    let mut tb = Testbed::build_with(Variant::SuperGlue, CostModel::paper_defaults(), policy)
        .expect("testbed builds");
    let lo = tb.spawn_thread(tb.ids.app1, Priority(200));
    let hi = tb.spawn_thread(tb.ids.app1, Priority(1));
    let (app, lock) = (tb.ids.app1, tb.ids.lock);
    // The low-priority thread litters the edge with descriptors.
    for _ in 0..LOW_PRIO_DESCRIPTORS {
        tb.runtime
            .interface_call(app, lo, lock, "lock_alloc", &[Value::from(app.0)])
            .expect("alloc");
    }
    // The high-priority thread owns exactly one.
    let hi_desc = tb
        .runtime
        .interface_call(app, hi, lock, "lock_alloc", &[Value::from(app.0)])
        .expect("alloc")
        .int()
        .expect("id");
    (tb, hi, hi_desc)
}

#[test]
fn on_demand_recovery_charges_the_high_priority_thread_for_one_descriptor() {
    let (mut tb, hi, hi_desc) = build(RecoveryPolicy::OnDemand);
    tb.runtime.inject_fault(tb.ids.lock);
    let before = tb.runtime.kernel().now();
    tb.runtime
        .interface_call(
            tb.ids.app1,
            hi,
            tb.ids.lock,
            "lock_take",
            &[Value::Int(1), Value::Int(hi_desc)],
        )
        .expect("take after recovery");
    let latency = tb.runtime.kernel().now().saturating_sub(before);
    // Exactly one descriptor was rebuilt before the request completed.
    assert_eq!(tb.runtime.stats().descriptors_recovered, 1);
    // Latency is bounded by reboot + one walk, independent of the
    // low-priority backlog.
    let costs = CostModel::paper_defaults();
    let bound = costs.micro_reboot
        + SimTime(costs.recovery_step.as_nanos() * 4)
        + SimTime(costs.invocation.as_nanos() * 8)
        + SimTime(costs.tracking.as_nanos() * 4);
    assert!(
        latency <= bound,
        "on-demand latency {latency} exceeded the single-descriptor bound {bound}"
    );
}

#[test]
fn eager_recovery_pays_for_the_whole_backlog_first() {
    let (mut tb, hi, hi_desc) = build(RecoveryPolicy::Eager);
    tb.runtime.inject_fault(tb.ids.lock);
    let before = tb.runtime.kernel().now();
    tb.runtime
        .handle_fault_now(tb.ids.lock, hi)
        .expect("eager recovery");
    tb.runtime
        .interface_call(
            tb.ids.app1,
            hi,
            tb.ids.lock,
            "lock_take",
            &[Value::Int(1), Value::Int(hi_desc)],
        )
        .expect("take after recovery");
    let latency = tb.runtime.kernel().now().saturating_sub(before);
    // Every descriptor was recovered before the request completed…
    assert_eq!(
        tb.runtime.stats().descriptors_recovered as usize,
        LOW_PRIO_DESCRIPTORS + 1
    );
    // …so the request waited at least a walk per descriptor.
    let per_walk = CostModel::paper_defaults().recovery_step;
    assert!(
        latency >= SimTime(per_walk.as_nanos() * LOW_PRIO_DESCRIPTORS as u64),
        "eager latency {latency} did not reflect the backlog"
    );
}

#[test]
fn on_demand_interference_is_an_order_of_magnitude_below_eager() {
    // The paper's Fig-level claim ("properly prioritizing the recovery
    // process … has a significant impact on system schedulability"),
    // in virtual time.
    let measure = |policy| {
        let (mut tb, hi, hi_desc) = build(policy);
        tb.runtime.inject_fault(tb.ids.lock);
        let before = tb.runtime.kernel().now();
        if policy == RecoveryPolicy::Eager {
            tb.runtime.handle_fault_now(tb.ids.lock, hi).expect("eager");
        }
        tb.runtime
            .interface_call(
                tb.ids.app1,
                hi,
                tb.ids.lock,
                "lock_take",
                &[Value::Int(1), Value::Int(hi_desc)],
            )
            .expect("take");
        tb.runtime.kernel().now().saturating_sub(before)
    };
    let on_demand = measure(RecoveryPolicy::OnDemand);
    let eager = measure(RecoveryPolicy::Eager);
    assert!(
        eager.as_nanos() > 5 * on_demand.as_nanos(),
        "eager {eager} vs on-demand {on_demand}: interference gap too small"
    );
}
