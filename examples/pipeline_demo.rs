//! Pipeline demo: a Generator → Worker → Logger streaming pipeline over
//! two SuperGlue-protected bounded channels with peek-before-commit
//! semantics.
//!
//! Three runs show the three headline properties:
//!
//! 1. a fault-free run delivers every job, in order;
//! 2. a run with a channel micro-rebooted every 2 virtual milliseconds
//!    commits a byte-identical output log — the tracked channel cursor
//!    (CR0) re-seats every consumer at its last commit, so recovery
//!    causes no loss and no duplication;
//! 3. a run where every 50th job is a showstopper routes exactly those
//!    jobs to the dead-letter queue (DL0) after K=3 consumer faults
//!    each, capping the reboot count instead of storming.
//!
//! Run with `cargo run -p sg-bench --release --example pipeline_demo`.

use composite::SimTime;
use sg_pipeline::{expected_output, run_pipeline_variant, PipelineConfig, PipelineVariant};

fn main() {
    let cfg = PipelineConfig {
        jobs: 400,
        duration: SimTime::from_secs(30),
        ..PipelineConfig::default()
    };

    let clean = run_pipeline_variant(PipelineVariant::SuperGlue { faults: false }, &cfg);
    println!(
        "fault-free:   {} / {} jobs delivered in {}",
        clean.delivered, clean.generated, clean.wall
    );
    assert_eq!(clean.output, expected_output(&cfg));

    let faulted_cfg = PipelineConfig {
        fault_period: SimTime::from_millis(2),
        ..cfg
    };
    let faulted = run_pipeline_variant(PipelineVariant::SuperGlue { faults: true }, &faulted_cfg);
    println!(
        "faulted:      {} / {} jobs, {} channel micro-reboots, {} cursor re-seats (CR0), {} unrecovered",
        faulted.delivered,
        faulted.generated,
        faulted.faults_injected,
        faulted.cursor_restores,
        faulted.unrecovered
    );
    assert_eq!(
        faulted.output,
        expected_output(&faulted_cfg),
        "exactly-once: the committed log must survive micro-reboots byte-identically"
    );
    assert!(faulted.faults_injected > 0 && faulted.unrecovered == 0);
    println!("              committed output byte-identical to the fault-free log — exactly-once");

    let poisoned_cfg = PipelineConfig {
        poison_every: 50,
        ..cfg
    };
    let poisoned =
        run_pipeline_variant(PipelineVariant::SuperGlue { faults: false }, &poisoned_cfg);
    println!(
        "showstoppers: {} poisoned jobs dead-lettered (DL0) after exactly {} reboots (cap {} = poisons × K)",
        poisoned.dead_letters,
        poisoned.faults_handled,
        poisoned_cfg.poison_count() * poisoned_cfg.poison_limit,
    );
    assert_eq!(poisoned.dead_letters, poisoned_cfg.poison_count());
    assert_eq!(
        poisoned.faults_handled,
        poisoned_cfg.poison_count() * poisoned_cfg.poison_limit,
        "dead-letter escalation caps the reboot count"
    );
    assert_eq!(poisoned.output, expected_output(&poisoned_cfg));
    println!(
        "              clean jobs unaffected: delivered {} = expected {}",
        poisoned.delivered,
        poisoned_cfg.expected_delivered()
    );
}
