//! An embedded control pipeline — the application domain the paper's
//! introduction motivates (safety-critical embedded systems that cannot
//! afford TMR).
//!
//! A periodic *controller* task (timer-driven, 10 ms period) reads the
//! newest sensor sample from a RamFS-backed sensor log, computes a
//! command, appends it to the actuator log, and signals the *actuator*
//! task in a different component through the event manager. Transient
//! faults crash the timer manager, the filesystem, and the event manager
//! mid-run; the control loop never misses more than the period spanning
//! the fault, and every command reaches the actuator.
//!
//! Run with `cargo run -p sg-bench --release --example embedded_control`.

use composite::{
    CallError, Executor, InterfaceCall, KernelAccess, Priority, RunExit, SimTime, StepResult,
    ThreadId, Workload,
};
use sg_c3::FtRuntime;
use sg_services::api::{evt, fs, tmr, ClientEnd};
use std::cell::RefCell;
use std::rc::Rc;

const PERIOD_NS: i64 = 10_000_000; // 10 ms control period
const CYCLES: u32 = 40;

#[derive(Debug, Default)]
struct Telemetry {
    commands_issued: u32,
    commands_actuated: u32,
}

/// The periodic controller: timer wait → sensor read → command write →
/// actuator signal.
struct Controller {
    tmr_end: ClientEnd,
    fs_end: ClientEnd,
    evt_end: ClientEnd,
    telemetry: Rc<RefCell<Telemetry>>,
    actuate_evt: Rc<RefCell<Option<i64>>>,
    timer: Option<i64>,
    sensor_fd: Option<i64>,
    cmd_fd: Option<i64>,
    cycle: u32,
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for Controller {
    fn step(&mut self, ctx: &mut Ctx, _t: ThreadId) -> StepResult {
        let wrap = |e: CallError| match e {
            CallError::WouldBlock => StepResult::Blocked,
            other => StepResult::Crashed(other.to_string()),
        };
        // One-time setup: timer, sensor file, command log, signal event.
        if self.timer.is_none() {
            match tmr::create(ctx, &self.tmr_end, PERIOD_NS) {
                Ok(d) => self.timer = Some(d),
                Err(e) => return wrap(e),
            }
            return StepResult::Yield;
        }
        if self.sensor_fd.is_none() {
            match fs::split(ctx, &self.fs_end, 0, "sensor.log") {
                Ok(fd) => {
                    // Seed ten sensor samples.
                    if let Err(e) = fs::write(ctx, &self.fs_end, fd, (0u8..10).collect()) {
                        return wrap(e);
                    }
                    self.sensor_fd = Some(fd);
                }
                Err(e) => return wrap(e),
            }
            return StepResult::Yield;
        }
        if self.cmd_fd.is_none() {
            match fs::split(ctx, &self.fs_end, 0, "actuator.log") {
                Ok(fd) => self.cmd_fd = Some(fd),
                Err(e) => return wrap(e),
            }
            return StepResult::Yield;
        }
        if self.actuate_evt.borrow().is_none() {
            match evt::split(ctx, &self.evt_end, 0, 1) {
                Ok(id) => *self.actuate_evt.borrow_mut() = Some(id),
                Err(e) => return wrap(e),
            }
            return StepResult::Yield;
        }
        if self.cycle >= CYCLES {
            return StepResult::Done;
        }

        // Wait for the period boundary (blocking step first).
        if let Err(e) = tmr::wait(ctx, &self.tmr_end, self.timer.expect("set up")) {
            return wrap(e);
        }
        // Read the newest sample (ring over the ten seeded ones).
        let sensor = self.sensor_fd.expect("set up");
        if let Err(e) = fs::seek(ctx, &self.fs_end, sensor, i64::from(self.cycle % 10)) {
            return wrap(e);
        }
        let sample = match fs::read(ctx, &self.fs_end, sensor, 1) {
            Ok(b) if !b.is_empty() => b[0],
            Ok(_) => return StepResult::Crashed("sensor log truncated".into()),
            Err(e) => return wrap(e),
        };
        // "Control law": command = 2·sample + 1.
        let command = sample.wrapping_mul(2).wrapping_add(1);
        let cmd = self.cmd_fd.expect("set up");
        if let Err(e) = fs::write(ctx, &self.fs_end, cmd, vec![command]) {
            return wrap(e);
        }
        // Signal the actuator in the other component.
        let evt_id = self.actuate_evt.borrow().expect("set up");
        if let Err(e) = evt::trigger(ctx, &self.evt_end, evt_id) {
            return wrap(e);
        }
        self.telemetry.borrow_mut().commands_issued += 1;
        self.cycle += 1;
        StepResult::Yield
    }
}

/// The actuator, in a different protection domain: waits for the signal
/// and applies the newest command.
struct Actuator {
    evt_end: ClientEnd,
    fs_end: ClientEnd,
    telemetry: Rc<RefCell<Telemetry>>,
    actuate_evt: Rc<RefCell<Option<i64>>>,
    cmd_fd: Option<i64>,
    applied: u32,
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for Actuator {
    fn step(&mut self, ctx: &mut Ctx, _t: ThreadId) -> StepResult {
        let wrap = |e: CallError| match e {
            CallError::WouldBlock => StepResult::Blocked,
            other => StepResult::Crashed(other.to_string()),
        };
        let Some(evt_id) = *self.actuate_evt.borrow() else {
            return StepResult::Yield; // controller still setting up
        };
        if self.applied >= CYCLES {
            return StepResult::Done;
        }
        match evt::wait(ctx, &self.evt_end, evt_id) {
            Ok(_) => {}
            Err(e) => return wrap(e),
        }
        if self.cmd_fd.is_none() {
            match fs::split(ctx, &self.fs_end, 0, "actuator.log") {
                Ok(fd) => self.cmd_fd = Some(fd),
                Err(e) => return wrap(e),
            }
        }
        let fd = self.cmd_fd.expect("opened");
        if let Err(e) = fs::seek(ctx, &self.fs_end, fd, i64::from(self.applied)) {
            return wrap(e);
        }
        match fs::read(ctx, &self.fs_end, fd, 1) {
            Ok(b) if !b.is_empty() => {
                self.applied += 1;
                self.telemetry.borrow_mut().commands_actuated += 1;
                StepResult::Yield
            }
            Ok(_) => StepResult::Yield, // command not persisted yet: re-wait
            Err(e) => wrap(e),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use superglue::testbed::{Testbed, Variant};
    let mut tb = Testbed::build(Variant::SuperGlue)?;
    let telemetry = Rc::new(RefCell::new(Telemetry::default()));
    let actuate_evt = Rc::new(RefCell::new(None));

    let tc = tb.spawn_thread(tb.ids.app1, Priority(3)); // controller: high priority
    let ta = tb.spawn_thread(tb.ids.app2, Priority(6));
    let mut ex: Executor<FtRuntime> = Executor::new();
    ex.attach(
        tc,
        Box::new(Controller {
            tmr_end: ClientEnd::new(tb.ids.app1, tc, tb.ids.tmr),
            fs_end: ClientEnd::new(tb.ids.app1, tc, tb.ids.fs),
            evt_end: ClientEnd::new(tb.ids.app1, tc, tb.ids.evt),
            telemetry: telemetry.clone(),
            actuate_evt: actuate_evt.clone(),
            timer: None,
            sensor_fd: None,
            cmd_fd: None,
            cycle: 0,
        }),
    );
    ex.attach(
        ta,
        Box::new(Actuator {
            evt_end: ClientEnd::new(tb.ids.app2, ta, tb.ids.evt),
            fs_end: ClientEnd::new(tb.ids.app2, ta, tb.ids.fs),
            telemetry: telemetry.clone(),
            actuate_evt,
            cmd_fd: None,
            applied: 0,
        }),
    );

    println!("running a {CYCLES}-cycle, 10ms-period control loop under SuperGlue...");
    // Crash a different system service roughly every 8 control periods.
    let faults = [tb.ids.tmr, tb.ids.fs, tb.ids.evt, tb.ids.tmr];
    for (i, svc) in faults.iter().enumerate() {
        let deadline = SimTime::from_millis(80 * (i as u64 + 1));
        while tb.runtime.kernel().now() < deadline && !ex.all_done(&tb.runtime) {
            // Small dispatch quanta so fault deadlines interleave with
            // the running control loop.
            if ex.run(&mut tb.runtime, 4) == RunExit::Deadlock {
                break;
            }
        }
        let name = tb
            .runtime
            .kernel()
            .component_name(*svc)
            .unwrap_or("?")
            .to_owned();
        println!(
            "  t={:>6}: crashing `{name}`",
            format!("{}", tb.runtime.kernel().now())
        );
        tb.runtime.inject_fault(*svc);
    }
    let exit = ex.run(&mut tb.runtime, 5_000_000);
    assert_eq!(exit, RunExit::AllDone, "control loop must complete");

    let t = telemetry.borrow();
    let stats = tb.runtime.stats();
    println!("control loop finished at t={}:", tb.runtime.kernel().now());
    println!("  commands issued   : {}", t.commands_issued);
    println!("  commands actuated : {}", t.commands_actuated);
    println!("  faults recovered  : {}", stats.faults_handled);
    println!("  unrecovered       : {}", stats.unrecovered);
    assert_eq!(t.commands_issued, CYCLES);
    assert_eq!(t.commands_actuated, CYCLES);
    assert_eq!(stats.unrecovered, 0);
    println!(
        "ok: every control command survived {} service crashes.",
        faults.len()
    );
    Ok(())
}
