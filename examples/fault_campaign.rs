//! A miniature SWIFI fault-injection campaign: 120 register bit flips
//! against the RamFS component while the paper's FS workload runs,
//! classified mechanistically and recovered by the SuperGlue runtime.
//!
//! Run with `cargo run -p sg-bench --release --example fault_campaign`.

use sg_swifi::{run_campaign, CampaignConfig, CampaignRow};
use superglue::testbed::Variant;

fn main() {
    let cfg = CampaignConfig {
        variant: Variant::SuperGlue,
        injections: 120,
        seed: 0xD15EA5E,
        ..CampaignConfig::default()
    };
    println!(
        "mini SWIFI campaign: 120 bit flips into the FS component (seed 0x{:X})",
        cfg.seed
    );
    println!("{}", CampaignRow::table_header());
    let row = run_campaign("fs", &cfg);
    println!("{}", row.table_line());
    println!();
    println!(
        "activated {} of {} injections ({:.1}%), recovered {} ({:.1}% of activated)",
        row.activated(),
        row.injected,
        row.activation_ratio() * 100.0,
        row.recovered,
        row.success_rate() * 100.0
    );
    println!("compare Table II row FS: activation 94.7%, success 96.14%");
}
