//! A tour of the SuperGlue IDL and compiler: parse an interface
//! description, inspect the descriptor-resource model, the state
//! machine's recovery walks, the fired template–predicate pairs, and a
//! slice of the generated stub source.
//!
//! Run with `cargo run -p sg-bench --example idl_tour`.

use superglue_sm::State;

const LOCK_IDL: &str = r#"
// A lock service: blocking, solo descriptors.
service_global_info = {
        desc_block = true
};

sm_transition(lock_alloc,   lock_take);
sm_transition(lock_take,    lock_release);
sm_transition(lock_release, lock_take);
sm_transition(lock_release, lock_free);
sm_transition(lock_alloc,   lock_free);

sm_creation(lock_alloc);
sm_terminal(lock_free);
sm_block(lock_take);
sm_wakeup(lock_release);
sm_recover_via(lock_release, lock_alloc);
sm_recover_block(lock_take, lock_restore);

desc_data_retval(long, lockid)
lock_alloc(componentid_t compid);
int lock_take(componentid_t compid, desc(long lockid));
int lock_release(componentid_t compid, desc(long lockid));
int lock_restore(componentid_t compid, desc(long lockid), long owner);
int lock_free(componentid_t compid, desc(long lockid));
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Front end: lex, parse, validate, lower to the formal models.
    let spec = superglue_idl::compile_interface("lock", LOCK_IDL)?;
    println!("interface `{}`:", spec.name);
    println!("  model: {:?}", spec.model);
    println!("  mechanisms (SIII-C): {:?}", spec.model.mechanisms());
    println!("  IDL size: {} LOC", superglue_idl::idl_loc(LOCK_IDL));

    // The state machine and its precomputed shortest recovery walks.
    println!("\nrecovery walks (shortest path from s0 to each state):");
    for (i, f) in spec.fns.iter().enumerate() {
        let fid = superglue_sm::FnId(i as u32);
        match spec.machine.recovery_walk(State::After(fid)) {
            Ok(walk) => {
                let names: Vec<&str> = walk
                    .iter()
                    .map(|&w| spec.machine.function_name(w))
                    .collect();
                println!("  after {:<14} -> replay [{}]", f.name, names.join(", "));
            }
            Err(_) => println!("  after {:<14} -> (terminal or unreachable)", f.name),
        }
    }

    // Back end: the template–predicate network.
    let out = superglue_compiler::compile(&spec);
    println!(
        "\ncompiler: {} of the {} template-predicate pairs fired",
        out.templates_used.len(),
        superglue_compiler::templates::TEMPLATE_COUNT
    );
    println!(
        "generated {} LOC of stub code from {} LOC of IDL",
        out.generated_loc(),
        superglue_idl::idl_loc(LOCK_IDL)
    );

    println!("\nfirst lines of the generated client stub:");
    for line in out.client_source.lines().take(12) {
        println!("  | {line}");
    }
    Ok(())
}
