//! Quickstart: build the SuperGlue-protected OS, crash the lock service
//! mid-workload, and watch recovery happen transparently.
//!
//! Run with `cargo run -p sg-bench --example quickstart`.

use composite::{Executor, KernelAccess as _, Priority, RunExit};
use sg_c3::FtRuntime;
use sg_services::api::ClientEnd;
use sg_services::workloads::{shared_desc, LockContender, LockOwner};
use superglue::testbed::{Testbed, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile the six shipped IDL files and assemble the full
    //    simulated COMPOSITE OS with generated stubs on every edge.
    let mut tb = Testbed::build(Variant::SuperGlue)?;
    println!(
        "built {} with {} components",
        tb.variant,
        tb.runtime.kernel().component_count()
    );

    // 2. Attach the paper's Lock workload: one owner, one contender.
    let t1 = tb.spawn_thread(tb.ids.app1, Priority(5));
    let t2 = tb.spawn_thread(tb.ids.app1, Priority(5));
    let shared = shared_desc();
    let mut ex: Executor<FtRuntime> = Executor::new();
    ex.attach(
        t1,
        Box::new(LockOwner::new(
            ClientEnd::new(tb.ids.app1, t1, tb.ids.lock),
            shared.clone(),
            50,
            2,
        )),
    );
    ex.attach(
        t2,
        Box::new(LockContender::new(
            ClientEnd::new(tb.ids.app1, t2, tb.ids.lock),
            shared,
            50,
        )),
    );

    // 3. Run a bit, then crash the lock server (fail-stop transient
    //    fault), twice.
    ex.run(&mut tb.runtime, 60);
    println!("injecting a fault into the lock service...");
    tb.runtime.inject_fault(tb.ids.lock);
    ex.run(&mut tb.runtime, 200);
    println!("injecting a second fault...");
    tb.runtime.inject_fault(tb.ids.lock);

    // 4. The workloads complete anyway: the generated stubs micro-reboot
    //    the server and replay the recovery walks on demand.
    let exit = ex.run(&mut tb.runtime, 1_000_000);
    assert_eq!(exit, RunExit::AllDone);

    let stats = tb.runtime.stats();
    println!(
        "workloads completed across {} faults:",
        stats.faults_handled
    );
    println!("  descriptors recovered : {}", stats.descriptors_recovered);
    println!("  walk steps replayed   : {}", stats.walk_steps_replayed);
    println!("  unrecovered faults    : {}", stats.unrecovered);
    assert_eq!(stats.unrecovered, 0);
    println!("ok: recovery was transparent to the application.");
    Ok(())
}
