//! Web-server demo: 10 concurrent connections against the componentized
//! server under SuperGlue, with a fault injected into a rotating system
//! service every 2 virtual seconds — throughput dips briefly and
//! recovers, never dropping to zero (the Fig 7 behavior).
//!
//! Run with `cargo run -p sg-bench --release --example webserver_demo`.

use composite::SimTime;
use sg_webserver::{run_fig7_variant, Fig7Config, WebVariant};

fn sparkline(buckets: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = buckets.iter().copied().max().unwrap_or(1).max(1);
    buckets
        .iter()
        .map(|&b| GLYPHS[((b * 7) / max) as usize])
        .collect()
}

fn main() {
    let cfg = Fig7Config {
        duration: SimTime::from_secs(12),
        fault_period: SimTime::from_secs(2),
        ..Fig7Config::default()
    };

    println!("12 virtual seconds, 10 connections, one fault every 2s:");
    let faulted = run_fig7_variant(WebVariant::SuperGlue { faults: true }, &cfg);
    println!(
        "  COMPOSITE+SuperGlue (faults): {:>8.0} req/s, {} requests, {} faults, {} unrecovered",
        faulted.mean_rps, faulted.total_requests, faulted.faults_injected, faulted.unrecovered
    );
    println!("  per-second: {}", sparkline(faulted.series.buckets()));
    assert_eq!(faulted.unrecovered, 0);

    let clean = run_fig7_variant(WebVariant::SuperGlue { faults: false }, &cfg);
    println!(
        "  without faults:               {:>8.0} req/s ({:.2}% fault cost)",
        clean.mean_rps,
        (1.0 - faulted.mean_rps / clean.mean_rps) * 100.0
    );
    println!("every bucket stayed above zero: the server served requests throughout recovery.");
}
